"""Minimal in-tree PEP 517 build backend for offline environments.

The evaluation environment has setuptools but not the ``wheel`` package,
so both the PEP 517 setuptools backend and the legacy ``setup.py
develop`` path fail.  A wheel is just a zip file with a dist-info
directory, so this backend writes one directly with the standard
library:

* ``build_editable`` produces a wheel containing a ``.pth`` file that
  points at ``src/`` (editable install);
* ``build_wheel`` produces a regular wheel with the package tree copied
  in.

Only what pip needs is implemented; there are no external dependencies.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "1.0.0"
ROOT = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(ROOT, "src")

_METADATA = f"""\
Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: NVDIMM-C (HPCA 2020) reproduction: timing/protocol simulator
Requires-Python: >=3.10
Requires-Dist: numpy>=1.24
"""

_WHEEL = """\
Wheel-Version: 1.0
Generator: repro-inline-backend
Root-Is-Purelib: true
Tag: py3-none-any
"""


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    encoded = base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")
    return f"sha256={encoded}"


def _write_wheel(wheel_directory: str, contents: dict[str, bytes]) -> str:
    """Write a wheel with ``contents`` (+ generated dist-info)."""
    dist_info = f"{NAME}-{VERSION}.dist-info"
    contents = dict(contents)
    contents[f"{dist_info}/METADATA"] = _METADATA.encode()
    contents[f"{dist_info}/WHEEL"] = _WHEEL.encode()
    record_path = f"{dist_info}/RECORD"
    record_lines = [
        f"{path},{_record_hash(data)},{len(data)}"
        for path, data in contents.items()
    ]
    record_lines.append(f"{record_path},,")
    contents[record_path] = ("\n".join(record_lines) + "\n").encode()

    filename = f"{NAME}-{VERSION}-py3-none-any.whl"
    wheel_path = os.path.join(wheel_directory, filename)
    with zipfile.ZipFile(wheel_path, "w", zipfile.ZIP_DEFLATED) as zf:
        for path, data in contents.items():
            zf.writestr(path, data)
    return filename


# -- PEP 517 hooks -----------------------------------------------------------


def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def build_editable(wheel_directory, config_settings=None,
                   metadata_directory=None):
    pth = f"{NAME}.pth"
    return _write_wheel(wheel_directory, {pth: (SRC + "\n").encode()})


def build_wheel(wheel_directory, config_settings=None,
                metadata_directory=None):
    contents: dict[str, bytes] = {}
    for dirpath, _dirnames, filenames in os.walk(os.path.join(SRC, NAME)):
        for filename in sorted(filenames):
            if filename.endswith((".pyc", ".pyo")):
                continue
            full = os.path.join(dirpath, filename)
            rel = os.path.relpath(full, SRC).replace(os.sep, "/")
            with open(full, "rb") as handle:
                contents[rel] = handle.read()
    return _write_wheel(wheel_directory, contents)


def build_sdist(sdist_directory, config_settings=None):
    raise NotImplementedError("sdist builds are not supported offline")
