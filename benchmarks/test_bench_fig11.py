"""Fig. 11 — TPC-H on HANA: per-query slowdowns + LRU hit study."""

from repro.experiments import fig11_tpch


def test_fig11_tpch(once):
    record, results, hit_curve = once(fig11_tpch.run)
    print("\n" + fig11_tpch.render(results, hit_curve))
    by_name = {r.name: r for r in results}

    # Text anchors: Q1 ~3.3x (compute-bound scan), Q20 ~78x (thrash).
    assert 2.8 <= by_name["Q1"].slowdown <= 3.9
    assert 62 <= by_name["Q20"].slowdown <= 94

    # Q20 is the worst query; Q1 is among the mildest.
    worst = max(results, key=lambda r: r.slowdown)
    assert worst.name == "Q20"
    mildest_five = sorted(results, key=lambda r: r.slowdown)[:5]
    assert "Q1" in {r.name for r in mildest_five}

    # Every query pays something on NVDIMM-C.
    assert all(r.slowdown > 1.0 for r in results)

    # Hit study: 78.7 % -> 99.3 % as the cache grows 1 -> 16 GB.
    rates = [hr for _, hr in hit_curve]
    assert rates == sorted(rates)
    assert 0.70 <= rates[0] <= 0.85
    assert rates[-1] >= 0.95
