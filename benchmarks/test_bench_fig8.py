"""Fig. 8 — 4 KB random R/W, one thread: the three device tiers."""

from repro.experiments import fig8_randrw


def test_fig8_random_rw(once):
    record, rows = once(fig8_randrw.run)
    print("\n" + fig8_randrw.render(rows))
    by = {(r.config, r.is_write): r for r in rows}

    # Tier ordering: baseline > cached >> uncached, reads and writes.
    for is_write in (False, True):
        baseline = by[("baseline", is_write)].mb_s
        cached = by[("cached", is_write)].mb_s
        uncached = by[("uncached", is_write)].mb_s
        assert baseline > cached > uncached
        # §VII-B2: cached is 70-76 % of baseline.
        assert 0.6 <= cached / baseline <= 0.85
        # Uncached is ~30-45x below cached (paper: ~31x).
        assert 20 <= cached / uncached <= 45

    # Absolute anchors within 20 %.
    assert abs(by[("cached", False)].mb_s - 1835) / 1835 < 0.2
    assert abs(by[("uncached", False)].mb_s - 57.3) / 57.3 < 0.2
