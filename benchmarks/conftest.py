"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures, prints
the rows/series the figure plots (run ``pytest benchmarks/
--benchmark-only -s`` to see them), and asserts the paper's *shape*:
who wins, by roughly what factor, where crossovers fall.

The ``benchmark`` fixture times one full regeneration (rounds=1: these
are second-scale simulations, not microbenchmarks).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a zero-arg callable exactly once under the benchmark timer
    and return its result."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
