"""§VII-C — the improvement-roadmap ablations."""

from repro.experiments import ablations


def test_ablation_roadmap(once):
    record = once(ablations.run)
    print("\n" + str(record))
    measured = {c.label: c.measured for c in record.comparisons}

    poc = measured["PoC uncached baseline"]
    asic = measured["(1) ASIC FSM (no firmware lag)"]
    phy = measured["(1+5) ASIC + 500 MHz PHY"]
    merged = measured["(1+4+5) + merged WB/fill command"]

    # Each roadmap step helps, cumulatively ~2x.
    assert poc < asic < phy < merged
    assert merged / poc >= 1.7

    # 8 KB per window is time-feasible in the 900 ns window.
    assert measured["(3) 8 KB fits the window"] == 1.0
    assert measured["(3) 8 KB transfer time in 900 ns window"] < 900

    # Eviction policies: LRC is never better than LRU on TPC-H.
    assert (measured["TPC-H geomean slowdown [lru]"]
            <= measured["TPC-H geomean slowdown [lrc]"])
