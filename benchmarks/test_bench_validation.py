"""§VII-A — refresh-detection/serialisation aging test."""

from repro.analysis.tables import render_series
from repro.experiments import validation_refresh


def test_validation_aging(once):
    record = once(lambda: validation_refresh.run(iterations=3))
    print("\n" + str(record))
    measured = {c.label: c.measured for c in record.comparisons}
    assert measured["data mismatches"] == 0
    assert measured["bus collisions"] == 0
    assert measured["detector false positives"] == 0
    assert measured["detector false negatives"] == 0
    assert measured["rogue-mode failures (want > 0)"] > 0


def test_detector_noise_margin(once):
    """Extension: accuracy vs sampling noise (the analysis the paper
    could not perform on silicon)."""
    sweep = once(validation_refresh.noise_sweep)
    print("\n" + render_series("detector accuracy vs noise BER",
                               [f"{ber:g}" for ber, _ in sweep],
                               [acc * 100 for _, acc in sweep],
                               x_label="BER", y_label="accuracy_%"))
    accuracies = dict(sweep)
    assert accuracies[0.0] == 1.0
    assert accuracies[5e-2] < 1.0            # heavy noise must hurt
    assert accuracies[1e-6] > accuracies[5e-2]
