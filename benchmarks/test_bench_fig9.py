"""Fig. 9 — thread scaling: plateaus at the channel / device limits."""

from repro.experiments import fig9_threads


def test_fig9_thread_sweep(once):
    record, series = once(fig9_threads.run)
    print("\n" + fig9_threads.render(series))
    by = {(s.config, s.is_write): s for s in series}

    baseline_r = by[("baseline", False)]
    cached_r = by[("cached", False)]
    cached_w = by[("cached", True)]
    uncached = by[("uncached", False)]

    # Plateaus near the paper's caps (within 15 %).
    assert abs(baseline_r.peak - 8694) / 8694 < 0.15
    assert abs(cached_r.peak - 4341) / 4341 < 0.15
    assert abs(cached_w.peak - 4615) / 4615 < 0.15

    # Scaling shape: throughput grows with threads then flattens;
    # the 16-thread point is within 5 % of the peak for every series.
    for s in (baseline_r, cached_r, cached_w):
        assert s.mb_s[1] > 1.5 * s.mb_s[0]           # 2T ≫ 1T
        assert s.mb_s[-1] >= 0.95 * s.peak            # flat by 16T

    # Baseline outscales NVDC-Cached by ~2x at saturation.
    assert 1.6 <= baseline_r.peak / cached_r.peak <= 2.4

    # Uncached sits orders of magnitude below and saturates early
    # (queue depth 1; the paper sees 4 threads, we see <= 2 because the
    # deterministic device pipeline has no idle gaps left to fill).
    assert uncached.peak < cached_r.peak / 30
    assert uncached.mb_s[-1] >= 0.9 * uncached.peak
