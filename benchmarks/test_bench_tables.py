"""T1/T2 — regenerate Tables I and II from the live configuration."""

from repro.experiments import table1_config, table2_benchmarks


def test_table1_configuration(once):
    record = once(table1_config.run)
    print("\n" + table1_config.render())
    assert record.worst_ratio_error() < 0.01   # pure configuration

def test_table2_benchmarks(once):
    record = once(table2_benchmarks.run)
    print("\n" + table2_benchmarks.render())
    measured = {c.label: c.measured for c in record.comparisons}
    assert measured["implemented benchmarks"] >= 3
