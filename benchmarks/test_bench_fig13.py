"""Fig. 13 — host-side cached bandwidth vs refresh rate."""

from repro.experiments import fig13_trefi


def test_fig13_trefi_sweep(once):
    record, series = once(fig13_trefi.run)
    print("\n" + fig13_trefi.render(series))
    by_trefi = dict(series)

    # The three paper points within 8 %.
    for trefi, paper in fig13_trefi.POINTS:
        assert abs(by_trefi[trefi] - paper) / paper < 0.08

    # Faster refresh -> lower host bandwidth, but the damage is modest:
    # tREFI2 costs < 12 %, tREFI4 < 25 % (paper: 8 % / 17 %).
    base = by_trefi[7.8]
    assert 0.0 < 1 - by_trefi[3.9] / base < 0.12
    assert 0.08 < 1 - by_trefi[1.95] / base < 0.25

    # The balanced-SCM trade: at tREFI4 the host still clears 3 GB/s
    # with 16 threads while Fig. 12 gives the device 914 MB/s.
    measured = {c.label: c.measured for c in record.comparisons}
    assert measured["16 threads @ tREFI4"] > 2800
