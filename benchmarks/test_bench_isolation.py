"""§V-A channel isolation: the extended tRFC taxes only its channel."""

from repro.experiments import channel_isolation


def test_channel_isolation(once):
    record = once(channel_isolation.run)
    print("\n" + channel_isolation.render())
    measured = {c.label: c.measured for c in record.comparisons}
    # Other channels are untouched.
    assert measured["main-memory degradation"] == 0.0
    # The co-located DIMM pays single-digit percent at stock refresh...
    assert 3 <= measured["co-located degradation"] <= 12
    # ...and substantially more at the quadrupled rate.
    assert (measured["co-located degradation @ tREFI4"]
            > 2 * measured["co-located degradation"])
