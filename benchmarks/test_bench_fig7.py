"""Fig. 7 — file-copy throughput: SSD-limited peak, then the cliff."""

from repro.experiments import fig7_filecopy


def test_fig7_file_copy(once):
    record, series = once(fig7_filecopy.run)
    print("\n" + fig7_filecopy.render(series))
    print(str(record))
    measured = {c.label: c.measured for c in record.comparisons}
    # Shape: SSD-limited peak (~518 MB/s), an order-of-magnitude cliff,
    # positioned where the free slots run out.
    assert 450 <= measured["peak (Cached) bandwidth"] <= 546
    assert measured["sustained (Uncached) floor"] < (
        measured["peak (Cached) bandwidth"] / 4)
    assert 0.7 <= measured["cliff position / slot area"] <= 1.4
