"""§II-A motivation: DAX vs the traditional page-cache mmap path."""

from repro.experiments import dax_motivation


def test_dax_vs_pagecache(once):
    record = once(dax_motivation.run)
    print("\n" + str(record))
    measured = {c.label: c.measured for c in record.comparisons}
    # DAX wins on latency and moves no extra bytes.
    assert measured["DAX advantage"] > 1.5
    assert (measured["DAX 64 B read (mean)"]
            < measured["page-cache 64 B read (mean)"])
    # The block-I/O amplification the paper describes: a 64 B read
    # drags a whole 4 KB block through the kernel on every miss.
    assert measured["page-cache bytes copied per byte read"] > 10
