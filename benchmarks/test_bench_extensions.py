"""Extension experiments: §III-A design space, §VIII comparisons,
§II-B thermal study, §VII-C queue-depth pipeline."""

from repro.experiments import (arbitration_compare, design_space,
                               thermal_study, variants_compare)


def test_design_space(once):
    record = once(design_space.run)
    print("\n" + design_space.render())
    measured = {c.label: c.measured for c in record.comparisons}
    # The §III-A numbers: 26.64 ns stock, 51.615 ns maxed.
    assert abs(measured["stock READ budget (DDR4-2400)"] - 26.64) < 0.3
    assert abs(measured["maxed 5-bit registers budget"] - 51.615) < 0.5
    # Only STT-MRAM fits the frontend; nothing fits AND is dense.
    assert measured["STT-MRAM fits frontend"] == 1.0
    assert measured["Z-NAND fits frontend"] == 0.0
    assert measured["frontend-capable AND SCM-dense"] == 0


def test_arbitration_schemes(once):
    record = once(arbitration_compare.run)
    print("\n" + arbitration_compare.render())
    measured = {c.label: c.measured for c in record.comparisons}
    # §V-A ceilings, exactly.
    assert abs(measured["tRFC device ceiling @ tREFI"] - 500.8) < 1.5
    assert abs(measured["tRFC device ceiling @ tREFI2"] - 1001.6) < 3.0
    # The §VIII trade-offs.
    assert measured["dummy-access capacity efficiency"] == 0.5
    assert measured["tRFC capacity efficiency"] == 1.0
    assert measured["schemes with guaranteed device progress"] == 1


def test_thermal_study(once):
    record = once(thermal_study.run)
    print("\n" + thermal_study.render())
    measured = {c.label: c.measured for c in record.comparisons}
    # §V-A ceilings driven by the §II-B thermal rule.
    assert abs(measured["device ceiling @ 40C"] - 500.8) < 1.5
    assert abs(measured["device ceiling @ 90C"] - 1001.6) < 3.0
    # Running hot costs the host single-digit percent (Fig. 13 tREFI2).
    assert 3 <= measured["host cost of running hot (paper: 8%)"] <= 12


def test_queue_depth_pipeline(once):
    from repro.analysis.tables import render_series
    from repro.nvmc.pipeline import queue_depth_sweep
    sweep = once(lambda: queue_depth_sweep(depths=(1, 2, 4, 8)))
    print("\n" + render_series("uncached bandwidth vs CP queue depth",
                               [d for d, _ in sweep],
                               [bw for _, bw in sweep],
                               x_label="depth", y_label="MB/s"))
    by_depth = dict(sweep)
    # Depth 2 reaches the two-windows-per-miss ceiling (262.6 MB/s).
    assert abs(by_depth[2] - 262.6) / 262.6 < 0.05
    assert by_depth[2] > 1.8 * by_depth[1] * 0.9
    assert by_depth[8] <= by_depth[2] * 1.02


def test_nvdimm_variants(once):
    record = once(variants_compare.run)
    print("\n" + variants_compare.render())
    measured = {c.label: c.measured for c in record.comparisons}
    assert measured["variants meeting all SCM criteria"] == 1
    assert measured["the winner is NVDIMM-C"] == 1.0
    # Equal hold-up class, 7.5x the capacity.
    assert abs(measured["capacity ratio C/N at equal DRAM"] - 7.5) < 0.1
    assert (measured["NVDIMM-C hold-up window (16 GB cache)"]
            <= measured["NVDIMM-N hold-up window (16 GB DRAM)"] * 1.01)
