"""Operating costs: refresh watts and NAND wear of the mechanism."""

from repro.experiments import power_endurance


def test_power_and_endurance(once):
    record = once(power_endurance.run)
    print("\n" + power_endurance.render())
    measured = {c.label: c.measured for c in record.comparisons}
    # Refresh power is linear in the rate: 4x refresh = 4x watts.
    assert abs(measured["power ratio tREFI4/tREFI"] - 4.0) < 0.05
    # Sub-watt refresh cost even at the quadrupled rate.
    assert measured["refresh power @ tREFI4"] < 1.0
    # The self-throttling wear story.
    life = measured["continuous-write lifetime @ 58.3 MB/s"]
    assert 2.5 <= life <= 5.0
    assert measured["lifetime at 10% write duty"] > 5 * life
