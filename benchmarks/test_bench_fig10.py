"""Fig. 10 — granularity sweep: the small-access inversion."""

from repro.experiments import fig10_granularity
from repro.units import kb


def test_fig10_granularity(once):
    record, series = once(fig10_granularity.run)
    print("\n" + fig10_granularity.render(series))
    baseline, cached = series

    # Inversion: NVDC-Cached wins at 128 B (paper: 1.15x) ...
    ratio_small = cached.at(128)[0] / baseline.at(128)[0]
    assert 1.05 <= ratio_small <= 1.30
    # ... and loses at 4 KB (paper: ~70 %).
    ratio_4k = cached.at(kb(4))[1] / baseline.at(kb(4))[1]
    assert 0.6 <= ratio_4k <= 0.85

    # Crossover falls between 512 B and 4 KB.
    wins = [cached.at(bs)[1] >= baseline.at(bs)[1] for bs in cached.bs]
    assert wins[0] and not wins[-1]
    flip = wins.index(False)
    assert 512 <= cached.bs[flip] <= kb(4)

    # Bandwidth grows monotonically with block size for both devices.
    assert cached.mb_s == sorted(cached.mb_s)
    assert baseline.mb_s == sorted(baseline.mb_s)

    # 4 KB-or-larger preference: visible jump from 1 KB to 4 KB.
    assert cached.at(kb(4))[1] > 1.3 * cached.at(1024)[1]
