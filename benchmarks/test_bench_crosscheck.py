"""Model cross-validation: protocol layer vs transaction layer."""

from repro.experiments import protocol_crosscheck


def test_model_levels_agree(once):
    record = once(protocol_crosscheck.run)
    print("\n" + str(record))
    measured = {c.label: c.measured for c in record.comparisons}
    assert abs(measured["protocol / arithmetic agreement"] - 1.0) < 0.05
    assert abs(measured["occupancy agreement"] - 1.0) < 0.05
    assert abs(measured["stall agreement"] - 1.0) < 0.05
    # And the shared anchor is the paper's §V-A ceiling.
    assert abs(measured["timeline-arithmetic prediction"] - 500.8) < 1.0
