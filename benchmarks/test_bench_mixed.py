"""§VII-B5 — mixed-load integrity with 500 concurrent users."""

from repro.experiments import mixed_integrity


def test_mixed_load_integrity(once):
    record = once(mixed_integrity.run)
    print("\n" + str(record))
    measured = {c.label: c.measured for c in record.comparisons}
    assert measured["concurrent users"] == 500
    assert measured["validation failures"] == 0
    assert measured["cache evictions during run"] > 0
    # The negative control (no §V-B coherence) must corrupt.
    assert measured["failures without the §V-B bracket (want > 0)"] > 0
