"""Fig. 12 — hypothetical device: Uncached bandwidth vs media tD."""

from repro.experiments import fig12_td


def test_fig12_hypothetical_td(once):
    record, series = once(fig12_td.run)
    print("\n" + fig12_td.render(series))
    by_td = dict(series)

    # The four paper points, each within 10 %.
    for td, paper in fig12_td.PAPER_POINTS.items():
        assert abs(by_td[td] - paper) / paper < 0.10, (td, by_td[td])

    # Monotone: slower media, lower bandwidth.
    tds = sorted(by_td)
    assert [by_td[td] for td in tds] == sorted(by_td.values(),
                                               reverse=True)

    # The paper's conclusion: tD <= 1.85 us keeps the device above
    # ~900 MB/s — roughly half the Cached bandwidth, i.e. balanced SCM.
    assert by_td[1.85] >= 850
    # NAND-class media (tens of us) would be far below that.
    from repro.device.hypothetical import HypotheticalSystem
    from repro.units import us
    nand_class = HypotheticalSystem(us(70)).uncached_bandwidth_mb_s()
    assert nand_class < 100
