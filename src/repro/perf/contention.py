"""The shared memory-channel resource for multi-thread experiments.

Each host thread spends a private software phase per operation and then
occupies the shared channel for the operation's service time.  With one
thread the channel is idle most of the time; as threads multiply, the
channel queue grows until throughput plateaus at the channel capacity —
the Fig. 9 saturation shape.

The channel is a plain time-cursor resource (like the NAND channels):
requests are served FIFO from a single busy-until cursor, which is
exact for a single-queue channel and keeps million-op runs fast.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ChannelStats:
    requests: int = 0
    busy_ps: int = 0
    waited_ps: int = 0


class MemoryChannel:
    """FIFO single-server channel shared by all host threads."""

    def __init__(self, name: str = "channel") -> None:
        self.name = name
        self._busy_until = 0
        self.stats = ChannelStats()

    def serve(self, arrive_ps: int, service_ps: int) -> int:
        """Enqueue a request arriving at ``arrive_ps``; returns its
        completion time after FIFO queueing."""
        start = max(arrive_ps, self._busy_until)
        end = start + service_ps
        self._busy_until = end
        self.stats.requests += 1
        self.stats.busy_ps += service_ps
        self.stats.waited_ps += start - arrive_ps
        return end

    def serve_split(self, arrive_ps: int, occupancy_ps: int,
                    latency_ps: int) -> int:
        """Serve a request whose *latency* and *occupancy* differ.

        An op's observed memory latency (what the thread waits) is
        shorter than its channel occupancy (what it denies to others):
        bank-level parallelism overlaps parts of the access with other
        requesters' traffic, but scheduling slots are still consumed.
        The queue is FIFO on occupancy; the caller's completion is
        ``queue-entry + latency``.
        """
        start = max(arrive_ps, self._busy_until)
        self._busy_until = start + occupancy_ps
        self.stats.requests += 1
        self.stats.busy_ps += occupancy_ps
        self.stats.waited_ps += start - arrive_ps
        return start + latency_ps

    def utilization(self, horizon_ps: int) -> float:
        """Busy fraction over a horizon."""
        if horizon_ps <= 0:
            return 0.0
        return min(1.0, self.stats.busy_ps / horizon_ps)

    @property
    def busy_until_ps(self) -> int:
        return self._busy_until

    def reset(self) -> None:
        self._busy_until = 0
        self.stats = ChannelStats()
