"""Performance benchmarking of the simulator itself.

The experiment suite measures the *paper's* numbers; this module
measures *our* numbers — how long each experiment takes to simulate and
how hard the event engine worked — so that performance PRs land with
evidence and regressions are caught in CI.

``run_bench`` times each experiment (wall-clock seconds, engine events
executed, events/sec, peak tracer records retained) and ``repro bench``
writes the result as ``BENCH_<timestamp>.json``, printing a comparison
table against the most recent prior BENCH file (or an explicit
``--baseline``, which is how the CI bench-smoke job gates >2x
wall-clock regressions against ``benchmarks/baseline.json``).

Wall-clock numbers are machine-dependent; ``events_executed`` is not —
a changed event count between two runs of the same tree means behaviour
changed, not just speed.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import time
from dataclasses import asdict, dataclass

#: BENCH file schema version (bump when the payload shape changes).
#: v2: adds the ``scenarios`` section (harness sweeps measured in
#: cuts/s rather than events/s).
#: v4: adds the ``fleet-quick`` scenario (v3 was skipped to realign
#: the number with the CHANGES.md history).
#: v5: adds the ``age-quick`` scenario (endurance campaign).
SCHEMA_VERSION = 5

#: The ``--quick`` subset: one detector-heavy run (validation), one
#: transaction-model run (fig8) and one command-accurate run
#: (crosscheck) — small but covering every hot layer.
QUICK_SUBSET = ("validation", "fig8", "crosscheck")


@dataclass(frozen=True)
class BenchEntry:
    """Timing of one experiment."""

    experiment_id: str
    wall_s: float
    events_executed: int
    events_per_s: float
    peak_trace_records: int


@dataclass(frozen=True)
class ScenarioEntry:
    """Timing of one harness scenario (a sweep, not an experiment).

    ``cuts`` counts the scenario's unit of work — explored cut points
    for the crash sweep, completed rounds for the soak — so ``cuts_per_s``
    is the throughput number the snapshot/fork work is gated on.
    """

    scenario_id: str
    wall_s: float
    cuts: int
    cuts_per_s: float
    events_executed: int


def _scenario_crash_quick() -> int:
    from repro.recovery.explorer import explore
    result = explore(seed=0, quick=True)
    if not result.ok:
        raise RuntimeError("crash-quick scenario: sweep not clean")
    return len(result.outcomes)


def _scenario_soak_quick() -> int:
    from repro.health.soak import run_soak
    result = run_soak(seed=0, quick=True)
    if not result.ok:
        raise RuntimeError("soak-quick scenario: run not clean")
    return len(result.rounds)


def _scenario_fleet_quick() -> int:
    from repro.fleet.frontend import run_fleet
    result = run_fleet(quick=True, shards=2, requests=20_000, seed=0)
    if not result.ok:
        raise RuntimeError("fleet-quick scenario: run not clean")
    return sum(shard.completed for shard in result.shards)


def _scenario_age_quick() -> int:
    from repro.aging.campaign import AgingConfig, run_aging
    result = run_aging(AgingConfig(quick=True, shards=1, max_epochs=4))
    if not result.ok:
        raise RuntimeError("age-quick scenario: campaign not clean")
    return sum(shard.epochs_run for shard in result.shards)


#: Harness scenarios timed alongside the experiments.  Each callable
#: runs the scenario and returns its unit-of-work count ("cuts": cut
#: points for the crash sweep, rounds for the soak, completed requests
#: for the fleet, aged epochs for the endurance campaign).
SCENARIOS = {
    "crash-quick": _scenario_crash_quick,
    "soak-quick": _scenario_soak_quick,
    "fleet-quick": _scenario_fleet_quick,
    "age-quick": _scenario_age_quick,
}


def run_bench(only: list[str] | None = None,
              verbose: bool = True) -> dict:
    """Time experiments and return the BENCH payload (a JSON-able dict).

    Experiments run serially on purpose: bench numbers are per-experiment
    wall-clock, and co-scheduling workers would pollute them.
    """
    from repro.experiments.runner import ALL_EXPERIMENTS
    from repro.sim.engine import Engine
    from repro.sim.trace import TraceMeter

    if only is not None:
        unknown = sorted(set(only) - set(ALL_EXPERIMENTS)
                         - set(SCENARIOS))
        if unknown:
            raise ValueError(
                f"unknown experiment ids: {unknown}; "
                f"valid ids: {sorted(ALL_EXPERIMENTS) + sorted(SCENARIOS)}")
    ids = [exp_id for exp_id in ALL_EXPERIMENTS
           if only is None or exp_id in only]
    scenario_ids = [sc_id for sc_id in SCENARIOS
                    if only is None or sc_id in only]

    entries: list[BenchEntry] = []
    total_started = time.perf_counter()
    for exp_id in ids:
        TraceMeter.reset()
        events_before = Engine.total_events_executed
        started = time.perf_counter()
        ALL_EXPERIMENTS[exp_id]()
        wall_s = time.perf_counter() - started
        events = Engine.total_events_executed - events_before
        entry = BenchEntry(
            experiment_id=exp_id,
            wall_s=round(wall_s, 4),
            events_executed=events,
            events_per_s=round(events / wall_s, 1) if wall_s > 0 else 0.0,
            peak_trace_records=TraceMeter.peak_retained,
        )
        entries.append(entry)
        if verbose:
            print(f"  {exp_id:16s} {entry.wall_s:8.3f}s "
                  f"{entry.events_executed:>10d} ev "
                  f"{entry.events_per_s:>12.0f} ev/s")

    scenarios: list[ScenarioEntry] = []
    for sc_id in scenario_ids:
        events_before = Engine.total_events_executed
        started = time.perf_counter()
        cuts = SCENARIOS[sc_id]()
        wall_s = time.perf_counter() - started
        scenario = ScenarioEntry(
            scenario_id=sc_id,
            wall_s=round(wall_s, 4),
            cuts=cuts,
            cuts_per_s=round(cuts / wall_s, 2) if wall_s > 0 else 0.0,
            events_executed=Engine.total_events_executed - events_before,
        )
        scenarios.append(scenario)
        if verbose:
            print(f"  {sc_id:16s} {scenario.wall_s:8.3f}s "
                  f"{scenario.cuts:>10d} cuts "
                  f"{scenario.cuts_per_s:>12.1f} cuts/s")
    total_wall = time.perf_counter() - total_started

    return {
        "schema": SCHEMA_VERSION,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count() or 1,
        },
        "total_wall_s": round(total_wall, 4),
        "experiments": [asdict(entry) for entry in entries],
        "scenarios": [asdict(scenario) for scenario in scenarios],
    }


def write_bench(payload: dict, out_dir: str = ".") -> str:
    """Write ``payload`` as ``BENCH_<timestamp>.json``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    stamp = time.strftime("%Y%m%d_%H%M%S", time.gmtime())
    path = os.path.join(out_dir, f"BENCH_{stamp}.json")
    # Never clobber an existing file (two benches in one second).
    counter = 1
    while os.path.exists(path):
        path = os.path.join(out_dir, f"BENCH_{stamp}_{counter}.json")
        counter += 1
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> dict:
    """Load a BENCH json, validating the schema version."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported BENCH schema "
            f"{payload.get('schema')!r} (expected {SCHEMA_VERSION})")
    return payload


def latest_bench(out_dir: str = ".",
                 exclude: str | None = None) -> str | None:
    """Most recent ``BENCH_*.json`` under ``out_dir`` (by filename)."""
    paths = sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json")))
    if exclude is not None:
        exclude_abs = os.path.abspath(exclude)
        paths = [p for p in paths if os.path.abspath(p) != exclude_abs]
    return paths[-1] if paths else None


def _timed_rows(payload: dict) -> list[tuple[str, dict]]:
    """Uniform (id, entry) rows over experiments plus scenarios."""
    rows = [(e["experiment_id"], e) for e in payload["experiments"]]
    rows += [(s["scenario_id"], s) for s in payload.get("scenarios", [])]
    return rows


def compare_table(baseline: dict, current: dict) -> list[str]:
    """Human-readable per-experiment comparison lines (current/baseline)."""
    base_index = dict(_timed_rows(baseline))
    lines = [f"{'experiment':16s} {'wall_s':>8s} {'baseline':>9s} "
             f"{'ratio':>6s} {'events':>11s}"]
    for exp_id, entry in _timed_rows(current):
        base = base_index.get(exp_id)
        if base is None or base["wall_s"] <= 0:
            ratio = "new"
            base_wall = "—"
        else:
            ratio = f"{entry['wall_s'] / base['wall_s']:.2f}x"
            base_wall = f"{base['wall_s']:.3f}"
        lines.append(f"{exp_id:16s} {entry['wall_s']:8.3f} {base_wall:>9s} "
                     f"{ratio:>6s} {entry['events_executed']:>11d}")
    return lines


def find_regressions(baseline: dict, current: dict,
                     max_ratio: float) -> list[str]:
    """Experiments/scenarios whose wall-clock regressed beyond
    ``max_ratio``.

    Only ids present in both payloads are compared; returns one line per
    offender (empty list = gate passes).
    """
    base_index = dict(_timed_rows(baseline))
    failures = []
    for exp_id, entry in _timed_rows(current):
        base = base_index.get(exp_id)
        if base is None or base["wall_s"] <= 0:
            continue
        ratio = entry["wall_s"] / base["wall_s"]
        if ratio > max_ratio:
            failures.append(
                f"{exp_id}: {entry['wall_s']:.3f}s vs "
                f"baseline {base['wall_s']:.3f}s "
                f"({ratio:.2f}x > {max_ratio:.2f}x)")
    return failures


def main(args) -> int:
    """Entry point for ``repro bench`` (argparse namespace from the CLI)."""
    only: list[str] | None = list(args.ids) if args.ids else None
    if args.quick:
        quick_ids = list(QUICK_SUBSET) + list(SCENARIOS)
        only = quick_ids + [i for i in (only or [])
                            if i not in quick_ids]
    try:
        payload = run_bench(only=only)
    except ValueError as exc:
        print(str(exc))
        return 2
    path = write_bench(payload, out_dir=args.out)
    print(f"wrote {path} ({len(payload['experiments'])} experiments, "
          f"total {payload['total_wall_s']:.2f}s)")

    baseline_path = args.baseline or latest_bench(args.out, exclude=path)
    if baseline_path is None:
        print("no prior BENCH file or --baseline to compare against")
        return 0
    baseline = load_bench(baseline_path)
    print(f"\ncomparison vs {baseline_path}:")
    for line in compare_table(baseline, payload):
        print(f"  {line}")
    if args.max_regression is not None:
        failures = find_regressions(baseline, payload, args.max_regression)
        if failures:
            print("\nPERF REGRESSION:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"\nno experiment regressed beyond "
              f"{args.max_regression:.2f}x — gate passes")
    return 0
