"""Calibrated host-side performance model.

The command-accurate DDR4 layer validates the *mechanism*; it cannot be
run for the gigabytes of traffic the paper's FIO experiments move.  The
workload runners therefore charge each host-side operation with costs
from a calibrated model:

* :mod:`repro.perf.calibration` — every constant, with the paper
  measurement it was derived from.
* :mod:`repro.perf.model` — per-operation latency (fixed + per-byte
  software + per-byte memory inflated by the refresh-blocked fraction).
* :mod:`repro.perf.contention` — the shared memory-channel resource that
  produces thread-scaling saturation (Fig. 9).
"""

from repro.perf.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.perf.contention import MemoryChannel
from repro.perf.model import HostCostModel

__all__ = [
    "CalibrationConstants",
    "DEFAULT_CALIBRATION",
    "MemoryChannel",
    "HostCostModel",
]
