"""Calibration constants, each traced to a paper measurement.

The reproduction cannot match the authors' testbed absolutely (their
numbers come from a real Skylake server and an FPGA PoC); what it can do
is anchor the model's free constants to the paper's own measurements and
then *predict* every other configuration.  This module is the single
place those anchors live.

Derivations (all times for 4 KB unless noted):

* **Baseline (/dev/pmem0)** — Fig. 8: 646 KIOPS read -> 1.548 us/op;
  Fig. 10: 128 B read ~1867 KIOPS -> 0.536 us/op.  A linear fit gives a
  fixed cost of ~0.50 us and ~0.256 ns/B slope.
* **NVDC-Cached** — Fig. 8: 448 KIOPS read -> 2.232 us/op; Fig. 10:
  128 B read 2147 KIOPS -> 0.466 us/op.  Fit: fixed ~0.45 us,
  ~0.445 ns/B slope.  The *lower* fixed cost than baseline reproduces
  the paper's 1.15x small-access win; the steeper slope is the
  per-line coherence + 4 KB mapping management (§VII-B2's 24-30 %
  overhead).
* **Refresh sensitivity** — Fig. 13: 1835 / 1691 / 1530 MB/s at
  tREFI / tREFI2 / tREFI4.  The per-op latency increments are linear in
  the refresh *rate*; fitting the expected-stall model
  ``t = base + (mem_raw*blk + blk^2/2)/tREFI`` (blk = tRFC + tRP =
  1.264 us) gives a raw memory component of ~0.27 us per 4 KB
  (0.066 ns/B) and reproduces all three points within 2 %.
* **Channel caps** — Fig. 9 saturation plateaus: baseline 8694 MB/s,
  NVDC-Cached 4341 (reads) / 4615 (writes) MB/s.
* **Write variants** — Fig. 8: baseline write 576 KIOPS (1.736 us),
  NVDC-Cached write 438 KIOPS (2.283 us): writes carry ~0.19 us (base)
  and ~0.05 us (nvdc) extra fixed cost over reads.
* **Firmware lag** — §VII-B2: one writeback+cachefill pair = 69.8 us =
  8.9 tREFI, against the 6-window theoretical minimum; reproduced (as
  8 integer windows, 65.6 MB/s — a deterministic model quantises away
  the fractional window) with a 4.0 us per-step firmware delay plus the
  ~8 us PoC NAND page read (50 MHz PHY, §VII-C).
* **Hypothetical tD overlap** — Fig. 12: fitting measured bandwidths at
  tD in {0, 1.85, 3.9, 7.8} us yields an effective added latency of
  ~0.83 * tD per miss (the three per-window waits overlap the media
  delay at the matched refresh rate); fixed part 2.72 us (= the tD=0
  measurement, mapping management without coherence).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import us


def _per_byte(ns_per_byte: float) -> float:
    """Readability helper: ns/B -> ps/B."""
    return ns_per_byte * 1000.0


@dataclass(frozen=True)
class CalibrationConstants:
    """All tunables of the host-side cost model (times in ps)."""

    # -- baseline emulated NVDIMM (/dev/pmem0): Fig. 8 + Fig. 10 fit -----------
    pmem_fixed_read_ps: int = round(us(0.495))
    pmem_fixed_write_ps: int = round(us(0.683))
    pmem_sw_byte_ps: float = _per_byte(0.186)

    # -- nvdc cached path: Fig. 8 + Fig. 10 fit ---------------------------------
    nvdc_fixed_read_ps: int = round(us(0.311))
    nvdc_fixed_write_ps: int = round(us(0.362))
    nvdc_sw_byte_ps: float = _per_byte(0.3674)
    #: Bytes beyond the first 4 KB of an op stream at this rate (Fig. 10:
    #: 3050 MB/s at 64 KB implies ~0.237 ns/B of software once per-op and
    #: per-page latency effects are amortised over a long copy).
    nvdc_stream_byte_ps: float = _per_byte(0.2367)

    # -- raw DRAM service (stalls during refresh blackouts): Fig. 13 fit ---------
    mem_byte_ps: float = _per_byte(0.066)

    # -- channel caps for thread scaling (Fig. 9 plateaus, decimal MB/s) ---------
    pmem_channel_mb_s: float = 8694.0
    nvdc_channel_read_mb_s: float = 4341.0
    nvdc_channel_write_mb_s: float = 4615.0

    # -- driver miss-path software ------------------------------------------------
    #: per-miss software beyond the CP round trips: victim selection,
    #: mapping updates, PTE install (the 18 % of Fig. 12's tD=0 point).
    nvdc_miss_sw_ps: int = round(us(1.0))
    #: ack-polling granularity of the PoC driver's busy-wait loop (§IV-C).
    nvdc_ack_poll_ps: int = round(us(0.2))
    #: how long the driver polls for a CP ack before declaring the
    #: exchange lost and re-issuing (well past the ~70 us worst-case
    #: writeback+cachefill pair of §VII-B2); backoff is linear in the
    #: attempt number.
    cp_timeout_ps: int = round(us(1000.0))
    #: re-issues the driver attempts before giving up on a CP exchange
    #: (§IV-C's mailbox has no hardware retry; three attempts bounds the
    #: fault-campaign worst case at ~4x the §VII-B2 pair latency).
    cp_max_retries: int = 3

    # -- hypothetical device (Fig. 12) ----------------------------------------------
    hypo_fixed_ps: int = round(us(2.72))
    hypo_td_factor: float = 0.83

    # -- misc -------------------------------------------------------------------------
    #: SSD sequential read bandwidth for the Fig. 7 file copy source.
    ssd_seq_read_mb_s: float = 520.0
    ssd_seq_write_mb_s: float = 475.0

    def scaled(self, **overrides: float) -> "CalibrationConstants":
        """Copy with some constants replaced (ablation studies)."""
        return replace(self, **overrides)


#: The constants used by every experiment unless overridden.
DEFAULT_CALIBRATION = CalibrationConstants()
