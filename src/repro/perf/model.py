"""Per-operation host-side latency model.

One cached access decomposes as::

    latency = fixed + bytes * sw_byte + mem_raw + refresh_stall

    mem_raw       = bytes * mem_byte
    refresh_stall = (mem_raw * blk + blk^2 / 2) / tREFI
    blk           = tRFC + tRP        (the per-refresh host blackout)

* ``fixed`` — syscall-less entry, fault-path check, FIO bookkeeping;
* ``bytes * sw_byte`` — per-line work that runs on the CPU regardless of
  the DRAM (coherence instructions, mapping management);
* ``mem_raw`` — the DRAM service itself;
* ``refresh_stall`` — the expected overlap of the memory phase with
  refresh blackouts: the phase covers ``mem_raw / tREFI`` refreshes on
  average (each costing ``blk``), plus with probability ``blk / tREFI``
  it *starts* inside a blackout and waits half of one out.  Linear in
  the refresh rate — exactly the shape of the paper's Fig. 13 points
  (−8 % at tREFI2, −17 % at tREFI4), which a naive
  ``1 / (1 − blocked)`` inflation badly overshoots.

The model is deliberately simple: three constants per device flavour,
each anchored in :mod:`repro.perf.calibration`, and the *blocked
fraction* supplied by the same refresh arithmetic the device-side
window scheduler uses, so a tREFI sweep moves host and device
consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ddr.imc import RefreshTimeline
from repro.perf.calibration import CalibrationConstants, DEFAULT_CALIBRATION


@dataclass(frozen=True)
class OpCost:
    """Latency breakdown of one host-side operation (ps)."""

    fixed_ps: int
    sw_ps: int
    mem_ps: int

    @property
    def total_ps(self) -> int:
        return self.fixed_ps + self.sw_ps + self.mem_ps


class HostCostModel:
    """Latency model for one device flavour on one refresh timeline."""

    def __init__(self, timeline: RefreshTimeline, flavour: str = "nvdc",
                 calibration: CalibrationConstants = DEFAULT_CALIBRATION
                 ) -> None:
        if flavour not in ("nvdc", "pmem"):
            raise ValueError(f"unknown flavour {flavour!r}")
        self.timeline = timeline
        self.flavour = flavour
        self.calibration = calibration
        # Per-(size, op) memos.  Everything the formulas read — timeline,
        # flavour, calibration — is fixed at construction (a new timeline
        # means a new model), and workloads hit the same few size classes
        # millions of times.
        self._cost_cache: dict[tuple[int, bool], OpCost] = {}
        self._service_cache: dict[tuple[int, bool], int] = {}

    # -- per-op costs -----------------------------------------------------------

    def cached_cost(self, nbytes: int, is_write: bool) -> OpCost:
        """Cost of an access served entirely from DRAM (memoized)."""
        cost = self._cost_cache.get((nbytes, is_write))
        if cost is not None:
            return cost
        cal = self.calibration
        if self.flavour == "pmem":
            fixed = (cal.pmem_fixed_write_ps if is_write
                     else cal.pmem_fixed_read_ps)
            sw_byte = cal.pmem_sw_byte_ps
        else:
            fixed = (cal.nvdc_fixed_write_ps if is_write
                     else cal.nvdc_fixed_read_ps)
            sw_byte = cal.nvdc_sw_byte_ps
        # Beyond the first 4 KB an op streams: per-op latency effects
        # amortise and the effective rate improves (the Fig. 10 slope
        # flattening between 4 KB and 64 KB).
        from repro.units import PAGE_4K
        head = min(nbytes, PAGE_4K)
        tail = nbytes - head
        sw = head * sw_byte
        if tail:
            if self.flavour == "nvdc":
                sw += tail * cal.nvdc_stream_byte_ps
            else:
                sw += tail * sw_byte
        mem_raw = nbytes * cal.mem_byte_ps
        blk = self.timeline.trfc_programmed_ps + self.timeline.spec.trp_ps
        stall = (mem_raw * blk + blk * blk / 2) / self.timeline.trefi_ps
        cost = OpCost(fixed_ps=fixed, sw_ps=round(sw),
                      mem_ps=round(mem_raw + stall))
        self._cost_cache[(nbytes, is_write)] = cost
        return cost

    #: Blocked fraction at which the Fig. 9 channel caps were measured
    #: (stock 7.8 us tREFI; tRFC 350 ns for the pmem channel, 1250 ns
    #: for the NVDIMM-C channel): occupancies are stored raw and
    #: re-inflated for the current timeline.
    _CAP_REFERENCE_BLOCKED = {"pmem": 0.0466, "nvdc": 0.1638}

    def channel_service_ps(self, nbytes: int, is_write: bool) -> int:
        """Shared-channel occupancy of one op (for thread scaling).

        Calibrated so aggregate throughput saturates at the Fig. 9
        plateau on the measurement timeline, then scaled linearly with
        the refresh rate: a saturated channel loses one blackout's
        worth of service per tREFI, so per-op occupancy grows by the
        factor ``1 + blk/tREFI`` (the same linear-in-rate behaviour the
        Fig. 13 latency points show; a ``1/(1-blocked)`` inflation
        overshoots the paper's measured 16-thread tREFI4 point badly).
        """
        service = self._service_cache.get((nbytes, is_write))
        if service is not None:
            return service
        cal = self.calibration
        if self.flavour == "pmem":
            cap = cal.pmem_channel_mb_s
        else:
            cap = (cal.nvdc_channel_write_mb_s if is_write
                   else cal.nvdc_channel_read_mb_s)
        cap_bytes_per_ps = cap * 1e6 / 1e12
        reference = self._CAP_REFERENCE_BLOCKED[self.flavour]
        raw = (nbytes / cap_bytes_per_ps) / (1 + reference)
        service = round(raw * (1.0 + self.blocked_fraction))
        self._service_cache[(nbytes, is_write)] = service
        return service

    @property
    def blocked_fraction(self) -> float:
        """Channel share lost to refresh on this timeline."""
        return self.timeline.blocked_fraction

    # -- predictions used directly by experiments ----------------------------------

    def cached_bandwidth_mb_s(self, nbytes: int, is_write: bool) -> float:
        """Single-thread cached bandwidth prediction."""
        total_ps = self.cached_cost(nbytes, is_write).total_ps
        return (nbytes / 1e6) / (total_ps / 1e12)

    def cached_iops(self, nbytes: int, is_write: bool) -> float:
        total_ps = self.cached_cost(nbytes, is_write).total_ps
        return 1e12 / total_ps
