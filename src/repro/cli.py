"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments [ids...]`` — run experiment modules (default: all) and
  print their paper-vs-measured records; ``--jobs N|auto`` fans them
  out over worker processes.
* ``report`` — regenerate EXPERIMENTS.md.
* ``bench`` — time each experiment and write ``BENCH_<timestamp>.json``
  (wall-clock, engine events, events/sec), comparing against the
  previous BENCH file or a ``--baseline``.
* ``tables`` — render the static tables (Table I/II, design space,
  arbitration and variant comparisons).
* ``fio`` — an ad-hoc FIO run against a chosen device tier.
* ``validate`` — the §VII-A aging test.
* ``check`` — correctness tooling: ``check lint`` (AST invariant
  passes), ``check --static`` (whole-program hook/trace registry
  cross-checks plus the REPRO006–012 crash-safety and determinism
  rules) and ``check run --sanitize <experiment>`` (sanitized run).
* ``faults`` — deterministic fault-injection campaigns:
  ``faults run [--quick] [--only ids]`` executes the (fault x workload)
  matrix and writes ``FAULTS_<timestamp>.json``; ``faults list`` prints
  the injector registry.
* ``soak`` — the long-run health soak: composed faults marching one
  module down the recovery ladder, writing ``SOAK_<timestamp>.json``.
* ``crash`` — the crash-point explorer: a power cut at every event
  index, cold remount, invariant checks, ``RECOVERY_<timestamp>.json``.
* ``fleet`` — fleet-scale serving: ``fleet run [--quick] [--shards N]
  [--jobs N|auto]`` multiplexes tenant workloads over N
  independently-seeded module shards with admission control and
  per-tenant SLO scoring, writing ``FLEET_<timestamp>.json``;
  ``fleet chaos [--quick]`` runs the same fleet under a seeded fault
  plan (retry / hedge / failover / evacuation), writing
  ``CHAOS_<timestamp>.json``; ``fleet list`` prints the placement
  registry and tenant roster.
* ``age`` — device-lifetime endurance campaigns: ``age run [--quick]``
  ages a shard population to organic end-of-life under each FTL
  victim-selection strategy (snapshot-accelerated wear/retention
  fast-forward between epochs) and writes ``AGING_<timestamp>.json``
  with fleet survival telemetry.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all
    try:
        run_all(only=args.ids or None, jobs=args.jobs)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as report_main
    report_main(["--jobs", str(args.jobs)])
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import main as bench_main
    return bench_main(args)


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments import (arbitration_compare, design_space,
                                   table1_config, table2_benchmarks,
                                   variants_compare)
    for title, module in (("Table I", table1_config),
                          ("Table II", table2_benchmarks),
                          ("§III-A design space", design_space),
                          ("§VIII arbitration schemes",
                           arbitration_compare),
                          ("§VIII NVDIMM variants", variants_compare)):
        print(f"== {title} ==")
        print(module.render())
        print()
    return 0


def _cmd_fio(args: argparse.Namespace) -> int:
    from repro.device.nvdimmc import NVDIMMCSystem, PmemSystem
    from repro.units import mb
    from repro.workloads.fio import FIOJob, FIORunner
    if args.device == "pmem":
        system = PmemSystem(device_bytes=mb(128))
    else:
        system = NVDIMMCSystem(cache_bytes=mb(64), device_bytes=mb(128))
    job = FIOJob(name=f"{args.rw}-{args.bs}", rw=args.rw, bs=args.bs,
                 size=mb(args.size_mb), numjobs=args.threads,
                 iodepth=args.threads, nops=args.nops)
    result = FIORunner(system).run(job)
    print(result)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.workloads.stream_bench import run_stream_validation
    result = run_stream_validation(iterations=args.iterations)
    status = "CLEAN" if result.clean else "FAILED"
    print(f"{status}: {result.iterations} iterations, "
          f"{result.kernels_checked} kernel checks, "
          f"{result.mismatches} mismatches, "
          f"{result.collisions} collisions, "
          f"{result.refreshes_detected} refreshes detected, "
          f"{result.device_bytes_moved} device bytes under tRFC")
    return 0 if result.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NVDIMM-C (HPCA 2020) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments",
                           help="run experiment modules")
    p_exp.add_argument("ids", nargs="*",
                       help="experiment ids (default: all)")
    p_exp.add_argument("--jobs", default="1",
                       help="worker processes: an integer or 'auto'")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_rep = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_rep.add_argument("--jobs", default="1",
                       help="worker processes: an integer or 'auto'")
    p_rep.set_defaults(fn=_cmd_report)

    p_bench = sub.add_parser(
        "bench", help="time the experiments and write a BENCH json")
    p_bench.add_argument("ids", nargs="*",
                         help="experiment ids (default: all)")
    p_bench.add_argument("--quick", action="store_true",
                         help="run the 3-experiment smoke subset")
    p_bench.add_argument("--out", default=".",
                         help="directory for BENCH_<timestamp>.json")
    p_bench.add_argument("--baseline", default=None,
                         help="baseline BENCH json to compare against "
                              "(overrides the most recent BENCH file)")
    p_bench.add_argument("--max-regression", type=float, default=None,
                         metavar="RATIO",
                         help="fail (exit 1) if any experiment's "
                              "wall-clock exceeds baseline * RATIO")
    p_bench.set_defaults(fn=_cmd_bench)

    p_tab = sub.add_parser("tables", help="render the static tables")
    p_tab.set_defaults(fn=_cmd_tables)

    p_fio = sub.add_parser("fio", help="ad-hoc FIO run")
    p_fio.add_argument("--device", choices=("nvdc", "pmem"),
                       default="nvdc")
    p_fio.add_argument("--rw", default="randread",
                       choices=("read", "write", "randread", "randwrite",
                                "randrw"))
    p_fio.add_argument("--bs", type=int, default=4096)
    p_fio.add_argument("--threads", type=int, default=1)
    p_fio.add_argument("--size-mb", type=int, default=32)
    p_fio.add_argument("--nops", type=int, default=2000)
    p_fio.set_defaults(fn=_cmd_fio)

    p_val = sub.add_parser("validate", help="§VII-A aging test")
    p_val.add_argument("--iterations", type=int, default=3)
    p_val.set_defaults(fn=_cmd_validate)

    from repro.check.cli import build_parser as build_check_parser
    build_check_parser(sub)
    from repro.faults.cli import build_parser as build_faults_parser
    build_faults_parser(sub)
    from repro.health.cli import build_parser as build_soak_parser
    build_soak_parser(sub)
    from repro.recovery.cli import build_parser as build_crash_parser
    build_crash_parser(sub)
    from repro.fleet.cli import build_parser as build_fleet_parser
    build_fleet_parser(sub)
    from repro.aging.cli import build_parser as build_age_parser
    build_age_parser(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
