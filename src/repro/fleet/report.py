"""The schema-pinned ``FLEET_*.json`` fleet serving report.

Mirrors the faults/soak/recovery reports: :data:`SCHEMA` pins the
shape, :func:`render_report` serialises with sorted keys and a trailing
newline (byte-identical for identical fleet results — ``generated_at``
is the only non-deterministic field and is injected by the caller, None
for byte-stable output), and :func:`validate_report` checks a parsed
report against the pinned shape via the shared
:func:`repro.report.validate_schema_report` skeleton.

The report is the fleet's acceptance artifact: per-tenant QoS tables
(order-statistic p50/p99/p999 vs declared SLOs, admit ratio), per-shard
serving and queue telemetry, and the aggregated fleet health view — a
ladder-rung histogram over every shard's final
:class:`~repro.health.monitor.HealthMonitor` state plus degraded /
read-only / fail-stop shard counts — so the SLO gate and the fleet
health gate can both be checked from the artifact alone.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.health.monitor import HealthState
from repro.report import (require_bool, require_exact_keys,
                          require_nonneg_ints, require_object_list,
                          schema_id, validate_schema_report)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.fleet.frontend import FleetResult

SCHEMA = schema_id("fleet", 1)

_REPORT_KEYS = frozenset(
    {"schema", "generated_at", "config", "service_est_ps", "tenants",
     "shards", "health", "totals", "ok"})
_CONFIG_KEYS = frozenset(
    {"shards", "placement", "quick", "requests", "seed", "queue_bound",
     "wear_shards", "weights"})
_TENANT_KEYS = frozenset(
    {"name", "mix", "weight", "offered", "admitted", "rejected",
     "refused", "completed", "failed_reads", "integrity_failures",
     "admit_ppm", "latency", "slo", "slo_pass"})
_LATENCY_KEYS = frozenset(
    {"samples", "p50_ps", "p99_ps", "p999_ps", "max_ps"})
_SLO_KEYS = frozenset({"p50_ps", "p99_ps", "p999_ps", "min_admit_ppm"})
_SLO_PASS_KEYS = frozenset({"p50", "p99", "p999", "admit", "ok"})
_SHARD_KEYS = frozenset(
    {"shard", "requests", "admitted", "rejected", "refused",
     "completed", "queue_peak", "busy_ps", "span_ps",
     "utilization_x1000", "data_loss", "sweep_pages", "sweep_refused",
     "violations", "health"})
_SHARD_HEALTH_KEYS = frozenset(
    {"state", "worst", "counters", "transitions"})
_HEALTH_KEYS = frozenset(
    {"histogram", "degraded_shards", "read_only_shards",
     "fail_stop_shards"})
_TOTAL_KEYS = frozenset(
    {"requests", "admitted", "rejected", "refused", "completed",
     "failed_reads", "integrity_failures", "data_loss", "sweep_pages",
     "violations"})
_STATE_LABELS = frozenset(state.label for state in HealthState)


def fleet_payload(result: "FleetResult") -> dict:
    """The report body (everything except ``generated_at``)."""
    tenants = [qos.to_dict() for qos in result.tenants]
    shards = [shard.to_dict() for shard in result.shards]
    histogram = result.health_histogram
    return {
        "schema": SCHEMA,
        "config": result.config.to_dict(),
        "service_est_ps": result.service_est_ps,
        "tenants": tenants,
        "shards": shards,
        "health": {
            "histogram": {state: histogram.get(state, 0)
                          for state in sorted(_STATE_LABELS)},
            "degraded_shards": sum(
                1 for shard in result.shards
                if shard.health.get("state") not in ("ok", None)),
            "read_only_shards": sum(
                1 for shard in result.shards
                if shard.health.get("state") == "read_only"),
            "fail_stop_shards": sum(
                1 for shard in result.shards
                if shard.health.get("state") == "fail_stop"),
        },
        "totals": {
            "requests": sum(qos["offered"] for qos in tenants),
            "admitted": sum(qos["admitted"] for qos in tenants),
            "rejected": sum(qos["rejected"] for qos in tenants),
            "refused": sum(qos["refused"] for qos in tenants),
            "completed": sum(qos["completed"] for qos in tenants),
            "failed_reads": sum(qos["failed_reads"] for qos in tenants),
            "integrity_failures": sum(
                qos["integrity_failures"] for qos in tenants),
            "data_loss": result.data_loss,
            "sweep_pages": sum(
                shard["sweep_pages"] for shard in shards),
            "violations": result.violations,
        },
        "ok": result.ok,
    }


def render_report(result: "FleetResult",
                  timestamp: str | None = None) -> str:
    """Serialise a :class:`~repro.fleet.frontend.FleetResult`.

    ``timestamp`` is stamped into ``generated_at`` verbatim; pass None
    (the default) for byte-stable output.
    """
    payload = fleet_payload(result)
    payload["generated_at"] = timestamp
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _detail(payload: dict, problems: list[str]) -> None:
    if isinstance(payload.get("config"), dict) or "config" in payload:
        require_exact_keys(problems, payload.get("config"),
                           _CONFIG_KEYS, "config")
    for index, entry in enumerate(require_object_list(
            problems, payload, "tenants", non_empty=True)):
        where = f"tenants[{index}]"
        if not require_exact_keys(problems, entry, _TENANT_KEYS, where):
            continue
        require_nonneg_ints(
            problems, entry,
            ("offered", "admitted", "rejected", "refused", "completed",
             "failed_reads", "integrity_failures", "admit_ppm"),
            f"{where}.")
        if require_exact_keys(problems, entry.get("latency"),
                              _LATENCY_KEYS, f"{where}.latency"):
            require_nonneg_ints(problems, entry["latency"],
                                _LATENCY_KEYS, f"{where}.latency.")
        require_exact_keys(problems, entry.get("slo"), _SLO_KEYS,
                           f"{where}.slo")
        if require_exact_keys(problems, entry.get("slo_pass"),
                              _SLO_PASS_KEYS, f"{where}.slo_pass"):
            for gate in sorted(_SLO_PASS_KEYS):
                if not isinstance(entry["slo_pass"].get(gate), bool):
                    problems.append(
                        f"{where}.slo_pass.{gate} must be a bool")
    for index, entry in enumerate(require_object_list(
            problems, payload, "shards", non_empty=True)):
        where = f"shards[{index}]"
        if not require_exact_keys(problems, entry, _SHARD_KEYS, where):
            continue
        require_nonneg_ints(
            problems, entry,
            ("requests", "admitted", "rejected", "refused", "completed",
             "queue_peak", "busy_ps", "span_ps", "utilization_x1000",
             "data_loss", "sweep_pages", "sweep_refused", "violations"),
            f"{where}.")
        health = entry.get("health")
        if require_exact_keys(problems, health, _SHARD_HEALTH_KEYS,
                              f"{where}.health"):
            for field in ("state", "worst"):
                if health[field] not in _STATE_LABELS:
                    problems.append(
                        f"{where}.health.{field} must be one of "
                        f"{sorted(_STATE_LABELS)}")
    health = payload.get("health")
    if require_exact_keys(problems, health, _HEALTH_KEYS, "health"):
        require_nonneg_ints(
            problems, health,
            ("degraded_shards", "read_only_shards", "fail_stop_shards"),
            "health.")
        histogram = health.get("histogram")
        if require_exact_keys(problems, histogram, _STATE_LABELS,
                              "health.histogram"):
            require_nonneg_ints(problems, histogram,
                                sorted(_STATE_LABELS),
                                "health.histogram.")
    if require_exact_keys(problems, payload.get("totals"), _TOTAL_KEYS,
                          "totals"):
        require_nonneg_ints(problems, payload["totals"],
                            sorted(_TOTAL_KEYS), "totals.")
    require_bool(problems, payload, "ok")


def validate_report(payload) -> list[str]:
    """Problems with a parsed fleet report; empty list means valid."""
    return validate_schema_report("fleet", 1, payload, _REPORT_KEYS,
                                  detail=_detail)
