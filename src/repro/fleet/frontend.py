"""The fleet front end: plan → place → fan out → merge.

The front end multiplexes the tenant request streams into one global
arrival sequence (virtual-time Poisson arrivals paced off a calibration
probe of the module's own service time), places every request on a
shard with the configured policy, and then executes the per-shard plans
— serially or over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism contract: the whole run is a pure function of
:class:`FleetConfig`.  Planning happens *before* execution, placement
is load-oblivious, and each shard forks the same pickled prefix
snapshot and replays its own plan — so a worker process computes
exactly what the serial path would, and merging in shard order yields
byte-identical results for any ``jobs`` setting.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace

from repro.errors import ConfigError, FleetError
from repro.fleet.placement import PLACEMENTS, ZipfSampler
from repro.fleet.qos import TenantQoS
from repro.fleet.shard import (
    Request,
    ShardPlan,
    ShardResult,
    build_prefix,
    run_shard,
    shard_seed,
)
from repro.fleet.tenants import TenantSpec, default_tenants
from repro.units import PAGE_4K
from repro.workloads.fio import FIOJob, _Thread
from repro.workloads.tpch import TPCH_QUERIES, generate_query_trace

#: Request-count defaults per mode.  Quick is the CI/smoke size; full
#: is the overnight fleet soak the ISSUE sizes at millions of requests
#: (1.2 M at 4 shards runs in ~2 minutes serial, faster with --jobs).
QUICK_REQUESTS = 100_000
FULL_REQUESTS = 1_200_000

#: Target per-shard utilization (x1000) the arrival pacing aims for —
#: busy enough that queueing shapes the tail, idle enough that the
#: bounded queue only rejects under transient bursts.
_TARGET_UTILIZATION_X1000 = 650

#: Program failures injected on each pre-worn shard (``wear_shards``):
#: enough to drive that shard's health ladder past retry into remap
#: territory so the fleet health histogram has non-trivial rungs.
_WEAR_FAILURES = 4


@dataclass(frozen=True)
class FleetConfig:
    """Everything that determines a fleet run (see determinism note)."""

    shards: int = 4
    placement: str = "capacity_weighted"
    quick: bool = False
    requests: int | None = None       #: None -> mode default
    seed: int = 7
    queue_bound: int = 64             #: admission queue depth per shard
    wear_shards: int = 0              #: shards pre-worn before serving
    jobs: int = 1                     #: worker processes (1 = serial)
    #: Relative shard capacities for ``capacity_weighted`` (cycled /
    #: truncated to ``shards``); uniform by default.
    weights: tuple[int, ...] = ()
    #: Wall-clock deadline (seconds) for the whole worker fan-out; a
    #: shard worker that has not returned by then raises
    #: :class:`~repro.errors.FleetError` naming the stuck shard.  None
    #: waits forever.  Harness-side only: the deadline never appears in
    #: the report, so it cannot perturb byte-identical output.
    worker_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {self.placement!r}; "
                f"choose from {sorted(PLACEMENTS)}")
        if self.queue_bound < 1:
            raise ConfigError("queue_bound must be >= 1")
        if not (0 <= self.wear_shards <= self.shards):
            raise ConfigError(
                f"wear_shards must be in [0, {self.shards}] "
                f"(0..shards), got {self.wear_shards}")
        if self.worker_timeout_s is not None \
                and self.worker_timeout_s <= 0:
            raise ConfigError(
                f"worker_timeout_s must be > 0 (or None to wait "
                f"forever), got {self.worker_timeout_s}")

    @property
    def request_count(self) -> int:
        if self.requests is not None:
            return self.requests
        return QUICK_REQUESTS if self.quick else FULL_REQUESTS

    @property
    def shard_weights(self) -> tuple[int, ...]:
        if not self.weights:
            return (1,) * self.shards
        return tuple(self.weights[i % len(self.weights)]
                     for i in range(self.shards))

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "placement": self.placement,
            "quick": self.quick,
            "requests": self.request_count,
            "seed": self.seed,
            "queue_bound": self.queue_bound,
            "wear_shards": self.wear_shards,
            "weights": list(self.shard_weights),
        }


class _TenantStream:
    """One tenant's deterministic ``(key, write, version)`` stream.

    Each mix reuses the existing workload generator for its key
    pattern: ``mixed`` draws zipfian-hot keys (the §VII-B5 transaction
    shape), ``tpch`` replays concatenated query traces over the
    tenant's footprint, ``fio-write`` advances an :class:`FIOJob`
    sequential write cursor.  Versions count writes per key, starting
    after the prefix's version 0.
    """

    #: The scan tenant cycles these query shapes (seq, zipf, rand).
    _ANALYTICS_QUERIES = ("Q1", "Q5", "Q18", "Q20")

    def __init__(self, spec: TenantSpec, index: int, seed: int) -> None:
        self.spec = spec
        self.index = index
        base = zlib.crc32(f"{seed}:tenant:{spec.name}".encode("ascii"))
        self._rw_rng = random.Random(base ^ 0x52EAD)
        self._versions: dict[int, int] = {}
        self._last_written = 0
        if spec.mix == "mixed":
            self._zipf = ZipfSampler(spec.footprint_pages,
                                     spec.zipf_theta, base)
        elif spec.mix == "tpch":
            trace: list[int] = []
            for name in self._ANALYTICS_QUERIES:
                trace.extend(generate_query_trace(
                    TPCH_QUERIES[name], db_pages=spec.footprint_pages,
                    max_accesses=4 * spec.footprint_pages, seed=base))
            self._trace = trace
            self._cursor = 0
        elif spec.mix == "fio-write":
            job = FIOJob(name=spec.name, rw="write", bs=PAGE_4K,
                         size=spec.footprint_pages * PAGE_4K,
                         seed=base & 0x7FFF_FFFF)
            self._fio = _Thread(job, 0)
        else:
            raise ConfigError(f"unknown tenant mix {spec.mix!r}")

    def next(self) -> tuple[int, bool, int]:
        spec = self.spec
        write = self._rw_rng.random() >= spec.read_fraction
        if spec.mix == "mixed":
            key = self._zipf.sample()
        elif spec.mix == "tpch":
            key = self._trace[self._cursor] % spec.footprint_pages
            self._cursor = (self._cursor + 1) % len(self._trace)
        else:
            # Streaming writer: writes advance the sequential cursor;
            # reads verify the most recently shipped page.
            if write:
                key = self._fio.next_offset() // PAGE_4K
                self._last_written = key
            else:
                key = self._last_written
        version = 0
        if write:
            version = self._versions.get(key, 0) + 1
            self._versions[key] = version
        return key, write, version


@dataclass
class FleetResult:
    """The merged outcome of one fleet run."""

    config: FleetConfig
    placement: str
    service_est_ps: int
    shards: list[ShardResult]
    tenants: list[TenantQoS]

    @property
    def health_histogram(self) -> dict[str, int]:
        """Shard count per *worst* health-ladder rung reached.

        The worst rung, not the final state: a shard that climbed to
        remap and relaxed back down still counts against the remap
        rung, so the histogram records what the fleet weathered (the
        final-state view is the per-shard ``health.state`` field plus
        the degraded/read-only/fail-stop counts).
        """
        histogram: dict[str, int] = {}
        for shard in self.shards:
            state = shard.health.get("worst", "ok")
            histogram[state] = histogram.get(state, 0) + 1
        return histogram

    @property
    def data_loss(self) -> int:
        return sum(shard.data_loss for shard in self.shards)

    @property
    def violations(self) -> int:
        return sum(shard.violations for shard in self.shards)

    @property
    def ok(self) -> bool:
        """The fleet-level gate: no loss, clean sanitizers, SLOs met."""
        return (self.data_loss == 0 and self.violations == 0
                and all(qos.slo_evaluation()["ok"] for qos in self.tenants))


class Fleet:
    """N independently-seeded module shards behind one front end."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.tenants = default_tenants(config.quick)
        self.placement = PLACEMENTS[config.placement]()

    # -- planning ----------------------------------------------------------------

    def plan(self, service_est_ps: int) -> list[ShardPlan]:
        """Arrival-stamp and place every request; split per shard."""
        config = self.config
        weights = config.shard_weights
        streams = [_TenantStream(spec, index, config.seed)
                   for index, spec in enumerate(self.tenants)]
        cumulative: list[int] = []
        total_weight = 0
        for spec in self.tenants:
            total_weight += spec.weight
            cumulative.append(total_weight)
        pick_rng = random.Random(
            zlib.crc32(f"{config.seed}:pick".encode("ascii")))
        arrival_rng = random.Random(
            zlib.crc32(f"{config.seed}:arrival".encode("ascii")))
        # Fleet-wide arrival rate targeting the per-shard utilization:
        # lambda = shards * rho / service  =>  mean gap below.
        mean_gap_ps = max(1.0, service_est_ps * 1000.0
                          / (_TARGET_UTILIZATION_X1000 * config.shards))
        per_shard: list[list[Request]] = [[] for _ in range(config.shards)]
        arrival = 0
        for seq in range(config.request_count):
            arrival += max(1, round(arrival_rng.expovariate(
                1.0 / mean_gap_ps)))
            point = pick_rng.randrange(total_weight)
            tenant_index = 0
            while cumulative[tenant_index] <= point:
                tenant_index += 1
            key, write, version = streams[tenant_index].next()
            shard = self.placement.shard_for(
                self.tenants[tenant_index], tenant_index, key, seq,
                config.shards, weights)
            per_shard[shard].append(Request(
                seq=seq, tenant=tenant_index, arrival_ps=arrival,
                key=key, write=write, version=version))
        return [
            ShardPlan(shard=index, seed=shard_seed(config.seed, index),
                      queue_bound=config.queue_bound,
                      wear=_WEAR_FAILURES if index < config.wear_shards
                      else 0,
                      requests=tuple(requests))
            for index, requests in enumerate(per_shard)
        ]

    # -- execution ---------------------------------------------------------------

    def run(self) -> FleetResult:
        """Build the prefix, plan, execute all shards, merge."""
        config = self.config
        snapshot, service_est_ps = build_prefix(
            self.tenants, config.quick, config.seed)
        plans = self.plan(service_est_ps)
        if config.jobs > 1 and config.shards > 1:
            from concurrent.futures import ProcessPoolExecutor
            workers = min(config.jobs, config.shards)
            pool = ProcessPoolExecutor(max_workers=workers)
            try:
                futures = [
                    pool.submit(_run_shard_worker, snapshot, plan,
                                self.tenants)
                    for plan in plans
                ]
                results = collect_fan_out(
                    futures, [plan.shard for plan in plans], pool,
                    config.worker_timeout_s)
            finally:
                # On the deadline path collect_fan_out already shut the
                # pool down without joining; a plain ``with`` block
                # would block here waiting on the stuck worker.
                pool.shutdown(wait=False, cancel_futures=True)
        else:
            results = [run_shard(snapshot, plan, self.tenants)
                       for plan in plans]
        merged = [TenantQoS(spec=spec) for spec in self.tenants]
        for shard in results:
            for index, qos in enumerate(shard.tenants):
                merged[index].merge(qos)
        return FleetResult(
            config=config, placement=config.placement,
            service_est_ps=service_est_ps, shards=results,
            tenants=merged)


def _run_shard_worker(snapshot, plan, tenants) -> ShardResult:
    """Top-level worker so ProcessPoolExecutor can pickle the call."""
    return run_shard(snapshot, plan, tenants)


def collect_fan_out(futures, shard_ids, pool,
                    timeout_s: float | None) -> list:
    """Collect worker results in shard order under one shared deadline.

    ``futures`` and ``shard_ids`` run in parallel: result *i* came from
    shard ``shard_ids[i]``.  The deadline covers the whole fan-out, not
    each shard — shards run concurrently, so a per-future budget would
    multiply the wall-clock bound by the shard count.  On expiry the
    pool is shut down without joining (a ``with`` block would wait on
    the stuck worker forever) and a :class:`~repro.errors.FleetError`
    names the shard that failed to report.  Wall-clock time is used
    only here, on the failure path: the merged results — and therefore
    the report bytes — never depend on it.
    """
    import time as _time
    from concurrent.futures import TimeoutError as _FutureTimeout

    deadline = (None if timeout_s is None
                else _time.monotonic() + timeout_s)
    results = []
    for future, shard in zip(futures, shard_ids):
        remaining = (None if deadline is None
                     else max(0.0, deadline - _time.monotonic()))
        try:
            results.append(future.result(timeout=remaining))
        except _FutureTimeout:
            pool.shutdown(wait=False, cancel_futures=True)
            raise FleetError(
                f"shard {shard} worker still running after the "
                f"{timeout_s:g}s fan-out deadline; cannot merge a "
                f"partial fleet run (raise the deadline, or rerun "
                f"with jobs=1 to execute shards serially)") from None
    return results


def run_fleet(config: FleetConfig | None = None, **overrides) -> FleetResult:
    """One-call entry point: ``run_fleet(quick=True, shards=2)``."""
    if config is None:
        config = FleetConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    return Fleet(config).run()
