"""Placement policies and the deterministic zipfian sampler.

A placement maps a request to a shard.  All three policies are
*load-oblivious* on purpose: the shard for a request is a pure function
of ``(tenant, key, seq)``, never of observed queue depths, so shards
stay mutually independent — that is what lets the front end fan the
per-shard request plans out over worker processes and still merge a
byte-identical report (the same property PR 2 relies on for
``run_all(jobs=)``).  Load-*adaptive* placement would couple every
shard's admission state into one serial timeline; static interleaving
is also what the CXL-HM hybrid characterization evaluates.

Skew model: tenant key popularity is zipfian (:class:`ZipfSampler`), so
key-hashed placements (capacity-weighted) concentrate hot keys onto
their home shards — realistic shard imbalance — while the round-robin
interleave spreads requests uniformly regardless of key popularity, and
tenant pinning concentrates whole tenants (the tiering configuration).
"""

from __future__ import annotations

import bisect
import random
import zlib
from typing import Protocol

from repro.fleet.tenants import TenantSpec


class ZipfSampler:
    """Seed-deterministic zipfian rank sampler over ``n`` keys.

    Rank ``r`` is drawn with probability proportional to
    ``1 / (r + 1) ** theta`` by inverting the cumulative weight table
    with one uniform draw per sample.  Determinism contract: the
    sequence is a pure function of ``(n, theta, seed)`` — the draws
    come from a dedicated ``random.Random`` and the table from float
    arithmetic over ranks, never from ``hash()``, so the output is
    independent of ``PYTHONHASHSEED`` and identical across processes.
    """

    def __init__(self, n: int, theta: float, seed: int) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        cdf: list[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / (rank + 1) ** theta
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def sample(self) -> int:
        """The next key (0 is the hottest)."""
        return bisect.bisect_left(self._cdf,
                                  self._rng.random() * self._total)


def _key_hash(tenant_index: int, key: int) -> int:
    """Stable 32-bit placement hash (CRC32, never ``hash()``)."""
    return zlib.crc32(f"{tenant_index}:{key}".encode("ascii"))


class PlacementPolicy(Protocol):
    """Maps one request to a shard index."""

    name: str

    def shard_for(self, tenant: TenantSpec, tenant_index: int, key: int,
                  seq: int, shards: int,
                  weights: tuple[int, ...]) -> int:
        """Shard for request ``seq`` of ``tenant`` touching ``key``."""
        ...


class RoundRobinPlacement:
    """Pure interleave: request ``seq`` lands on shard ``seq % N``.

    The DDR-style address-interleaving baseline — uniform per-shard
    load by construction, no locality (a hot key is served by every
    shard in turn).
    """

    name = "round_robin"

    def shard_for(self, tenant: TenantSpec, tenant_index: int, key: int,
                  seq: int, shards: int,
                  weights: tuple[int, ...]) -> int:
        return seq % shards


class CapacityWeightedPlacement:
    """Key-hashed placement proportional to per-shard capacity weights.

    A key's home shard is chosen by mapping its CRC32 into the
    cumulative weight table, so heterogeneous shards (weights ``(2, 1,
    1, ...)`` model a big-module/small-module fleet) receive
    proportional keyspace shares, and every request for a key goes to
    the same shard (cache locality; zipfian keys skew the load).
    """

    name = "capacity_weighted"

    def shard_for(self, tenant: TenantSpec, tenant_index: int, key: int,
                  seq: int, shards: int,
                  weights: tuple[int, ...]) -> int:
        total = sum(weights[:shards]) or shards
        point = (_key_hash(tenant_index, key) / 0x1_0000_0000) * total
        cumulative = 0
        for shard in range(shards):
            cumulative += weights[shard] if shard < len(weights) else 1
            if point < cumulative:
                return shard
        return shards - 1


class TenantPinnedPlacement:
    """Tiering: a tenant's whole keyspace lives on its pinned shard.

    Tenants that declare ``pinned_shard`` go there (modulo the fleet
    size); unpinned tenants are spread by tenant hash.  This is the
    configuration where one tenant's burst cannot queue behind another
    tenant's scan — per-tenant isolation at the cost of per-shard
    imbalance.
    """

    name = "tenant_pinned"

    def shard_for(self, tenant: TenantSpec, tenant_index: int, key: int,
                  seq: int, shards: int,
                  weights: tuple[int, ...]) -> int:
        if tenant.pinned_shard is not None:
            return tenant.pinned_shard % shards
        return zlib.crc32(tenant.name.encode("ascii")) % shards


#: Policy registry: ``--placement`` name -> zero-arg factory.
PLACEMENTS = {
    RoundRobinPlacement.name: RoundRobinPlacement,
    CapacityWeightedPlacement.name: CapacityWeightedPlacement,
    TenantPinnedPlacement.name: TenantPinnedPlacement,
}
