"""Tenant specifications: workload mixes and declared SLOs.

A tenant is one customer-visible workload class multiplexed over the
fleet.  Its request stream reuses the existing workload generators
rather than inventing new ones:

* ``oltp`` — the §VII-B5 mixed-load transaction shape: 4 KB
  read-modify-write traffic over a zipfian-hot row set, every written
  page carrying a self-describing integrity record
  (:func:`repro.workloads.mixed_load._make_record`) that the shard
  validates on read and again in the final sweep;
* ``analytics`` — a TPC-H-style scan tenant: its page stream is a
  :func:`repro.workloads.tpch.generate_query_trace` trace (read-mostly,
  large footprint, the paper's Fig. 11 workload family);
* ``ingest`` — an FIO-style streaming writer described by a
  :class:`repro.workloads.fio.FIOJob` (sequential 4 KB writes, the log
  shipping / bulk load tenant).

SLOs are declared a priori in picoseconds of *simulated* end-to-end
latency (queueing included) plus a minimum admitted fraction — the
throughput gate that backpressure rejections count against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import us


@dataclass(frozen=True)
class TenantSLO:
    """Declared per-tenant service-level objectives.

    Latency bounds are on end-to-end request latency (admission wait +
    queueing + device service) in simulated picoseconds;
    ``min_admit_ppm`` is the minimum admitted/offered ratio in parts
    per million (backpressure rejections and degraded-mode refusals
    both count against it).
    """

    p50_ps: int
    p99_ps: int
    p999_ps: int
    min_admit_ppm: int = 990_000


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: workload mix, fleet share, footprint and SLO."""

    name: str
    mix: str                 #: "mixed" | "tpch" | "fio-write"
    weight: int              #: share of the offered request stream
    footprint_pages: int     #: tenant keyspace (4 KB pages per shard)
    read_fraction: float     #: P(read) per request
    zipf_theta: float        #: key-popularity skew ("mixed" mix)
    slo: TenantSLO
    pinned_shard: int | None = None   #: tiering pin (tenant_pinned)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "mix": self.mix,
            "weight": self.weight,
            "footprint_pages": self.footprint_pages,
            "read_ppm": round(self.read_fraction * 1_000_000),
            "pinned_shard": self.pinned_shard,
            "slo": {
                "p50_ps": self.slo.p50_ps,
                "p99_ps": self.slo.p99_ps,
                "p999_ps": self.slo.p999_ps,
                "min_admit_ppm": self.slo.min_admit_ppm,
            },
        }


#: SLO constants.  The latency scale is set by the device model: the
#: mean page op through the cache runs ~40-50 us simulated once
#: eviction write-back traffic is in the picture (hot-key cache hits
#: are sub-us, which is why OLTP's p50 sits far below the others), and
#: queueing at the planned utilization roughly quadruples the tail.
#: Bounds are ~1.5x above the percentiles observed at the *worst*
#: supported configuration (quick, 2 shards — the least aggregate DRAM
#: cache per key), so they fail on regression (a scheduling bug that
#: doubles tail latency) without flapping on config-sized noise.
_OLTP_SLO = TenantSLO(p50_ps=round(us(60)), p99_ps=round(us(350)),
                      p999_ps=round(us(500)), min_admit_ppm=950_000)
_ANALYTICS_SLO = TenantSLO(p50_ps=round(us(100)), p99_ps=round(us(400)),
                           p999_ps=round(us(550)), min_admit_ppm=900_000)
_INGEST_SLO = TenantSLO(p50_ps=round(us(100)), p99_ps=round(us(400)),
                        p999_ps=round(us(550)), min_admit_ppm=900_000)


def default_tenants(quick: bool = False) -> tuple[TenantSpec, ...]:
    """The standard three-tenant mix (quick mode shrinks footprints).

    Weights 4:2:2 — half the offered stream is OLTP point traffic, the
    rest splits between the scan tenant and the ingest stream.
    """
    scale = 1 if quick else 4
    return (
        TenantSpec(name="oltp", mix="mixed", weight=4,
                   footprint_pages=192 * scale, read_fraction=0.70,
                   zipf_theta=1.1, slo=_OLTP_SLO),
        TenantSpec(name="analytics", mix="tpch", weight=2,
                   footprint_pages=512 * scale, read_fraction=0.98,
                   zipf_theta=0.0, slo=_ANALYTICS_SLO, pinned_shard=1),
        TenantSpec(name="ingest", mix="fio-write", weight=2,
                   footprint_pages=256 * scale, read_fraction=0.02,
                   zipf_theta=0.0, slo=_INGEST_SLO, pinned_shard=0),
    )
