"""The schema-pinned ``CHAOS_*.json`` chaos-campaign report.

Same contract as the fleet/faults/soak reports: :data:`SCHEMA` pins the
shape, :func:`render_report` serialises with sorted keys and a trailing
newline (``generated_at`` is the only non-deterministic field — pass
``timestamp=None`` for byte-stable output), :func:`validate_report`
checks a parsed report via the shared
:func:`repro.report.validate_schema_report` skeleton.

The report is the campaign's acceptance artifact, organised so every
gate can be audited from the JSON alone:

* ``plan`` — the pre-execution fault plan (kill shard, hedge target,
  per-shard event schedules, hedged write count);
* ``routing`` — the deterministic pass-2 plan derived from pass-1
  outcomes (impaired shards, donors, evacuation page counts, failover
  assignment);
* ``tenants`` — per-tenant availability under chaos: primary serving,
  failover serving, hedge rescues, and the ``success_ppm`` vs the
  chaos SLO (declared ``min_admit_ppm`` minus the chaos allowance);
* ``shards`` — the fleet/1 per-shard telemetry plus the chaos columns
  (role, retries, power cuts, remount audits, evacuation in/out);
* ``gates`` — the four clauses of the chaos gate, separately, so a
  red ``ok`` names its cause.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.health.monitor import HealthState
from repro.report import (require_bool, require_exact_keys,
                          require_nonneg_ints, require_object_list,
                          schema_id, validate_schema_report)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.fleet.chaos import ChaosResult

SCHEMA = schema_id("fleet.chaos", 1)

_REPORT_KEYS = frozenset(
    {"schema", "generated_at", "config", "service_est_ps", "plan",
     "routing", "tenants", "shards", "totals", "gates", "ok"})
_CONFIG_KEYS = frozenset(
    {"shards", "placement", "quick", "requests", "seed", "queue_bound",
     "weights", "bad_block_budget", "slo_allowance_ppm"})
_PLAN_KEYS = frozenset(
    {"kill_shard", "hedge_target", "hedged_writes", "events"})
_EVENT_KEYS = frozenset({"at_request", "kind", "magnitude"})
_ROUTING_KEYS = frozenset(
    {"impaired", "survivors", "skipped_hedged", "evacuations",
     "failover_assigned"})
_EVACUATION_KEYS = frozenset(
    {"source", "donor", "pages_committed", "pages_excluded_hedged",
     "pages_copied"})
_TENANT_KEYS = frozenset(
    {"name", "mix", "offered", "admitted", "rejected", "refused",
     "completed", "failed_reads", "integrity_failures", "latency",
     "failover", "hedge", "rescued", "success_ppm", "chaos_slo_ppm",
     "ok"})
_FAILOVER_KEYS = frozenset(
    {"assigned", "completed", "refused", "failed_reads",
     "integrity_failures", "latency"})
_HEDGE_KEYS = frozenset({"planned", "completed"})
_LATENCY_KEYS = frozenset(
    {"samples", "p50_ps", "p99_ps", "p999_ps", "max_ps"})
_SHARD_KEYS = frozenset(
    {"shard", "role", "final_pass", "requests", "admitted", "rejected",
     "refused", "completed", "queue_peak", "busy_ps", "span_ps",
     "utilization_x1000", "data_loss", "sweep_pages", "sweep_refused",
     "violations", "health", "retries", "retry_successes",
     "power_cuts", "remounts", "evac_out_pages", "evac_in_pages",
     "evac_in_failures", "hedge_attempted", "hedge_refused",
     "failover_served"})
_SHARD_HEALTH_KEYS = frozenset(
    {"state", "worst", "counters", "transitions"})
_REMOUNT_KEYS = frozenset(
    {"at_ps", "health_state", "bad_blocks", "replay_recovered",
     "replay_lost", "replay_crc_mismatches"})
_TOTAL_KEYS = frozenset(
    {"requests", "rejected", "refused", "completed_primary",
     "completed_failover", "rescued", "failed_reads", "data_loss",
     "sweep_pages", "violations", "retries", "power_cuts",
     "evacuated_pages"})
_GATE_KEYS = frozenset(
    {"zero_data_loss", "quiet_sanitizers",
     "shard_killed_and_evacuated", "tenants_within_slo"})
_STATE_LABELS = frozenset(state.label for state in HealthState)
_ROLES = frozenset({"kill", "hedge-target", "survivor"})
_EVENT_KINDS = frozenset({"program-fail", "ecc-burst", "power-cut"})


def _shard_role(shard: int, result: "ChaosResult") -> str:
    if shard == result.roles.kill_shard:
        return "kill"
    if shard == result.roles.hedge_target:
        return "hedge-target"
    return "survivor"


def chaos_payload(result: "ChaosResult") -> dict:
    """The report body (everything except ``generated_at``)."""
    tenants = []
    for view in result.tenants:
        primary, failover = view.primary, view.failover
        tenants.append({
            "name": view.spec.name,
            "mix": view.spec.mix,
            "offered": primary.offered,
            "admitted": primary.admitted,
            "rejected": primary.rejected,
            "refused": primary.refused,
            "completed": primary.completed,
            "failed_reads": primary.failed_reads,
            "integrity_failures": primary.integrity_failures,
            "latency": primary.latency_summary(),
            "failover": {
                "assigned": failover.offered,
                "completed": failover.completed,
                "refused": failover.refused,
                "failed_reads": failover.failed_reads,
                "integrity_failures": failover.integrity_failures,
                "latency": failover.latency_summary(),
            },
            "hedge": {"planned": view.hedge_planned,
                      "completed": view.hedge_completed},
            "rescued": view.rescued,
            "success_ppm": view.success_ppm,
            "chaos_slo_ppm": view.chaos_slo_ppm,
            "ok": view.ok,
        })
    shards = []
    for outcome in result.outcomes:
        entry = outcome.result.to_dict()
        entry.update({
            "role": _shard_role(outcome.result.shard, result),
            "final_pass": (2 if outcome.result.shard
                           in result.pass2_shards else 1),
            "retries": outcome.retries,
            "retry_successes": outcome.retry_successes,
            "power_cuts": outcome.power_cuts,
            "remounts": list(outcome.remounts),
            "evac_out_pages": len(outcome.evac_pages),
            "evac_in_pages": outcome.evac_in_pages,
            "evac_in_failures": outcome.evac_in_failures,
            "hedge_attempted": outcome.hedge_attempted,
            "hedge_refused": outcome.hedge_refused,
            "failover_served": outcome.failover_served,
        })
        shards.append(entry)
    routing = result.routing
    return {
        "schema": SCHEMA,
        "config": result.config.to_dict(),
        "service_est_ps": result.service_est_ps,
        "plan": {
            "kill_shard": result.roles.kill_shard,
            "hedge_target": result.roles.hedge_target,
            "hedged_writes": result.hedged_writes,
            "events": {
                str(shard): [event.to_dict() for event in events]
                for shard, events in sorted(result.events.items())},
        },
        "routing": {
            "impaired": list(routing.impaired),
            "survivors": list(routing.survivors),
            "skipped_hedged": routing.skipped_hedged,
            "evacuations": [{
                "source": evac.source,
                "donor": evac.donor,
                "pages_committed": evac.pages_committed,
                "pages_excluded_hedged": evac.pages_excluded_hedged,
                "pages_copied": len(evac.pages),
            } for evac in routing.evacuations],
            "failover_assigned": {
                str(donor): len(reqs)
                for donor, reqs in sorted(routing.failover.items())},
        },
        "tenants": tenants,
        "shards": shards,
        "totals": {
            "requests": sum(entry["offered"] for entry in tenants),
            "rejected": sum(entry["rejected"] for entry in tenants),
            "refused": sum(entry["refused"] for entry in tenants),
            "completed_primary": sum(entry["completed"]
                                     for entry in tenants),
            "completed_failover": sum(entry["failover"]["completed"]
                                      for entry in tenants),
            "rescued": sum(entry["rescued"] for entry in tenants),
            "failed_reads": sum(entry["failed_reads"]
                                for entry in tenants),
            "data_loss": result.data_loss,
            "sweep_pages": sum(entry["sweep_pages"]
                               for entry in shards),
            "violations": result.violations,
            "retries": sum(entry["retries"] for entry in shards),
            "power_cuts": sum(entry["power_cuts"] for entry in shards),
            "evacuated_pages": sum(entry["evac_in_pages"]
                                   for entry in shards),
        },
        "gates": {
            "zero_data_loss": result.data_loss == 0,
            "quiet_sanitizers": result.violations == 0,
            "shard_killed_and_evacuated": result.demonstrated,
            "tenants_within_slo": all(view.ok
                                      for view in result.tenants),
        },
        "ok": result.ok,
    }


def render_report(result: "ChaosResult",
                  timestamp: str | None = None) -> str:
    """Serialise a :class:`~repro.fleet.chaos.ChaosResult`.

    ``timestamp`` is stamped into ``generated_at`` verbatim; pass None
    (the default) for byte-stable output.
    """
    payload = chaos_payload(result)
    payload["generated_at"] = timestamp
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _check_latency(problems: list[str], owner: dict,
                   where: str) -> None:
    if require_exact_keys(problems, owner.get("latency"), _LATENCY_KEYS,
                          f"{where}.latency"):
        require_nonneg_ints(problems, owner["latency"], _LATENCY_KEYS,
                            f"{where}.latency.")


def _detail(payload: dict, problems: list[str]) -> None:
    require_exact_keys(problems, payload.get("config"), _CONFIG_KEYS,
                       "config")
    plan = payload.get("plan")
    if require_exact_keys(problems, plan, _PLAN_KEYS, "plan"):
        require_nonneg_ints(problems, plan,
                            ("kill_shard", "hedge_target",
                             "hedged_writes"), "plan.")
        events = plan.get("events")
        if not isinstance(events, dict):
            problems.append("plan.events must be an object")
        else:
            for shard, schedule in sorted(events.items()):
                if not isinstance(schedule, list):
                    problems.append(
                        f"plan.events[{shard}] must be a list")
                    continue
                for index, event in enumerate(schedule):
                    where = f"plan.events[{shard}][{index}]"
                    if not require_exact_keys(problems, event,
                                              _EVENT_KEYS, where):
                        continue
                    require_nonneg_ints(problems, event,
                                        ("at_request", "magnitude"),
                                        f"{where}.")
                    if event["kind"] not in _EVENT_KINDS:
                        problems.append(
                            f"{where}.kind must be one of "
                            f"{sorted(_EVENT_KINDS)}")
    routing = payload.get("routing")
    if require_exact_keys(problems, routing, _ROUTING_KEYS, "routing"):
        require_nonneg_ints(problems, routing, ("skipped_hedged",),
                            "routing.")
        for field in ("impaired", "survivors"):
            if not isinstance(routing.get(field), list):
                problems.append(f"routing.{field} must be a list")
        for index, evac in enumerate(require_object_list(
                problems, routing, "evacuations")):
            where = f"routing.evacuations[{index}]"
            if require_exact_keys(problems, evac, _EVACUATION_KEYS,
                                  where):
                require_nonneg_ints(problems, evac,
                                    sorted(_EVACUATION_KEYS),
                                    f"{where}.")
        if not isinstance(routing.get("failover_assigned"), dict):
            problems.append("routing.failover_assigned must be an "
                            "object")
    for index, entry in enumerate(require_object_list(
            problems, payload, "tenants", non_empty=True)):
        where = f"tenants[{index}]"
        if not require_exact_keys(problems, entry, _TENANT_KEYS, where):
            continue
        require_nonneg_ints(
            problems, entry,
            ("offered", "admitted", "rejected", "refused", "completed",
             "failed_reads", "integrity_failures", "rescued",
             "success_ppm", "chaos_slo_ppm"), f"{where}.")
        _check_latency(problems, entry, where)
        failover = entry.get("failover")
        if require_exact_keys(problems, failover, _FAILOVER_KEYS,
                              f"{where}.failover"):
            require_nonneg_ints(
                problems, failover,
                ("assigned", "completed", "refused", "failed_reads",
                 "integrity_failures"), f"{where}.failover.")
            _check_latency(problems, failover, f"{where}.failover")
        if require_exact_keys(problems, entry.get("hedge"), _HEDGE_KEYS,
                              f"{where}.hedge"):
            require_nonneg_ints(problems, entry["hedge"],
                                sorted(_HEDGE_KEYS), f"{where}.hedge.")
        if not isinstance(entry.get("ok"), bool):
            problems.append(f"{where}.ok must be a bool")
    for index, entry in enumerate(require_object_list(
            problems, payload, "shards", non_empty=True)):
        where = f"shards[{index}]"
        if not require_exact_keys(problems, entry, _SHARD_KEYS, where):
            continue
        require_nonneg_ints(
            problems, entry,
            ("requests", "admitted", "rejected", "refused", "completed",
             "queue_peak", "busy_ps", "span_ps", "utilization_x1000",
             "data_loss", "sweep_pages", "sweep_refused", "violations",
             "retries", "retry_successes", "power_cuts",
             "evac_out_pages", "evac_in_pages", "evac_in_failures",
             "hedge_attempted", "hedge_refused", "failover_served"),
            f"{where}.")
        if entry["role"] not in _ROLES:
            problems.append(
                f"{where}.role must be one of {sorted(_ROLES)}")
        if entry["final_pass"] not in (1, 2):
            problems.append(f"{where}.final_pass must be 1 or 2")
        health = entry.get("health")
        if require_exact_keys(problems, health, _SHARD_HEALTH_KEYS,
                              f"{where}.health"):
            for field in ("state", "worst"):
                if health[field] not in _STATE_LABELS:
                    problems.append(
                        f"{where}.health.{field} must be one of "
                        f"{sorted(_STATE_LABELS)}")
        for rindex, remount in enumerate(require_object_list(
                problems, entry, "remounts")):
            rwhere = f"{where}.remounts[{rindex}]"
            if require_exact_keys(problems, remount, _REMOUNT_KEYS,
                                  rwhere):
                require_nonneg_ints(
                    problems, remount,
                    ("at_ps", "bad_blocks", "replay_recovered",
                     "replay_lost", "replay_crc_mismatches"),
                    f"{rwhere}.")
                if remount["health_state"] not in _STATE_LABELS:
                    problems.append(
                        f"{rwhere}.health_state must be one of "
                        f"{sorted(_STATE_LABELS)}")
    if require_exact_keys(problems, payload.get("totals"), _TOTAL_KEYS,
                          "totals"):
        require_nonneg_ints(problems, payload["totals"],
                            sorted(_TOTAL_KEYS), "totals.")
    gates = payload.get("gates")
    if require_exact_keys(problems, gates, _GATE_KEYS, "gates"):
        for gate in sorted(_GATE_KEYS):
            if not isinstance(gates.get(gate), bool):
                problems.append(f"gates.{gate} must be a bool")
    require_bool(problems, payload, "ok")


def validate_report(payload) -> list[str]:
    """Problems with a parsed chaos report; empty list means valid."""
    return validate_schema_report("fleet.chaos", 1, payload,
                                  _REPORT_KEYS, detail=_detail)
