"""``python -m repro fleet``: fleet-scale serving over sharded modules.

``fleet run [--quick] [--shards N] [--jobs N|auto]`` multiplexes the
tenant workloads over N independently-seeded module shards and writes a
schema-pinned ``FLEET_<timestamp>.json`` report.  Exits non-zero when
the fleet fails its acceptance gate: any data loss, a sanitizer
violation, or a tenant missing its declared SLO.  ``fleet list`` prints
the placement-policy registry and the tenant roster.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.fleet.frontend import Fleet, FleetConfig
    from repro.fleet.report import render_report, validate_report
    from repro.util import resolve_jobs

    try:
        config = FleetConfig(
            shards=args.shards, placement=args.placement,
            quick=args.quick, requests=args.requests, seed=args.seed,
            queue_bound=args.queue_bound, wear_shards=args.wear,
            jobs=resolve_jobs(args.jobs),
            weights=tuple(args.weights or ()))
    except (ConfigError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    mode = "quick" if config.quick else "full"
    print(f"repro fleet: {mode} run, {config.shards} shards, "
          f"{config.request_count} requests, "
          f"placement {config.placement}, seed {config.seed}, "
          f"jobs {config.jobs}")
    result = Fleet(config).run()
    timestamp = time.strftime("%Y%m%d-%H%M%S")
    payload = render_report(result, timestamp=timestamp)
    problems = validate_report(json.loads(payload))
    if problems:    # a schema bug is a tooling failure, not a fleet failure
        for problem in problems:
            print(f"report schema problem: {problem}", file=sys.stderr)
        return 2
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"FLEET_{timestamp}.json"
    path.write_text(payload)
    print(f"wrote {path}")
    for qos in result.tenants:
        latency = qos.latency_summary()
        gates = qos.slo_evaluation()
        verdict = "pass" if gates["ok"] else "FAIL"
        print(f"  {qos.spec.name:<10} offered={qos.offered} "
              f"admit={qos.admit_ppm / 10_000:.2f}% "
              f"p50={latency['p50_ps'] / 1e6:.2f}us "
              f"p99={latency['p99_ps'] / 1e6:.2f}us "
              f"p999={latency['p999_ps'] / 1e6:.2f}us  slo={verdict}")
    histogram = result.health_histogram
    print("  health: " + " ".join(
        f"{state}={count}" for state, count in sorted(histogram.items())))
    if not result.ok:
        if result.data_loss:
            print(f"fleet FAILED: {result.data_loss} pages lost",
                  file=sys.stderr)
        if result.violations:
            print(f"fleet FAILED: {result.violations} sanitizer "
                  "violations", file=sys.stderr)
        for qos in result.tenants:
            gates = qos.slo_evaluation()
            if not gates["ok"]:
                missed = [g for g in ("p50", "p99", "p999", "admit")
                          if not gates[g]]
                print(f"fleet FAILED: tenant {qos.spec.name} missed "
                      f"SLO gates {missed}", file=sys.stderr)
        return 1
    print("fleet clean: zero data loss, sanitizers quiet, "
          "all tenant SLOs met")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    from repro.fleet.placement import PLACEMENTS
    from repro.fleet.tenants import default_tenants

    print("placement policies:")
    for name, factory in sorted(PLACEMENTS.items()):
        doc = (factory.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<18} {doc}")
    print("tenants (full-mode footprints):")
    for spec in default_tenants(quick=False):
        pin = (f" pinned->shard {spec.pinned_shard}"
               if spec.pinned_shard is not None else "")
        print(f"  {spec.name:<10} mix={spec.mix:<9} "
              f"weight={spec.weight} "
              f"footprint={spec.footprint_pages}p "
              f"reads={spec.read_fraction:.0%}{pin}")
    return 0


def build_parser(sub_or_none: "argparse._SubParsersAction | None" = None
                 ) -> argparse.ArgumentParser:
    """Build the ``fleet`` parser, standalone or under a parent CLI."""
    if sub_or_none is None:
        parser = argparse.ArgumentParser(prog="repro fleet")
        sub = parser.add_subparsers(dest="fleet_command", required=True)
    else:
        parser = sub_or_none.add_parser(
            "fleet", help="serve tenant workloads over N module shards")
        sub = parser.add_subparsers(dest="fleet_command", required=True)

    p_run = sub.add_parser("run", help="run the fleet and write a report")
    p_run.add_argument("--quick", action="store_true",
                       help="CI-sized run (100k requests, small shards)")
    p_run.add_argument("--shards", type=int, default=4,
                       help="module shards in the fleet (default 4)")
    p_run.add_argument("--placement", default="capacity_weighted",
                       choices=("round_robin", "capacity_weighted",
                                "tenant_pinned"),
                       help="placement policy (default capacity_weighted)")
    p_run.add_argument("--requests", type=int, default=None,
                       help="total offered requests "
                            "(default: 100k quick / 1.2M full)")
    p_run.add_argument("--seed", type=int, default=7,
                       help="fleet seed (default 7)")
    p_run.add_argument("--queue-bound", type=int, default=64,
                       help="per-shard admission queue depth")
    p_run.add_argument("--wear", type=int, default=0, metavar="K",
                       help="pre-wear the first K shards so the health "
                            "histogram exercises ladder rungs")
    p_run.add_argument("--jobs", default="1",
                       help="worker processes: an integer or 'auto' "
                            "(reports are byte-identical either way)")
    p_run.add_argument("--weights", type=int, nargs="+", default=None,
                       metavar="W",
                       help="relative shard capacities for "
                            "capacity_weighted (cycled to --shards)")
    p_run.add_argument("--out", default="results",
                       help="directory for FLEET_<timestamp>.json")
    p_run.set_defaults(fn=cmd_run)

    p_list = sub.add_parser(
        "list", help="print placement policies and the tenant roster")
    p_list.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
