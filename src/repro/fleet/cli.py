"""``python -m repro fleet``: fleet-scale serving over sharded modules.

``fleet run [--quick] [--shards N] [--jobs N|auto]`` multiplexes the
tenant workloads over N independently-seeded module shards and writes a
schema-pinned ``FLEET_<timestamp>.json`` report.  Exits non-zero when
the fleet fails its acceptance gate: any data loss, a sanitizer
violation, or a tenant missing its declared SLO.  ``fleet chaos``
replays the same serving pipeline under a seeded shard-level fault
plan — driving one shard to ``read_only`` while the front end retries,
hedges, fails over and evacuates — and writes ``CHAOS_<timestamp>.json``
gating on zero committed-data loss and the bounded availability dip.
``fleet list`` prints the placement-policy registry and the tenant
roster.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.fleet.frontend import Fleet, FleetConfig
    from repro.fleet.report import render_report, validate_report
    from repro.util import resolve_jobs

    try:
        config = FleetConfig(
            shards=args.shards, placement=args.placement,
            quick=args.quick, requests=args.requests, seed=args.seed,
            queue_bound=args.queue_bound, wear_shards=args.wear,
            jobs=resolve_jobs(args.jobs),
            weights=tuple(args.weights or ()),
            worker_timeout_s=args.worker_timeout)
    except (ConfigError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    mode = "quick" if config.quick else "full"
    print(f"repro fleet: {mode} run, {config.shards} shards, "
          f"{config.request_count} requests, "
          f"placement {config.placement}, seed {config.seed}, "
          f"jobs {config.jobs}")
    result = Fleet(config).run()
    timestamp = time.strftime("%Y%m%d-%H%M%S")
    payload = render_report(result, timestamp=timestamp)
    problems = validate_report(json.loads(payload))
    if problems:    # a schema bug is a tooling failure, not a fleet failure
        for problem in problems:
            print(f"report schema problem: {problem}", file=sys.stderr)
        return 2
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"FLEET_{timestamp}.json"
    path.write_text(payload)
    print(f"wrote {path}")
    for qos in result.tenants:
        latency = qos.latency_summary()
        gates = qos.slo_evaluation()
        verdict = "pass" if gates["ok"] else "FAIL"
        print(f"  {qos.spec.name:<10} offered={qos.offered} "
              f"admit={qos.admit_ppm / 10_000:.2f}% "
              f"p50={latency['p50_ps'] / 1e6:.2f}us "
              f"p99={latency['p99_ps'] / 1e6:.2f}us "
              f"p999={latency['p999_ps'] / 1e6:.2f}us  slo={verdict}")
    histogram = result.health_histogram
    print("  health: " + " ".join(
        f"{state}={count}" for state, count in sorted(histogram.items())))
    if not result.ok:
        if result.data_loss:
            print(f"fleet FAILED: {result.data_loss} pages lost",
                  file=sys.stderr)
        if result.violations:
            print(f"fleet FAILED: {result.violations} sanitizer "
                  "violations", file=sys.stderr)
        for qos in result.tenants:
            gates = qos.slo_evaluation()
            if not gates["ok"]:
                missed = [g for g in ("p50", "p99", "p999", "admit")
                          if not gates[g]]
                print(f"fleet FAILED: tenant {qos.spec.name} missed "
                      f"SLO gates {missed}", file=sys.stderr)
        return 1
    print("fleet clean: zero data loss, sanitizers quiet, "
          "all tenant SLOs met")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.fleet.chaos import ChaosConfig, run_chaos
    from repro.fleet.chaos_report import render_report, validate_report
    from repro.util import resolve_jobs

    try:
        config = ChaosConfig(
            shards=args.shards, quick=args.quick,
            requests=args.requests, seed=args.seed,
            queue_bound=args.queue_bound, jobs=resolve_jobs(args.jobs),
            worker_timeout_s=args.worker_timeout)
    except (ConfigError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    mode = "quick" if config.quick else "full"
    print(f"repro fleet chaos: {mode} campaign, {config.shards} shards, "
          f"{config.request_count} requests, seed {config.seed}, "
          f"jobs {config.jobs}")
    result = run_chaos(config)
    timestamp = time.strftime("%Y%m%d-%H%M%S")
    payload = render_report(result, timestamp=timestamp)
    problems = validate_report(json.loads(payload))
    if problems:    # a schema bug is a tooling failure, not a chaos failure
        for problem in problems:
            print(f"report schema problem: {problem}", file=sys.stderr)
        return 2
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"CHAOS_{timestamp}.json"
    path.write_text(payload)
    print(f"wrote {path}")
    roles = result.roles
    print(f"  plan: kill shard {roles.kill_shard}, hedge target "
          f"{roles.hedge_target}, {result.hedged_writes} hedged writes")
    for outcome in result.outcomes:
        r = outcome.result
        extras = []
        if outcome.power_cuts:
            extras.append(f"cuts={outcome.power_cuts}")
        if outcome.evac_in_pages:
            extras.append(f"evac_in={outcome.evac_in_pages}")
        if outcome.failover_served:
            extras.append(f"failover={outcome.failover_served}")
        print(f"  shard {r.shard}: {r.health['state']:<9} "
              f"completed={r.completed} refused={r.refused} "
              f"retries={outcome.retries}"
              + ("".join(" " + part for part in extras)))
    for view in result.tenants:
        verdict = "pass" if view.ok else "FAIL"
        print(f"  {view.spec.name:<10} offered={view.primary.offered} "
              f"success={view.success_ppm / 10_000:.2f}% "
              f"(chaos slo {view.chaos_slo_ppm / 10_000:.2f}%) "
              f"rescued={view.rescued}  {verdict}")
    if not result.ok:
        if result.data_loss:
            print(f"chaos FAILED: {result.data_loss} committed pages "
                  "lost", file=sys.stderr)
        if result.violations:
            print(f"chaos FAILED: {result.violations} sanitizer "
                  "violations", file=sys.stderr)
        if not result.demonstrated:
            print("chaos FAILED: no shard was driven out of the write "
                  "path and fully evacuated (the campaign proved "
                  "nothing)", file=sys.stderr)
        for view in result.tenants:
            if not view.ok:
                print(f"chaos FAILED: tenant {view.spec.name} "
                      f"availability {view.success_ppm} ppm below the "
                      f"chaos SLO {view.chaos_slo_ppm} ppm",
                      file=sys.stderr)
        return 1
    evacuated = sum(out.evac_in_pages for out in result.outcomes)
    print(f"chaos clean: shard killed and evacuated ({evacuated} "
          "pages), zero committed-data loss, availability within the "
          "chaos SLO, sanitizers quiet")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    from repro.fleet.placement import PLACEMENTS
    from repro.fleet.tenants import default_tenants

    print("placement policies:")
    for name, factory in sorted(PLACEMENTS.items()):
        doc = (factory.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<18} {doc}")
    print("tenants (full-mode footprints):")
    for spec in default_tenants(quick=False):
        pin = (f" pinned->shard {spec.pinned_shard}"
               if spec.pinned_shard is not None else "")
        print(f"  {spec.name:<10} mix={spec.mix:<9} "
              f"weight={spec.weight} "
              f"footprint={spec.footprint_pages}p "
              f"reads={spec.read_fraction:.0%}{pin}")
    return 0


def build_parser(sub_or_none: "argparse._SubParsersAction | None" = None
                 ) -> argparse.ArgumentParser:
    """Build the ``fleet`` parser, standalone or under a parent CLI."""
    if sub_or_none is None:
        parser = argparse.ArgumentParser(prog="repro fleet")
        sub = parser.add_subparsers(dest="fleet_command", required=True)
    else:
        parser = sub_or_none.add_parser(
            "fleet", help="serve tenant workloads over N module shards")
        sub = parser.add_subparsers(dest="fleet_command", required=True)

    p_run = sub.add_parser("run", help="run the fleet and write a report")
    p_run.add_argument("--quick", action="store_true",
                       help="CI-sized run (100k requests, small shards)")
    p_run.add_argument("--shards", type=int, default=4,
                       help="module shards in the fleet (default 4)")
    p_run.add_argument("--placement", default="capacity_weighted",
                       choices=("round_robin", "capacity_weighted",
                                "tenant_pinned"),
                       help="placement policy (default capacity_weighted)")
    p_run.add_argument("--requests", type=int, default=None,
                       help="total offered requests "
                            "(default: 100k quick / 1.2M full)")
    p_run.add_argument("--seed", type=int, default=7,
                       help="fleet seed (default 7)")
    p_run.add_argument("--queue-bound", type=int, default=64,
                       help="per-shard admission queue depth")
    p_run.add_argument("--wear", type=int, default=0, metavar="K",
                       help="pre-wear the first K shards so the health "
                            "histogram exercises ladder rungs")
    p_run.add_argument("--jobs", default="1",
                       help="worker processes: an integer or 'auto' "
                            "(reports are byte-identical either way)")
    p_run.add_argument("--weights", type=int, nargs="+", default=None,
                       metavar="W",
                       help="relative shard capacities for "
                            "capacity_weighted (cycled to --shards)")
    p_run.add_argument("--worker-timeout", type=float, default=None,
                       metavar="S",
                       help="wall-clock deadline (seconds) for the "
                            "--jobs worker fan-out; a shard stuck past "
                            "it raises FleetError (default: wait)")
    p_run.add_argument("--out", default="results",
                       help="directory for FLEET_<timestamp>.json")
    p_run.set_defaults(fn=cmd_run)

    p_chaos = sub.add_parser(
        "chaos",
        help="run the fleet under a seeded fault plan and write a "
             "CHAOS report")
    p_chaos.add_argument("--quick", action="store_true",
                         help="CI-sized campaign (24k requests, small "
                              "shards)")
    p_chaos.add_argument("--shards", type=int, default=3,
                         help="module shards, >= 2 (default 3)")
    p_chaos.add_argument("--requests", type=int, default=None,
                         help="total offered requests "
                              "(default: 24k quick / 400k full)")
    p_chaos.add_argument("--seed", type=int, default=7,
                         help="campaign seed (default 7)")
    p_chaos.add_argument("--queue-bound", type=int, default=64,
                         help="per-shard admission queue depth")
    p_chaos.add_argument("--jobs", default="1",
                         help="worker processes: an integer or 'auto' "
                              "(reports are byte-identical either way)")
    p_chaos.add_argument("--worker-timeout", type=float, default=None,
                         metavar="S",
                         help="wall-clock deadline (seconds) for the "
                              "--jobs worker fan-out (default: wait)")
    p_chaos.add_argument("--out", default="results",
                         help="directory for CHAOS_<timestamp>.json")
    p_chaos.set_defaults(fn=cmd_chaos)

    p_list = sub.add_parser(
        "list", help="print placement policies and the tenant roster")
    p_list.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
