"""``repro.fleet`` — fleet-scale serving over sharded NVDIMM-C modules.

Everything before this package drives exactly one module.  The fleet
layer promotes the simulator to the ROADMAP's production-scale shape: a
:class:`~repro.fleet.frontend.Fleet` of N independently-seeded module
shards behind a deterministic request front end that multiplexes
concurrent tenant workloads, with admission control (bounded per-shard
queues, backpressure), pluggable placement (round-robin interleave,
capacity-weighted, tenant-pinned tiering — the policy families the
Samsung CXL-HM characterization studies) and a per-tenant QoS layer
that scores p50/p99/p999 latency and throughput against declared SLOs.
The chaos layer (:mod:`repro.fleet.chaos`) then attacks that fleet:
seeded per-shard fault plans (program-fail bursts, ECC bursts, power
cuts with cold remounts) against which the front end defends with
bounded retry, write hedging, overflow-ring failover, and shard
evacuation.

Layout::

    tenants.py       tenant specs + SLOs; request streams reuse the
                     fio / tpch / mixed_load workload generators
    placement.py     placement policies + the zipfian key sampler
    shard.py         one module shard: fork-from-prefix, admission
                     queue, integrity sweep, health summary
    qos.py           latency percentiles and SLO evaluation
    frontend.py      the front end: plan -> place -> fan out -> merge
    report.py        the schema-pinned ``FLEET_*.json`` (repro.fleet/1)
    chaos.py         chaos campaigns: fault plans, retry/hedge/
                     failover, shard evacuation, two-pass routing
    chaos_report.py  the schema-pinned ``CHAOS_*.json``
                     (repro.fleet.chaos/1)
    cli.py           ``repro fleet run | chaos | list``

Determinism: a fleet run is a pure function of ``(seed, config)`` —
byte-identical reports across repeated runs and across ``--jobs``
settings, because every shard executes an identical plan from an
identical forked snapshot regardless of which process runs it.  Chaos
campaigns keep the contract with a two-pass structure: pass 1 runs the
pre-planned fault schedules, a pure routing pass derives failover and
evacuation from the pass-1 outcomes, pass 2 deterministically re-runs
only the shards whose plans grew.
"""

from repro.fleet.chaos import ChaosConfig, run_chaos
from repro.fleet.frontend import Fleet, FleetConfig, run_fleet
from repro.fleet.placement import PLACEMENTS, ZipfSampler
from repro.fleet.report import render_report, validate_report
from repro.fleet.tenants import TenantSLO, TenantSpec, default_tenants

__all__ = [
    "Fleet", "FleetConfig", "run_fleet", "ChaosConfig", "run_chaos",
    "PLACEMENTS", "ZipfSampler", "TenantSLO", "TenantSpec",
    "default_tenants", "render_report", "validate_report",
]
