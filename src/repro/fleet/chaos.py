"""Chaos campaigns: shard-level fault injection + fault-aware routing.

PR 8's fleet assumes every shard stays healthy.  This module drops the
assumption: a **chaos campaign** drives a seeded per-shard fault plan
through the PR 3 injector machinery — NAND program-fail bursts,
uncorrectable-ECC bursts, a mid-run power cut with a cold remount via
:func:`repro.recovery.recover_mount` — while the front end defends the
tenants with the three standard resilience moves:

* **retry** — every request runs under a bounded
  :class:`~repro.health.retry.RetryPolicy` (seed-derived CRC32 jitter,
  capped exponential backoff), so transient media errors and
  cut-interrupted requests are re-issued instead of surfaced;
* **failover** — requests a ``read_only``/``fail_stop`` shard refused
  are re-placed onto a surviving shard chosen by a deterministic
  overflow ring (the next surviving shard on the ring after the
  impaired one);
* **hedging** — OLTP writes bound for the planned kill shard are
  mirrored up front onto the ring-next shard; when the primary is
  refused, the completed hedge *rescues* the request without a second
  round trip;
* **evacuation** — an impaired shard's committed pages are bulk-copied
  to its donor (each copy re-programmed through the driver, so it gets
  a fresh OOB recovery stamp, and verified by the donor's final
  integrity sweep) and the placement map is patched: the donor answers
  for the evacuated keys from then on.

Determinism and the ``--jobs`` contract: the campaign runs in **two
passes**.  Pass 1 executes every shard's plan plus its fault schedule —
each shard is still a pure function of its own plan, so the pass fans
out over worker processes unchanged.  The routing pass is pure
arithmetic over the pass-1 outcomes (which shards ended impaired, which
requests they refused, what their committed pages hold).  Pass 2
re-runs only the shards whose plans grew (hedge mirrors, evacuated
pages, failover tails) from the same prefix snapshot — deterministic
replay makes the re-run exact, so the merged report is byte-identical
at any ``jobs`` setting.
"""

from __future__ import annotations

import random
import warnings
import zlib
from collections import deque
from dataclasses import dataclass, field, replace

from repro.device.power import PowerFailureModel
from repro.errors import (ConfigError, FailStopError, MediaError,
                          PowerLossInterrupt)
from repro.faults.clock import FaultClock
from repro.fleet.frontend import Fleet, FleetConfig, collect_fan_out
from repro.fleet.qos import TenantQoS
from repro.fleet.shard import (
    Request,
    ShardPlan,
    ShardResult,
    _filler,
    build_prefix,
    tenant_bases,
)
from repro.fleet.tenants import TenantSpec, default_tenants
from repro.health.monitor import HealthPolicy, HealthState
from repro.health.retry import RetryPolicy
from repro.recovery import recover_mount
from repro.sim.snapshot import SimSnapshot
from repro.sim.trace import use_tracer
from repro.units import us
from repro.workloads.mixed_load import _check_record, _make_record

#: Request-count defaults per mode.  The two-pass structure serves the
#: donor's plan twice, so chaos sizes below the plain fleet run.
QUICK_REQUESTS = 24_000
FULL_REQUESTS = 400_000

#: The chaos module's bad-block budget: :class:`HealthPolicy`'s stock
#: ``read_only_bad_blocks=16`` would need more injected wear than a
#: quick run programs, so the campaign mounts every shard with a
#: tighter ladder — the planned program-fail bursts then push the kill
#: shard over the ``read_only`` edge mid-run.
CHAOS_BAD_BLOCK_BUDGET = 4

#: Simulated time a cold remount costs the cut shard (drain + media
#: scan + driver bring-up) before it serves again.
_REMOUNT_PENALTY_PS = round(us(150))

#: Availability allowance under chaos, in ppm: each tenant's chaos SLO
#: is its declared ``min_admit_ppm`` minus this allowance.  The fleet
#: is *expected* to dip while a shard dies and its traffic re-routes;
#: the gate bounds the dip instead of pretending it away.
SLO_ALLOWANCE_PPM = 120_000

#: Per-request front-end retry policy shape (seed/site filled per
#: shard).  Three attempts with jittered exponential backoff — enough
#: to ride out an ECC burst that exhausts the device-side read-retry
#: ladder, bounded so a sticky failure surfaces quickly.
_RETRY_ATTEMPTS = 3
_RETRY_BASE_PS = round(us(5))
_RETRY_CAP_PS = round(us(40))

#: The kill shard's schedule: an ECC burst deep enough to escape the
#: device's read-retry ladder (surfacing a front-end retry), a mid-run
#: power cut (drain, cold remount, replay audit), then program-fail
#: bursts totalling twice the bad-block budget — the shard grows bad
#: blocks until the ladder locks it ``read_only``.  Fractions are of
#: the shard's request count (virtual-time schedule positions).
_KILL_SCHEDULE: tuple[tuple[str, int, float], ...] = (
    ("ecc-burst", 5, 0.12),
    ("power-cut", 1, 0.22),
    ("program-fail", 3, 0.30),
    ("program-fail", 3, 0.38),
    ("program-fail", 2, 0.46),
)

#: Every surviving shard still takes light fire: a burst the read-retry
#: ladder absorbs internally (transient health evidence, no surfaced
#: error) — survivors are stressed, not sterile.
_SURVIVOR_SCHEDULE: tuple[tuple[str, int, float], ...] = (
    ("ecc-burst", 2, 0.50),
)

#: Health states that take a shard out of the write path.
_IMPAIRED_STATES = ("read_only", "fail_stop")


# -- configuration ------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosConfig:
    """Everything that determines a chaos campaign."""

    shards: int = 3
    quick: bool = False
    requests: int | None = None       #: None -> mode default
    seed: int = 7
    queue_bound: int = 64
    jobs: int = 1
    placement: str = "capacity_weighted"
    weights: tuple[int, ...] = ()
    worker_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.shards < 2:
            raise ConfigError(
                f"chaos needs shards >= 2 — failover and evacuation "
                f"require at least one survivor — got {self.shards}")
        # Shared validation (placement, queue_bound, timeout, ...).
        self.fleet_config()

    @property
    def request_count(self) -> int:
        if self.requests is not None:
            return self.requests
        return QUICK_REQUESTS if self.quick else FULL_REQUESTS

    def fleet_config(self) -> FleetConfig:
        """The underlying fleet configuration (planning + placement)."""
        return FleetConfig(
            shards=self.shards, placement=self.placement,
            quick=self.quick, requests=self.request_count,
            seed=self.seed, queue_bound=self.queue_bound,
            wear_shards=0, jobs=self.jobs, weights=self.weights,
            worker_timeout_s=self.worker_timeout_s)

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "placement": self.placement,
            "quick": self.quick,
            "requests": self.request_count,
            "seed": self.seed,
            "queue_bound": self.queue_bound,
            "weights": list(self.weights),
            "bad_block_budget": CHAOS_BAD_BLOCK_BUDGET,
            "slo_allowance_ppm": SLO_ALLOWANCE_PPM,
        }


# -- the fault plan -----------------------------------------------------------------


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault on one shard's virtual timeline."""

    at_request: int   #: apply before serving this primary-request ordinal
    kind: str         #: "program-fail" | "ecc-burst" | "power-cut"
    magnitude: int

    def to_dict(self) -> dict:
        return {"at_request": self.at_request, "kind": self.kind,
                "magnitude": self.magnitude}


@dataclass(frozen=True)
class ChaosRoles:
    """The seed-derived cast: who dies, who insures."""

    kill_shard: int    #: driven to ``read_only`` by the fault plan
    hedge_target: int  #: ring-next shard carrying the OLTP write hedges


def plan_roles(config: ChaosConfig) -> ChaosRoles:
    """Pick the kill shard (seeded) and its ring-next hedge target."""
    rng = random.Random(
        zlib.crc32(f"{config.seed}:chaos:roles".encode("ascii")))
    kill = rng.randrange(config.shards)
    return ChaosRoles(kill_shard=kill,
                      hedge_target=(kill + 1) % config.shards)


def plan_events(shard: int, roles: ChaosRoles,
                plan_requests: int) -> tuple[ChaosEvent, ...]:
    """The shard's fault schedule, positioned on its request ordinals."""
    schedule = (_KILL_SCHEDULE if shard == roles.kill_shard
                else _SURVIVOR_SCHEDULE)
    return tuple(
        ChaosEvent(at_request=min(plan_requests,
                                  round(fraction * plan_requests)),
                   kind=kind, magnitude=magnitude)
        for kind, magnitude, fraction in schedule)


def _retry_seed(seed: int, shard: int) -> int:
    return zlib.crc32(f"{seed}:chaos:retry:{shard}".encode("ascii"))


# -- per-shard execution ------------------------------------------------------------


@dataclass(frozen=True)
class ChaosShardPlan:
    """One shard's chaos workload: base plan + faults + extensions.

    Pass 1 runs with empty extensions; pass 2 re-runs the shards whose
    plans grew hedge mirrors, evacuated pages, or failover tails.
    """

    base: ShardPlan
    events: tuple[ChaosEvent, ...]
    retry_seed: int
    hedges: tuple[Request, ...] = ()
    evac_in: tuple[tuple[int, bytes], ...] = ()
    failover: tuple[Request, ...] = ()
    collect_evac: bool = True

    @property
    def shard(self) -> int:
        return self.base.shard


@dataclass
class ChaosShardOutcome:
    """Everything one chaos shard run observed."""

    result: ShardResult
    retries: int = 0            #: front-end re-issues (backoff applied)
    retry_successes: int = 0    #: requests that completed on a retry
    power_cuts: int = 0
    remounts: list[dict] = field(default_factory=list)
    refused_requests: tuple[Request, ...] = ()
    evac_pages: tuple[tuple[int, bytes], ...] = ()
    evac_in_pages: int = 0
    evac_in_failures: int = 0
    hedge_attempted: int = 0
    hedge_refused: int = 0
    hedge_completed_seqs: frozenset[int] = frozenset()
    failover_tenants: list[TenantQoS] = field(default_factory=list)
    failover_served: int = 0


def _apply_event(system, event: ChaosEvent, rng: random.Random) -> None:
    """Arm one scheduled fault on the live shard (PR 3 machinery)."""
    if event.kind == "program-fail":
        dies = system.nand.dies
        for _ in range(event.magnitude):
            dies[rng.randrange(len(dies))].inject_program_failures(1)
    elif event.kind == "ecc-burst":
        system.nand.codec.inject_uncorrectable(event.magnitude)
    elif event.kind == "power-cut":
        clock = FaultClock().cut_on_visit(event.magnitude, site="nvmc")
        system.nvmc.fault_clock = clock
        system.nand.ftl.fault_clock = clock
    else:
        raise ConfigError(f"unknown chaos event kind {event.kind!r}")


def _cold_remount(system, now_ps: int):
    """§V-C drain then cold mount; returns (fresh_system, audit note)."""
    power = PowerFailureModel(system.driver)
    power.power_fail(now_ps=now_ps)
    fresh, report = recover_mount(system, power.journal, now_ps=now_ps)
    note = {
        "at_ps": now_ps,
        "health_state": report.health_state,
        "bad_blocks": report.bad_blocks,
        "replay_recovered": report.replay_recovered,
        "replay_lost": report.replay_lost,
        "replay_crc_mismatches": report.replay_crc_mismatches,
    }
    return fresh, note


def run_chaos_shard(snapshot: SimSnapshot, plan: ChaosShardPlan,
                    tenants: tuple[TenantSpec, ...]) -> ChaosShardOutcome:
    """Serve one shard's plan under its fault schedule.

    The serve loop mirrors :func:`repro.fleet.shard.run_shard` —
    virtual-time arrivals, bounded-FIFO admission, shadow-dict
    integrity sweep — with the chaos additions: scheduled fault events,
    per-request bounded retry, power-cut recovery (drain + cold remount
    + deterministic queue flush), hedge mirrors interleaved by arrival,
    evacuation bulk copies, and the failover tail.
    """
    state = snapshot.restore()
    system = state["system"]
    tracer = state["tracer"]
    suite = state["suite"]
    epoch: int = state["t"]
    system.nand.reseed(plan.base.seed)

    policy = RetryPolicy(
        max_attempts=_RETRY_ATTEMPTS, base_ps=_RETRY_BASE_PS,
        cap_ps=_RETRY_CAP_PS, multiplier=2.0, jitter=0.25,
        seed=plan.retry_seed, site=f"chaos.shard{plan.base.shard}")
    result = ShardResult(
        shard=plan.base.shard,
        tenants=[TenantQoS(spec=tenant) for tenant in tenants])
    outcome = ChaosShardOutcome(
        result=result,
        failover_tenants=[TenantQoS(spec=tenant) for tenant in tenants])
    bases = tenant_bases(tenants)
    shadow: dict[int, bytes] = {}
    record_pages: set[int] = set()
    refused: list[Request] = []
    hedge_completed: set[int] = set()
    events_left = list(plan.events)
    fault_rng = random.Random(
        zlib.crc32(f"{plan.retry_seed}:events".encode("ascii")))

    def region_is_records(page: int) -> bool:
        tenant = 0
        for index, base in enumerate(bases):
            if page >= base:
                tenant = index
        return tenants[tenant].mix == "mixed"

    # Hedge mirrors interleave with the primary plan by arrival time:
    # the front end issues the insurance copy the moment it issues the
    # primary, so the hedge shard sees both streams merged.
    entries = sorted(
        [(req, False) for req in plan.base.requests]
        + [(req, True) for req in plan.hedges],
        key=lambda entry: (entry[0].arrival_ps, entry[0].seq, entry[1]))

    with use_tracer(tracer), warnings.catch_warnings():
        # Same rationale as run_shard: the bounded trace archive
        # overflows by design on long serves; sanitizers subscribe
        # upstream of the drop.
        warnings.filterwarnings("ignore", message="Tracer capacity",
                                category=RuntimeWarning)
        inflight: deque[int] = deque()
        t_free = epoch
        first_start = last_end = epoch
        primary_index = 0

        def serve_op(req: Request, page: int, start: int):
            """One request with bounded retry and power-cut recovery.

            Returns ``(status, end_ps, payload)`` with status one of
            ``"ok"`` / ``"refused"`` / ``"failed"``.  A power cut mid
            operation runs the battery drain and the cold mount, then
            re-issues the interrupted request on the fresh system — the
            admission queue empties deterministically with the power.
            """
            nonlocal system
            attempts = 0
            at = start
            while True:
                attempts += 1
                try:
                    if req.write:
                        if tenants[req.tenant].mix == "mixed":
                            payload = _make_record(req.tenant,
                                                   req.version, page)
                        else:
                            payload = _filler(page, req.version)
                        end = system.driver.write_page(page, payload, at)
                        return "ok", end, payload, attempts
                    payload, end = system.driver.read_page(page, at)
                    return "ok", end, payload, attempts
                except PowerLossInterrupt as exc:
                    outcome.power_cuts += 1
                    cut_ps = max(at, exc.time_ps)
                    system, note = _cold_remount(system, cut_ps)
                    outcome.remounts.append(note)
                    inflight.clear()
                    outcome.retries += 1
                    at = cut_ps + _REMOUNT_PENALTY_PS
                except MediaError as exc:
                    # Degraded/fail-stop refusals carry a reason and
                    # are sticky — retrying the same shard is futile.
                    if getattr(exc, "reason", None) is not None:
                        return "refused", at, None, attempts
                    if not policy.allows(attempts):
                        return "failed", at, None, attempts
                    outcome.retries += 1
                    at += policy.backoff_ps(attempts,
                                            site=f"req{req.seq}")

        for req, is_hedge in entries:
            if not is_hedge:
                while events_left and \
                        events_left[0].at_request <= primary_index:
                    _apply_event(system, events_left.pop(0), fault_rng)
                primary_index += 1
            arrival = epoch + req.arrival_ps
            page = bases[req.tenant] + req.key

            if is_hedge:
                outcome.hedge_attempted += 1
                status, end, payload, _ = serve_op(
                    req, page, max(arrival, t_free))
                if status == "ok":
                    hedge_completed.add(req.seq)
                    t_free = end
                    shadow[page] = payload
                    if tenants[req.tenant].mix == "mixed":
                        record_pages.add(page)
                else:
                    outcome.hedge_refused += 1
                continue

            qos = result.tenants[req.tenant]
            qos.offered += 1
            while inflight and inflight[0] <= arrival:
                inflight.popleft()
            if len(inflight) >= plan.base.queue_bound:
                qos.rejected += 1
                result.rejected += 1
                continue
            qos.admitted += 1
            result.admitted += 1
            start = max(arrival, t_free)
            status, end, payload, attempts = serve_op(req, page, start)
            if status == "refused":
                qos.refused += 1
                result.refused += 1
                refused.append(req)
                continue
            if status == "failed":
                qos.failed_reads += 1
                continue
            if attempts > 1:
                outcome.retry_successes += 1
            if req.write:
                shadow[page] = payload
                if tenants[req.tenant].mix == "mixed":
                    record_pages.add(page)
            elif page in record_pages and \
                    not _check_record(payload, page):
                qos.integrity_failures += 1
            t_free = end
            inflight.append(end)
            result.queue_peak = max(result.queue_peak, len(inflight))
            qos.completed += 1
            result.completed += 1
            qos.latencies_ps.append(max(0, end - arrival))
            result.busy_ps += max(0, end - start)
            first_start = min(first_start, start) \
                if result.completed > 1 else start
            last_end = end
        result.span_ps = max(0, last_end - first_start)
        # Flush events scheduled past the last served ordinal (plan
        # rounding); applying them keeps the schedule exact.
        for event in events_left:
            _apply_event(system, event, fault_rng)

        # Evacuation-in: bulk-program the donated pages through the
        # driver (each lands with a fresh OOB recovery stamp) and track
        # them in the shadow so the final sweep verifies every copy.
        t = max(t_free, epoch)
        for page, data in plan.evac_in:
            try:
                t = system.driver.write_page(page, data, t)
            except MediaError:
                outcome.evac_in_failures += 1
                continue
            shadow[page] = data
            outcome.evac_in_pages += 1
            if region_is_records(page):
                record_pages.add(page)

        # Failover tail: requests refused elsewhere, re-placed here.
        # They queue behind the evacuation window — the availability
        # hit is charged honestly: latency runs from the *original*
        # arrival the impaired shard stamped.
        for req in plan.failover:
            fqos = outcome.failover_tenants[req.tenant]
            fqos.offered += 1
            fqos.admitted += 1
            page = bases[req.tenant] + req.key
            arrival = epoch + req.arrival_ps
            status, end, payload, _ = serve_op(
                req, page, max(arrival, t))
            if status == "refused":
                fqos.refused += 1
                continue
            if status == "failed":
                fqos.failed_reads += 1
                continue
            if req.write:
                shadow[page] = payload
                if tenants[req.tenant].mix == "mixed":
                    record_pages.add(page)
            elif page in record_pages and \
                    not _check_record(payload, page):
                fqos.integrity_failures += 1
            t = end
            fqos.completed += 1
            outcome.failover_served += 1
            fqos.latencies_ps.append(max(0, end - arrival))

        # Integrity sweep — and, when this shard ended impaired, the
        # evacuation read-out: every verified committed page doubles as
        # the payload the routing pass hands the donor (read_only
        # degraded reads still serve, so the sweep is the export path).
        impaired = system.health.state >= HealthState.READ_ONLY
        collect = plan.collect_evac and impaired
        evac: list[tuple[int, bytes]] = []
        for page in sorted(shadow):
            result.sweep_pages += 1
            try:
                data, t = system.driver.read_page(page, t)
            except FailStopError:
                result.sweep_refused += 1
                continue
            except MediaError:
                result.data_loss += 1
                continue
            if data != shadow[page]:
                result.data_loss += 1
                continue
            if collect:
                evac.append((page, data))
        suite.detach()

    result.violations = len(suite.violations)
    monitor = system.health
    worst = monitor.state
    for transition in monitor.timeline:
        worst = max(worst, HealthState[transition.to_state.upper()])
    result.health = {
        "state": monitor.state.label,
        "worst": worst.label,
        "counters": {key: monitor.counters.counts[key]
                     for key in sorted(monitor.counters.counts)},
        "transitions": len(monitor.timeline),
    }
    outcome.refused_requests = tuple(refused)
    outcome.evac_pages = tuple(evac)
    outcome.hedge_completed_seqs = frozenset(hedge_completed)
    return outcome


def _run_chaos_shard_worker(snapshot, plan, tenants) -> ChaosShardOutcome:
    """Top-level worker so ProcessPoolExecutor can pickle the call."""
    return run_chaos_shard(snapshot, plan, tenants)


# -- the deterministic routing pass -------------------------------------------------


@dataclass(frozen=True)
class Evacuation:
    """One impaired shard's bulk copy to its donor."""

    source: int
    donor: int
    pages_committed: int        #: verified committed pages at export
    pages_excluded_hedged: int  #: newer hedge copy already on donor
    pages: tuple[tuple[int, bytes], ...]


@dataclass(frozen=True)
class RoutingPlan:
    """The pure pass-2 plan derived from pass-1 outcomes."""

    impaired: tuple[int, ...]
    survivors: tuple[int, ...]
    evacuations: tuple[Evacuation, ...]
    failover: dict[int, tuple[Request, ...]]  #: donor -> re-placed reqs
    skipped_hedged: int   #: refusals left to their hedge (no failover)


def route_failover(outcomes: list[ChaosShardOutcome], roles: ChaosRoles,
                   hedged_seqs: frozenset[int],
                   bases: tuple[int, ...]) -> RoutingPlan:
    """Derive donors, evacuations and failover placement — pure.

    The overflow ring: an impaired shard's donor is the next surviving
    shard after it in ring order, and *all* of its refused traffic and
    evacuated pages go to that one donor — so the patched placement map
    stays a function (impaired shard -> donor), evacuated data and
    failed-over writes land on the same module, and reads of evacuated
    keys are consistent.  Refusals whose hedge mirror already carries
    the write are left to the hedge (no double placement); their pages
    are excluded from the evacuation so the older source copy cannot
    clobber the newer hedge copy on the donor.
    """
    shards = len(outcomes)
    impaired = tuple(
        s for s in range(shards)
        if outcomes[s].result.health.get("state") in _IMPAIRED_STATES)
    survivors = tuple(s for s in range(shards) if s not in impaired)
    evacuations: list[Evacuation] = []
    failover: dict[int, list[Request]] = {s: [] for s in survivors}
    skipped = 0
    for source in impaired:
        if not survivors:
            break   # total fleet loss: nothing to route to; gate fails
        donor = next((source + step) % shards
                     for step in range(1, shards + 1)
                     if (source + step) % shards in survivors)
        excluded: set[int] = set()
        if donor == roles.hedge_target:
            for req in outcomes[source].refused_requests:
                if req.write and req.seq in hedged_seqs:
                    excluded.add(bases[req.tenant] + req.key)
        pages = tuple((page, data)
                      for page, data in outcomes[source].evac_pages
                      if page not in excluded)
        evacuations.append(Evacuation(
            source=source, donor=donor,
            pages_committed=len(outcomes[source].evac_pages),
            pages_excluded_hedged=(len(outcomes[source].evac_pages)
                                   - len(pages)),
            pages=pages))
        for req in outcomes[source].refused_requests:
            if req.seq in hedged_seqs:
                skipped += 1
                continue
            failover[donor].append(req)
    return RoutingPlan(
        impaired=impaired, survivors=survivors,
        evacuations=tuple(evacuations),
        failover={donor: tuple(reqs)
                  for donor, reqs in failover.items()},
        skipped_hedged=skipped)


# -- the campaign -------------------------------------------------------------------


@dataclass
class ChaosTenantView:
    """One tenant's merged chaos accounting across both passes."""

    spec: TenantSpec
    primary: TenantQoS
    failover: TenantQoS
    hedge_planned: int = 0
    hedge_completed: int = 0
    rescued: int = 0

    @property
    def success_ppm(self) -> int:
        """Availability under chaos: primary completions plus failover
        completions plus hedge rescues, over everything offered."""
        if self.primary.offered == 0:
            return 1_000_000
        successes = (self.primary.completed + self.failover.completed
                     + self.rescued)
        return round(1_000_000 * successes / self.primary.offered)

    @property
    def chaos_slo_ppm(self) -> int:
        return max(0, self.spec.slo.min_admit_ppm - SLO_ALLOWANCE_PPM)

    @property
    def ok(self) -> bool:
        return self.success_ppm >= self.chaos_slo_ppm


@dataclass
class ChaosResult:
    """The merged outcome of one chaos campaign."""

    config: ChaosConfig
    roles: ChaosRoles
    service_est_ps: int
    events: dict[int, tuple[ChaosEvent, ...]]
    hedged_writes: int
    outcomes: list[ChaosShardOutcome]   #: final per shard (pass 2 wins)
    pass2_shards: tuple[int, ...]
    routing: RoutingPlan
    tenants: list[ChaosTenantView]

    @property
    def data_loss(self) -> int:
        return sum(out.result.data_loss for out in self.outcomes)

    @property
    def violations(self) -> int:
        return sum(out.result.violations for out in self.outcomes)

    @property
    def evacuation_ok(self) -> bool:
        """Every planned evacuation copied in full, no copy failures."""
        copied = {donor: 0 for donor in range(len(self.outcomes))}
        for out in self.outcomes:
            copied[out.result.shard] = out.evac_in_pages
        if any(out.evac_in_failures for out in self.outcomes):
            return False
        planned: dict[int, int] = {}
        for evac in self.routing.evacuations:
            planned[evac.donor] = planned.get(evac.donor, 0) \
                + len(evac.pages)
        return all(copied.get(donor, 0) == count
                   for donor, count in planned.items())

    @property
    def demonstrated(self) -> bool:
        """>=1 shard driven out of the write path and fully evacuated."""
        return bool(self.routing.impaired) and \
            bool(self.routing.evacuations) and self.evacuation_ok

    @property
    def ok(self) -> bool:
        """The chaos gate: zero committed loss, quiet sanitizers,
        bounded availability dip, and the campaign actually killed and
        evacuated a shard (a chaos run that hurt nobody proved
        nothing)."""
        return (self.data_loss == 0 and self.violations == 0
                and self.demonstrated
                and all(view.ok for view in self.tenants))


def _execute(plans: list[ChaosShardPlan], snapshot: SimSnapshot,
             tenants: tuple[TenantSpec, ...],
             config: ChaosConfig) -> list[ChaosShardOutcome]:
    """Run chaos shard plans, serially or over worker processes."""
    if config.jobs > 1 and len(plans) > 1:
        from concurrent.futures import ProcessPoolExecutor
        workers = min(config.jobs, len(plans))
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = [pool.submit(_run_chaos_shard_worker, snapshot,
                                   plan, tenants)
                       for plan in plans]
            return collect_fan_out(
                futures, [plan.shard for plan in plans], pool,
                config.worker_timeout_s)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    return [run_chaos_shard(snapshot, plan, tenants) for plan in plans]


def run_chaos(config: ChaosConfig | None = None,
              **overrides) -> ChaosResult:
    """One-call entry point: ``run_chaos(quick=True, shards=3)``."""
    if config is None:
        config = ChaosConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    tenants = default_tenants(config.quick)
    fleet_config = config.fleet_config()
    snapshot, service_est_ps = build_prefix(
        tenants, config.quick, config.seed,
        health_policy=HealthPolicy(
            read_only_bad_blocks=CHAOS_BAD_BLOCK_BUDGET))
    base_plans = Fleet(fleet_config).plan(service_est_ps)
    roles = plan_roles(config)
    events = {shard: plan_events(shard, roles,
                                 len(base_plans[shard].requests))
              for shard in range(config.shards)}

    # Hedge plan (pre-execution): every OLTP write bound for the kill
    # shard is mirrored onto the ring-next shard.
    hedges = tuple(req for req in base_plans[roles.kill_shard].requests
                   if req.write and tenants[req.tenant].mix == "mixed")
    hedged_seqs = frozenset(req.seq for req in hedges)

    # Pass 1: every shard under its fault schedule, extensions empty.
    pass1_plans = [
        ChaosShardPlan(base=base, events=events[shard],
                       retry_seed=_retry_seed(config.seed, shard))
        for shard, base in enumerate(base_plans)]
    outcomes = _execute(pass1_plans, snapshot, tenants, config)

    # If the hedge target itself ended impaired (not the plan, but the
    # campaign must stay honest), the insurance is void: rescued
    # requests fall back to ordinary failover.
    hedge_state = outcomes[roles.hedge_target].result.health.get("state")
    if hedge_state in _IMPAIRED_STATES:
        hedges, hedged_seqs = (), frozenset()

    bases = tenant_bases(tenants)
    routing = route_failover(outcomes, roles, hedged_seqs, bases)

    # Pass 2: re-run only the shards whose plans grew.
    pass2_set: set[int] = set()
    if hedges:
        pass2_set.add(roles.hedge_target)
    pass2_set.update(evac.donor for evac in routing.evacuations)
    pass2_set.update(donor for donor, reqs in routing.failover.items()
                     if reqs)
    pass2_shards = tuple(sorted(pass2_set))
    evac_by_donor: dict[int, list[tuple[int, bytes]]] = {}
    for evac in routing.evacuations:
        evac_by_donor.setdefault(evac.donor, []).extend(evac.pages)
    pass2_plans = [
        replace(pass1_plans[shard],
                hedges=(hedges if shard == roles.hedge_target else ()),
                evac_in=tuple(sorted(evac_by_donor.get(shard, []))),
                failover=routing.failover.get(shard, ()),
                collect_evac=False)
        for shard in pass2_shards]
    final = list(outcomes)
    for plan, outcome in zip(pass2_plans,
                             _execute(pass2_plans, snapshot, tenants,
                                      config)):
        final[plan.shard] = outcome

    # Hedge-rescue join: a refused, hedged request whose mirror
    # completed on the hedge shard counts as served.
    rescued = [0] * len(tenants)
    completed_hedges = final[roles.hedge_target].hedge_completed_seqs
    for source in routing.impaired:
        for req in outcomes[source].refused_requests:
            if req.seq in hedged_seqs and req.seq in completed_hedges:
                rescued[req.tenant] += 1
    hedge_planned = [0] * len(tenants)
    hedge_completed = [0] * len(tenants)
    tenant_by_seq = {req.seq: req.tenant for req in hedges}
    for req in hedges:
        hedge_planned[req.tenant] += 1
    for seq in completed_hedges:
        hedge_completed[tenant_by_seq[seq]] += 1

    views = []
    for index, spec in enumerate(tenants):
        primary = TenantQoS(spec=spec)
        failover_qos = TenantQoS(spec=spec)
        for outcome in final:
            primary.merge(outcome.result.tenants[index])
            failover_qos.merge(outcome.failover_tenants[index])
        views.append(ChaosTenantView(
            spec=spec, primary=primary, failover=failover_qos,
            hedge_planned=hedge_planned[index],
            hedge_completed=hedge_completed[index],
            rescued=rescued[index]))

    return ChaosResult(
        config=config, roles=roles, service_est_ps=service_est_ps,
        events=events, hedged_writes=len(hedges), outcomes=final,
        pass2_shards=pass2_shards, routing=routing, tenants=views)
