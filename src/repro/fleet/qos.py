"""Per-tenant QoS accounting: latency percentiles vs declared SLOs.

The QoS layer is pure bookkeeping — integers in, integers out — so the
report stays byte-deterministic: percentiles are order statistics over
the collected latency samples (never interpolated floats), and ratios
are reported in parts-per-thousand/-million fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.tenants import TenantSLO, TenantSpec


def percentile_ps(samples: list[int], fraction: float) -> int:
    """Order-statistic percentile (0 for an empty sample set)."""
    if not samples:
        return 0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


@dataclass
class TenantQoS:
    """Everything one tenant experienced across the whole fleet."""

    spec: TenantSpec
    offered: int = 0          #: requests the tenant submitted
    admitted: int = 0         #: past admission control
    rejected: int = 0         #: backpressure: shard queue full
    refused: int = 0          #: degraded/fail-stop module refusals
    completed: int = 0        #: served to completion
    failed_reads: int = 0     #: media errors surfaced to the tenant
    integrity_failures: int = 0
    latencies_ps: list[int] = field(default_factory=list)

    def merge(self, other: "TenantQoS") -> None:
        """Fold one shard's partial accounting into the fleet view."""
        self.offered += other.offered
        self.admitted += other.admitted
        self.rejected += other.rejected
        self.refused += other.refused
        self.completed += other.completed
        self.failed_reads += other.failed_reads
        self.integrity_failures += other.integrity_failures
        self.latencies_ps.extend(other.latencies_ps)

    @property
    def admit_ppm(self) -> int:
        if self.offered == 0:
            return 1_000_000
        served = self.admitted - self.refused
        return round(1_000_000 * served / self.offered)

    def latency_summary(self) -> dict:
        samples = self.latencies_ps
        return {
            "samples": len(samples),
            "p50_ps": percentile_ps(samples, 0.50),
            "p99_ps": percentile_ps(samples, 0.99),
            "p999_ps": percentile_ps(samples, 0.999),
            "max_ps": max(samples) if samples else 0,
        }

    def slo_evaluation(self) -> dict:
        """Pass/fail per SLO clause plus the conjunction."""
        slo: TenantSLO = self.spec.slo
        latency = self.latency_summary()
        gates = {
            "p50": latency["p50_ps"] <= slo.p50_ps,
            "p99": latency["p99_ps"] <= slo.p99_ps,
            "p999": latency["p999_ps"] <= slo.p999_ps,
            "admit": self.admit_ppm >= slo.min_admit_ppm,
        }
        gates["ok"] = all(gates.values())
        return gates

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "mix": self.spec.mix,
            "weight": self.spec.weight,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "refused": self.refused,
            "completed": self.completed,
            "failed_reads": self.failed_reads,
            "integrity_failures": self.integrity_failures,
            "admit_ppm": self.admit_ppm,
            "latency": self.latency_summary(),
            "slo": self.spec.to_dict()["slo"],
            "slo_pass": self.slo_evaluation(),
        }
