"""One fleet shard: a forked NVDIMM-C module plus its admission queue.

A shard is an independent module instance.  To make N of them cheap,
the front end builds the module *once* — bring-up plus the sequential
prefill of every tenant region, the expensive RNG-free prefix — and
captures a :class:`~repro.sim.snapshot.SimSnapshot`; every shard then
*forks* from that capture (PR 7's copy-on-write machinery) and is
independently reseeded (:meth:`~repro.nand.controller.NANDController.
reseed` re-derives the module's media RNG from the shard seed), so the
fleet behaves like N separately manufactured modules that left the same
factory line.

Execution model (virtual-time, deterministic): requests arrive in
global arrival order; a bounded FIFO queue in front of the module
implements admission control.  A request whose arrival finds
``queue_bound`` admitted-but-unfinished requests ahead of it is
rejected — backpressure the tenant sees — otherwise it is served
FIFO and its end-to-end latency (wait + service) is recorded against
the tenant's SLO.  Because placement is load-oblivious, each shard's
timeline is a pure function of its own plan, which is what lets
``--jobs`` fan shards out over worker processes with byte-identical
results.
"""

from __future__ import annotations

import random
import warnings
import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.check.sanitizer import default_suite
from repro.device.nvdimmc import NVDIMMCSystem
from repro.errors import FailStopError, MediaError
from repro.fleet.qos import TenantQoS
from repro.fleet.tenants import TenantSpec
from repro.health.monitor import HealthPolicy, HealthState
from repro.sim.snapshot import SimSnapshot
from repro.sim.trace import Tracer, use_tracer
from repro.units import PAGE_4K, kb, mb, us
from repro.workloads.mixed_load import _check_record, _make_record


@dataclass(frozen=True)
class Request:
    """One tenant request, placed and arrival-stamped by the front end."""

    seq: int            #: global submission order
    tenant: int         #: index into the tenant tuple
    arrival_ps: int     #: offset from the shard's post-prefix epoch
    key: int            #: tenant-local key (page within the region)
    write: bool
    version: int        #: payload version for writes


@dataclass(frozen=True)
class ShardPlan:
    """Everything one shard needs to run, picklable for workers."""

    shard: int
    seed: int
    queue_bound: int
    wear: int                      #: pre-run injected program failures
    requests: tuple[Request, ...]  #: arrival-ordered


@dataclass
class ShardResult:
    """One shard's observations, merged by the front end."""

    shard: int
    tenants: list[TenantQoS]
    admitted: int = 0
    rejected: int = 0
    refused: int = 0
    completed: int = 0
    queue_peak: int = 0
    busy_ps: int = 0
    span_ps: int = 0
    data_loss: int = 0
    sweep_pages: int = 0
    sweep_refused: int = 0
    violations: int = 0
    health: dict = field(default_factory=dict)

    @property
    def utilization_x1000(self) -> int:
        if self.span_ps <= 0:
            return 0
        return round(1000 * self.busy_ps / self.span_ps)

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "requests": self.admitted + self.rejected,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "refused": self.refused,
            "completed": self.completed,
            "queue_peak": self.queue_peak,
            "busy_ps": self.busy_ps,
            "span_ps": self.span_ps,
            "utilization_x1000": self.utilization_x1000,
            "data_loss": self.data_loss,
            "sweep_pages": self.sweep_pages,
            "sweep_refused": self.sweep_refused,
            "violations": self.violations,
            "health": self.health,
        }


#: Module geometry per mode: the quick shard mirrors the soak module
#: (heavy eviction traffic through a 128-slot cache); the full shard is
#: 8x, keeping the same cache:footprint pressure at 4x the footprints.
_QUICK_CACHE, _QUICK_DEVICE = kb(512), mb(8)
_FULL_CACHE, _FULL_DEVICE = mb(4), mb(64)


def tenant_bases(tenants: tuple[TenantSpec, ...]) -> tuple[int, ...]:
    """Disjoint per-tenant page regions (identical on every shard)."""
    bases = []
    base = 0
    for tenant in tenants:
        bases.append(base)
        base += tenant.footprint_pages
    return tuple(bases)


def _filler(page: int, version: int) -> bytes:
    """Non-integrity 4 KB payload (ingest / analytics writes)."""
    head = page.to_bytes(4, "little") + version.to_bytes(4, "little")
    return head + bytes([(page * 193 + version * 67) % 256]) * (PAGE_4K - 8)


def build_prefix(tenants: tuple[TenantSpec, ...], quick: bool,
                 seed: int,
                 health_policy: HealthPolicy | None = None
                 ) -> tuple[SimSnapshot, int]:
    """Build the template module and capture the shared prefix.

    Brings up one module, sequentially prefills every tenant region
    (version-0 payloads: integrity records for record-validated
    tenants, filler elsewhere) and captures the graph.  Returns the
    snapshot plus the prefill's mean per-op service time — the
    calibration probe the front end paces arrivals with.

    ``health_policy`` overrides the module's ladder thresholds (the
    chaos campaign tightens the bad-block budget so injected wear can
    drive a shard to ``read_only`` within one run); the default is the
    stock :class:`~repro.health.monitor.HealthPolicy`.
    """
    cache_bytes = _QUICK_CACHE if quick else _FULL_CACHE
    device_bytes = _QUICK_DEVICE if quick else _FULL_DEVICE
    tracer = Tracer(enabled=True, capacity=200_000)
    suite = default_suite(strict=False)
    with use_tracer(tracer):
        with suite.attach(tracer):
            system = NVDIMMCSystem(
                cache_bytes=cache_bytes, device_bytes=device_bytes,
                seed=seed % 100003, tracer=tracer,
                health_policy=health_policy or HealthPolicy())
            bases = tenant_bases(tenants)
            t = round(us(1))
            start = t
            pages = 0
            for index, tenant in enumerate(tenants):
                for key in range(tenant.footprint_pages):
                    page = bases[index] + key
                    if tenant.mix == "mixed":
                        data = _make_record(index, 0, page)
                    else:
                        data = _filler(page, 0)
                    t = system.driver.write_page(page, data, t)
                    pages += 1
            service_est_ps = max(1, (t - start) // max(1, pages))
            snapshot = _capture(system, tracer, suite, t)
    return snapshot, service_est_ps


def _capture(system: NVDIMMCSystem, tracer: Tracer, suite,
             t: int) -> SimSnapshot:
    """Snapshot the post-prefill graph (see ``soak._capture_prefix``)."""
    nvmc = system.nvmc
    saved = (tracer.records, nvmc.operations, nvmc.fsm.history)
    tracer.records = []
    nvmc.operations = []
    nvmc.fsm.history = []
    try:
        return SimSnapshot.capture(
            {"system": system, "tracer": tracer, "suite": suite, "t": t},
            label="fleet-prefix")
    finally:
        tracer.records, nvmc.operations, nvmc.fsm.history = saved


def run_shard(snapshot: SimSnapshot, plan: ShardPlan,
              tenants: tuple[TenantSpec, ...]) -> ShardResult:
    """Fork the template, reseed it as shard ``plan.shard``, serve."""
    state = snapshot.restore()
    system: NVDIMMCSystem = state["system"]
    tracer: Tracer = state["tracer"]
    suite = state["suite"]
    epoch: int = state["t"]
    system.nand.reseed(plan.seed)

    result = ShardResult(
        shard=plan.shard,
        tenants=[TenantQoS(spec=tenant) for tenant in tenants])
    bases = tenant_bases(tenants)
    shadow: dict[int, bytes] = {}
    record_pages: set[int] = set()

    with use_tracer(tracer), warnings.catch_warnings():
        # Long shard runs overflow the tracer's bounded archive by
        # design; the sanitizers subscribe upstream of the drop and the
        # fleet never reads the archived records, so the capacity
        # warning is noise here (and would tear the CLI table mid-run).
        warnings.filterwarnings("ignore", message="Tracer capacity",
                                category=RuntimeWarning)
        if plan.wear:
            rng = random.Random(plan.seed)
            dies = system.nand.dies
            for _ in range(plan.wear):
                dies[rng.randrange(len(dies))].inject_program_failures(1)
        inflight: deque[int] = deque()
        t_free = epoch
        first_start = last_end = epoch
        for req in plan.requests:
            qos = result.tenants[req.tenant]
            qos.offered += 1
            arrival = epoch + req.arrival_ps
            while inflight and inflight[0] <= arrival:
                inflight.popleft()
            if len(inflight) >= plan.queue_bound:
                qos.rejected += 1
                result.rejected += 1
                continue
            qos.admitted += 1
            result.admitted += 1
            page = bases[req.tenant] + req.key
            start = max(arrival, t_free)
            try:
                if req.write:
                    if tenants[req.tenant].mix == "mixed":
                        data = _make_record(req.tenant, req.version, page)
                        record_pages.add(page)
                    else:
                        data = _filler(page, req.version)
                    end = system.driver.write_page(page, data, start)
                    shadow[page] = data
                else:
                    data, end = system.driver.read_page(page, start)
                    if page in record_pages and \
                            not _check_record(data, page):
                        qos.integrity_failures += 1
            except MediaError as exc:
                # DegradedModeError/FailStopError are MediaErrors with a
                # machine-readable reason: the module refused service.
                if getattr(exc, "reason", None) is not None:
                    qos.refused += 1
                    result.refused += 1
                else:
                    qos.failed_reads += 1
                continue
            t_free = end
            inflight.append(end)
            result.queue_peak = max(result.queue_peak, len(inflight))
            qos.completed += 1
            result.completed += 1
            qos.latencies_ps.append(max(0, end - arrival))
            result.busy_ps += max(0, end - start)
            first_start = min(first_start, start) if result.completed > 1 \
                else start
            last_end = end
        result.span_ps = max(0, last_end - first_start)

        # Integrity sweep: every page this shard committed must read
        # back exactly as written (mismatch or media error = loss).
        t = max(t_free, epoch)
        for page in sorted(shadow):
            result.sweep_pages += 1
            try:
                data, t = system.driver.read_page(page, t)
            except FailStopError:
                result.sweep_refused += 1
                continue
            except MediaError:
                result.data_loss += 1
                continue
            if data != shadow[page]:
                result.data_loss += 1
        suite.detach()

    result.violations = len(suite.violations)
    monitor = system.health
    worst = monitor.state
    for transition in monitor.timeline:
        worst = max(worst, HealthState[transition.to_state.upper()])
    result.health = {
        "state": monitor.state.label,
        "worst": worst.label,
        "counters": {key: monitor.counters.counts[key]
                     for key in sorted(monitor.counters.counts)},
        "transitions": len(monitor.timeline),
    }
    return result


def shard_seed(seed: int, shard: int) -> int:
    """The per-shard module seed (CRC32-derived, hash-free)."""
    return zlib.crc32(f"{seed}:shard:{shard}".encode("ascii"))
