"""Deterministic fault injection and resilience campaigns.

The paper's robustness story — the battery-backed power-loss drain that
ignores tRFC serialization (§V-C), the one-command-deep CP protocol
(§IV-C), grown-bad-block handling in the FTL — is only credible if it
survives being *attacked*.  This package injects faults at adversarial
instants and drives the resilience mechanisms the rest of the stack
implements:

* :mod:`repro.faults.clock` — :class:`FaultClock`, the sim-time- and
  count-scheduled trigger that hook sites across the engine, NVMC, NAND
  controller, and FTL consult; firing raises
  :class:`~repro.errors.PowerLossInterrupt`.
* :mod:`repro.faults.injectors` — the injector registry: seeded,
  deterministic fault sources (CA-bus noise bursts, CP command/ack
  corruption and ack drops, DMA partial transfers, NAND program/erase
  failures and uncorrectable-ECC pages, power loss mid-operation).
* :mod:`repro.faults.campaign` — the campaign runner: a deterministic
  (fault x workload) matrix, every cell executed under the
  :mod:`repro.check` sanitizer suite, data integrity verified against a
  shadow copy, losses reported honestly.
* :mod:`repro.faults.report` — the schema-pinned ``FAULTS_*.json``
  report.

Entry point::

    python -m repro faults run [--quick] [--seed N] [--out DIR]
"""

from repro.faults.clock import FaultClock
from repro.faults.injectors import INJECTORS, Injector, injector_names
from repro.faults.campaign import (CampaignResult, CellResult, run_campaign,
                                   campaign_matrix)
from repro.faults.report import SCHEMA, render_report, validate_report

__all__ = [
    "FaultClock",
    "INJECTORS",
    "Injector",
    "injector_names",
    "CampaignResult",
    "CellResult",
    "run_campaign",
    "campaign_matrix",
    "SCHEMA",
    "render_report",
    "validate_report",
]
