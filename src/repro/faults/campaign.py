"""The campaign runner: a deterministic (fault x workload) matrix.

Every cell is a pure function of ``(fault, workload, seed)``:

* the cell seed is ``crc32(f"{seed}:{fault}:{workload}")``, so adding
  or reordering cells never perturbs the others;
* a fresh scaled-down :class:`~repro.device.nvdimmc.NVDIMMCSystem` (or,
  for stream cells, a fresh command-accurate bus stack) is built per
  cell, with its own :class:`~repro.sim.trace.Tracer` and the full
  :func:`~repro.check.sanitizer.default_suite` attached — a faulted run
  must not only recover its data, it must keep every protocol invariant
  the sanitizers encode (with the §V-C drain exemption);
* every committed write is mirrored into a shadow dict and read back
  after the fault (for power-loss cells: after drain, remount and
  journal replay), so ``lost`` counts real end-to-end data loss, never
  inferred loss.

The cache is sized *below* the workload footprint (128 slots vs a
320-page footprint) so every cell exercises the full miss path —
writebacks, cachefills, evictions — where the fault hook sites live.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.check.sanitizer import default_suite
from repro.device.nvdimmc import NVDIMMCSystem
from repro.device.power import PowerFailureModel
from repro.errors import MediaError, PowerLossInterrupt
from repro.faults.clock import FaultClock
from repro.faults.injectors import INJECTORS, ArmContext, Injector, \
    injector_names
from repro.nvmc.nvmc import CPFaultPort
from repro.faults.report import SCHEMA
from repro.sim.trace import Tracer, use_tracer
from repro.units import PAGE_4K, kb, mb, us

#: Device pages each DAX workload touches; deliberately 2.5x the
#: 128-slot cache so evictions (and their writebacks) are constant.
FOOTPRINT_PAGES = 320
_CACHE_BYTES = kb(512)
_DEVICE_BYTES = mb(8)


@dataclass
class CellResult:
    """One (fault x workload) cell of the campaign."""

    fault: str
    workload: str
    cell_seed: int
    recoverable: bool
    injected: int = 0
    detected: int = 0
    recovered: int = 0
    lost: int = 0
    violations: int = 0
    ok: bool = False
    notes: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "fault": self.fault,
            "workload": self.workload,
            "cell_seed": self.cell_seed,
            "recoverable": self.recoverable,
            "injected": self.injected,
            "detected": self.detected,
            "recovered": self.recovered,
            "lost": self.lost,
            "violations": self.violations,
            "ok": self.ok,
            "notes": {key: self.notes[key] for key in sorted(self.notes)},
        }


@dataclass
class CampaignResult:
    """All cells of one campaign run."""

    seed: int
    quick: bool
    cells: list[CellResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def totals(self) -> dict[str, int]:
        return {
            "cells": len(self.cells),
            "failed_cells": sum(1 for c in self.cells if not c.ok),
            "injected": sum(c.injected for c in self.cells),
            "detected": sum(c.detected for c in self.cells),
            "recovered": sum(c.recovered for c in self.cells),
            "lost": sum(c.lost for c in self.cells),
            "violations": sum(c.violations for c in self.cells),
        }

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "generated_at": None,
            "seed": self.seed,
            "quick": self.quick,
            "cells": [cell.to_dict() for cell in self.cells],
            "totals": self.totals(),
        }


def campaign_matrix(quick: bool = False) -> list[tuple[str, str]]:
    """The (fault, workload) cells a campaign executes, in order."""
    if quick:
        faults = ["cp-corrupt", "dma-partial", "nand-program-fail"]
    else:
        faults = [name for name in injector_names()
                  if INJECTORS[name].kind == "dax"]
    cells = [(fault, workload) for fault in faults
             for workload in ("seq-write", "rand-rw")]
    if not quick:
        cells.append(("ca-noise", "stream-agent"))
    return cells


def cell_seed_for(seed: int, fault: str, workload: str) -> int:
    """Per-cell seed: stable under matrix growth and reordering."""
    return zlib.crc32(f"{seed}:{fault}:{workload}".encode("ascii"))


def run_campaign(seed: int = 0, quick: bool = False,
                 capacity: int = 400_000,
                 progress: Callable[[CellResult], None] | None = None,
                 only: list[str] | None = None) -> CampaignResult:
    """Execute the matrix; each cell under its own sanitized tracer.

    ``only`` restricts the matrix to the named faults (cell seeds are
    unchanged: they depend on the cell, not the matrix shape).
    """
    if only is not None:
        unknown = sorted(set(only) - set(INJECTORS))
        if unknown:
            raise ValueError(f"unknown injectors: {unknown}")
    result = CampaignResult(seed=seed, quick=quick)
    for fault_name, workload_name in campaign_matrix(quick):
        if only is not None and fault_name not in only:
            continue
        injector = INJECTORS[fault_name]
        cseed = cell_seed_for(seed, fault_name, workload_name)
        tracer = Tracer(enabled=True, capacity=capacity)
        suite = default_suite(strict=False)
        with use_tracer(tracer):
            with suite.attach(tracer):
                if injector.kind == "stream":
                    cell = _run_stream_cell(injector, workload_name, cseed)
                else:
                    cell = _run_dax_cell(injector, workload_name, cseed,
                                         tracer)
        cell.violations = len(suite.violations)
        cell.ok = (cell.violations == 0
                   and (cell.lost == 0 if injector.recoverable else True))
        result.cells.append(cell)
        if progress is not None:
            progress(cell)
    return result


# -- DAX workloads ----------------------------------------------------------------


def _payload(page: int, version: int) -> bytes:
    head = page.to_bytes(4, "little") + version.to_bytes(4, "little")
    return head + bytes([(page * 131 + version * 29) % 256]) * (PAGE_4K - 8)


def _wl_seq_write(driver, rng: random.Random, shadow: dict[int, bytes],
                  t: int, faults: dict[str, int]) -> int:
    for page in range(FOOTPRINT_PAGES):
        data = _payload(page, 0)
        try:
            t = driver.write_page(page, data, t)
        except MediaError:
            faults["media_errors"] += 1
            continue
        shadow[page] = data
    return t


def _wl_rand_rw(driver, rng: random.Random, shadow: dict[int, bytes],
                t: int, faults: dict[str, int]) -> int:
    for step in range(FOOTPRINT_PAGES):
        if shadow and rng.random() < 0.3:
            page = rng.choice(sorted(shadow))
            try:
                _data, t = driver.read_page(page, t)
            except MediaError:
                faults["media_errors"] += 1
        else:
            page = rng.randrange(FOOTPRINT_PAGES)
            data = _payload(page, 1 + step)
            try:
                t = driver.write_page(page, data, t)
            except MediaError:
                faults["media_errors"] += 1
                continue
            shadow[page] = data
    return t


_WORKLOADS = {"seq-write": _wl_seq_write, "rand-rw": _wl_rand_rw}


def _verify(driver, shadow: dict[int, bytes], t: int) -> list[int]:
    """Pages whose end-to-end readback no longer matches the shadow."""
    lost: list[int] = []
    for page in sorted(shadow):
        try:
            data, t = driver.read_page(page, t)
        except MediaError:
            lost.append(page)
            continue
        if data != shadow[page]:
            lost.append(page)
    return lost


def _run_dax_cell(injector: Injector, workload_name: str, cseed: int,
                  tracer: Tracer) -> CellResult:
    rng = random.Random(cseed)
    clock = FaultClock()
    # Power-loss cells skip the CPU cache: a cut abandons CP exchanges
    # mid-bracket by design, which the coherence rules (correctly) call
    # a hazard; the §V-B bracket is exercised by every other cell.
    system = NVDIMMCSystem(cache_bytes=_CACHE_BYTES,
                           device_bytes=_DEVICE_BYTES,
                           with_cpu_cache=not injector.power_loss,
                           seed=cseed % 100003,
                           tracer=tracer)
    system.nvmc.faults = CPFaultPort()
    system.nvmc.fault_clock = clock
    system.nand.ftl.fault_clock = clock
    ctx = ArmContext(rng=rng, clock=clock, system=system)
    injector.arm(ctx)

    cell = CellResult(fault=injector.name, workload=workload_name,
                      cell_seed=cseed, recoverable=injector.recoverable)
    shadow: dict[int, bytes] = {}
    faults = {"media_errors": 0}
    interrupts = 0
    t = round(us(1))
    try:
        t = _WORKLOADS[workload_name](system.driver, rng, shadow, t, faults)
    except PowerLossInterrupt as exc:
        interrupts += 1
        t = max(t, exc.time_ps)

    if injector.power_loss:
        power = PowerFailureModel(system.driver)
        power.fault_clock = clock
        try:
            power.power_fail(now_ps=t)
        except PowerLossInterrupt:
            interrupts += 1
        replay = power.recover().replay()
        fresh = system.remount()
        lost_pages = _verify(fresh.driver, shadow, t)
        cell.injected = clock.fired
        cell.detected = interrupts
        cell.recovered = replay.pages_recovered
        cell.lost = len(lost_pages)
        cell.notes = {
            "replay_recovered": replay.pages_recovered,
            "replay_lost": replay.pages_lost,
            "replay_crc_mismatches": len(replay.crc_mismatches),
            "drain_pending": power.journal.pending,
            "committed_pages": len(shadow),
        }
    else:
        lost_pages = _verify(system.driver, shadow, t)
        cell.injected, cell.detected = injector.tally(ctx)
        cell.lost = len(lost_pages)
        cell.recovered = max(0, cell.injected - cell.lost)
        cell.notes = {
            "media_errors": faults["media_errors"],
            "committed_pages": len(shadow),
        }
    return cell


# -- the command-accurate stream cell ---------------------------------------------


def _run_stream_cell(injector: Injector, workload_name: str,
                     cseed: int) -> CellResult:
    from repro.ddr.bus import SharedBus
    from repro.ddr.device import DRAMDevice
    from repro.ddr.imc import IntegratedMemoryController
    from repro.ddr.spec import NVDIMMC_1600
    from repro.nvmc.agent import NVMCProtocolAgent
    from repro.nvmc.refresh_detector import RefreshDetector
    from repro.sim import Engine

    rng = random.Random(cseed)
    clock = FaultClock()
    spec = NVDIMMC_1600
    engine = Engine()
    engine.install_fault_clock(clock)
    device = DRAMDevice(spec, capacity_bytes=mb(16))
    bus = SharedBus(spec, device, raise_on_collision=False)
    imc = IntegratedMemoryController(engine, spec, bus)
    detector = RefreshDetector(seed=cseed % 65521)
    agent = NVMCProtocolAgent(spec, bus, detector=detector)
    imc.start_refresh_process()
    ctx = ArmContext(rng=rng, clock=clock, detector=detector,
                     trefi_ps=spec.trefi_ps)
    injector.arm(ctx)

    cell = CellResult(fault=injector.name, workload=workload_name,
                      cell_seed=cseed, recoverable=injector.recoverable)
    # Host traffic in the low region; agent scratch pages at 1 MB.
    scratch_base = mb(1)
    scratch: dict[int, bytes] = {}
    host: dict[int, bytes] = {}
    mismatches = 0
    t = round(us(1))
    for i in range(80):
        page = i % 16
        payload = _payload(page, i)
        agent.queue_write(scratch_base + page * PAGE_4K, payload)
        scratch[page] = payload
    for k in range(4):
        data = _payload(k, 1000 + k)
        t = imc.host_write(k * PAGE_4K, data, t)
        host[k] = data
    # Run well past the last armed noise burst so the detector rides
    # through every burst while the agent still has backlog to move.
    engine.run(until=round(us(5)) + 110 * spec.trefi_ps)
    for k, expect in host.items():
        data, t = imc.host_read(k * PAGE_4K, PAGE_4K, t)
        if data != expect:
            mismatches += 1
    for page, expect in scratch.items():
        if device.peek(scratch_base + page * PAGE_4K, PAGE_4K) != expect:
            mismatches += 1

    cell.injected, cell.detected = injector.tally(ctx)
    cell.lost = mismatches + bus.collision_count
    cell.recovered = max(0, cell.injected - cell.lost)
    cell.notes = {
        "refreshes_detected": len(detector.detections),
        "false_positives": detector.false_positives,
        "false_negatives": detector.false_negatives,
        "collisions": bus.collision_count,
        "agent_backlog": agent.backlog,
    }
    return cell
