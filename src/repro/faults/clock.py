"""The fault clock: scheduled power loss shared across model layers.

A :class:`FaultClock` is armed with cut points and handed to the layers
that have injection hook sites:

* :class:`~repro.sim.engine.Engine` checks it before dispatching each
  event (site ``"engine"``);
* :class:`~repro.nvmc.nvmc.NVMCModel` checks it at DMA-window and
  NAND-operation boundaries (sites ``"nvmc.dma.fill"``,
  ``"nvmc.dma.evict"``, ``"nvmc.writeback.program"``,
  ``"nvmc.cachefill.read"``, ...);
* :class:`~repro.nand.ftl.FlashTranslationLayer` ticks it per GC
  relocation (site ``"ftl.gc"`` — the FTL is timeless, so GC cuts are
  count-scheduled).

When a cut matches, the clock raises
:class:`~repro.errors.PowerLossInterrupt` exactly once per armed cut:
in-flight work is abandoned mid-call the way a real power cut abandons
it, and the campaign layer catches the interrupt and runs the §V-C
battery-backed drain.

Three scheduling modes:

* **time** — fire the first moment simulated time at a matching site
  reaches ``time_ps``;
* **count** — fire on the N-th ``check``/``tick`` at a matching site
  (for timeless layers such as the FTL's GC loop);
* **event** — fire on the N-th hook-site visit *overall*, regardless of
  site.  The clock numbers every visit with a global ``events_seen``
  counter, so the crash-point explorer can sweep a cut across the whole
  event space ("cut at event 137") instead of only the named sites.

The clock is deterministic by construction: it holds no randomness, and
sites are visited in simulation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultInjectionError, PowerLossInterrupt
from repro.sim.snapshot import SnapshotMixin


@dataclass
class _Cut:
    """One armed power cut."""

    site: str | None          # site prefix filter; None = any site
    time_ps: int | None       # fire when now_ps >= time_ps (time mode)
    count: int | None         # fire on the count-th matching visit
    event: int | None = None  # fire on the event-th global visit
    fired: bool = False
    seen: int = 0             # matching visits so far (count mode)

    def matches_site(self, site: str) -> bool:
        return self.site is None or site.startswith(self.site)


@dataclass
class FaultClock(SnapshotMixin):
    """Armed cut points consulted by the model layers' hook sites.

    The clock is part of every whole-system snapshot: ``events_seen``
    must travel with the fork so that event-indexed cuts armed after a
    restore fire at the same absolute indices a from-zero run sees.
    """

    _cuts: list[_Cut] = field(default_factory=list)
    #: Every (site, time_ps) visit, for post-mortem debugging of a
    #: campaign cell ("which hook sites did this run actually cross?").
    visits: list[tuple[str, int]] = field(default_factory=list)
    record_visits: bool = False
    #: Global hook-site visit counter; event cuts index into this.
    events_seen: int = 0

    # -- arming ---------------------------------------------------------------

    def cut_at(self, time_ps: int, site: str | None = None) -> "FaultClock":
        """Arm a power cut at simulated time ``time_ps`` (>= 0)."""
        if time_ps < 0:
            raise FaultInjectionError(f"cut time must be >= 0: {time_ps}")
        self._cuts.append(_Cut(site=site, time_ps=time_ps, count=None))
        return self

    def cut_on_visit(self, count: int,
                     site: str | None = None) -> "FaultClock":
        """Arm a power cut on the ``count``-th visit to a matching site."""
        if count < 1:
            raise FaultInjectionError(f"visit count must be >= 1: {count}")
        self._cuts.append(_Cut(site=site, time_ps=None, count=count))
        return self

    def cut_on_event(self, index: int) -> "FaultClock":
        """Arm a power cut on the ``index``-th hook-site visit overall.

        Event indices are 1-based and count *every* ``check``/``tick``
        across *every* site, in simulation order — the whole event space
        a deterministic run crosses.  Re-running the same seed with
        ``cut_on_event(i)`` for each ``i`` in ``1..events_seen`` is the
        crash-point explorer's sweep.
        """
        if index < 1:
            raise FaultInjectionError(f"event index must be >= 1: {index}")
        self._cuts.append(_Cut(site=None, time_ps=None, count=None,
                               event=index))
        return self

    # -- firing ---------------------------------------------------------------

    def check(self, now_ps: int, site: str) -> None:
        """Hook-site entry point for layers that carry simulated time."""
        self.events_seen += 1
        if self.record_visits:
            self.visits.append((site, now_ps))
        for cut in self._cuts:
            if cut.fired or not cut.matches_site(site):
                continue
            if cut.event is not None:
                if self.events_seen >= cut.event:
                    cut.fired = True
                    raise PowerLossInterrupt(
                        f"power loss at event {self.events_seen} ({site})",
                        time_ps=now_ps, site=site)
            elif cut.time_ps is not None:
                if now_ps >= cut.time_ps:
                    cut.fired = True
                    raise PowerLossInterrupt(
                        f"power loss at {now_ps} ps ({site})",
                        time_ps=now_ps, site=site)
            else:
                cut.seen += 1
                if cut.count is not None and cut.seen >= cut.count:
                    cut.fired = True
                    raise PowerLossInterrupt(
                        f"power loss on visit {cut.seen} to {site}",
                        time_ps=now_ps, site=site)

    def tick(self, site: str) -> None:
        """Hook-site entry point for timeless layers (count cuts only)."""
        self.check(-1, site)

    # -- state ----------------------------------------------------------------

    @property
    def armed(self) -> bool:
        """True while at least one cut has not fired yet."""
        return any(not cut.fired for cut in self._cuts)

    @property
    def fired(self) -> int:
        """Number of cuts that have fired."""
        return sum(1 for cut in self._cuts if cut.fired)
