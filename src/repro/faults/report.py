"""The schema-pinned ``FAULTS_*.json`` campaign report.

The report is the artifact CI archives and the determinism acceptance
check diffs, so its shape is pinned: :data:`SCHEMA` names the current
revision, :func:`render_report` serialises with sorted keys and a
trailing newline (byte-identical for identical campaign results — the
wall-clock timestamp is the *only* non-deterministic field, and it is
injected by the caller so tests can omit it), and
:func:`validate_report` checks a parsed report against the pinned
shape.

Count semantics per cell:

``injected``
    fault events that actually happened (consumed corruptions, applied
    DMA shortfalls, fired power cuts, commands observed under a noise
    burst) — not merely armed.
``detected``
    events the stack noticed through a resilience mechanism (CP
    retries/timeouts, partial-transfer continuations, FTL program
    retries, ECC read retries, caught power-loss interrupts).
``recovered`` / ``lost``
    pages: ``lost`` counts shadow-copy pages that could not be read
    back intact after the cell (including post-power-loss replay);
    ``recovered`` is ``injected - lost`` for in-band faults and the
    replayed page count for power-loss cells.
"""

from __future__ import annotations

import json
from typing import Any

from repro.report import (require_exact_keys, require_nonneg_ints,
                          require_object_list, schema_id,
                          validate_schema_report)

SCHEMA = schema_id("faults", 1)

_REPORT_KEYS = frozenset(
    {"schema", "generated_at", "seed", "quick", "cells", "totals"})
_CELL_KEYS = frozenset(
    {"fault", "workload", "cell_seed", "recoverable", "injected",
     "detected", "recovered", "lost", "violations", "ok", "notes"})
_TOTAL_KEYS = frozenset(
    {"cells", "failed_cells", "injected", "detected", "recovered",
     "lost", "violations"})


def render_report(result: Any, timestamp: str | None = None) -> str:
    """Serialise a :class:`~repro.faults.campaign.CampaignResult`.

    ``timestamp`` is stamped into ``generated_at`` verbatim; pass None
    (the default) for byte-stable output.
    """
    payload = result.to_dict()
    payload["generated_at"] = timestamp
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _detail(payload: dict, problems: list[str]) -> None:
    for index, cell in enumerate(require_object_list(problems, payload,
                                                     "cells")):
        if not isinstance(cell, dict):
            problems.append(f"cells[{index}] must be an object")
            continue
        if cell.keys() != _CELL_KEYS:
            problems.append(
                f"cells[{index}] keys {sorted(cell.keys())} != "
                f"{sorted(_CELL_KEYS)}")
            continue
        require_nonneg_ints(
            problems, cell,
            ("injected", "detected", "recovered", "lost", "violations",
             "cell_seed"), f"cells[{index}].")
    if require_exact_keys(problems, payload.get("totals"), _TOTAL_KEYS,
                          "totals"):
        require_nonneg_ints(problems, payload["totals"],
                            sorted(_TOTAL_KEYS), "totals.")


def validate_report(payload: Any) -> list[str]:
    """Problems with a parsed report; an empty list means valid."""
    return validate_schema_report("faults", 1, payload, _REPORT_KEYS,
                                  detail=_detail)
