"""``python -m repro faults``: fault-injection campaigns.

Subcommands:

* ``run [--quick] [--seed N] [--out DIR] [--only ID[,ID...]]`` —
  execute the campaign matrix and write a schema-pinned
  ``FAULTS_<timestamp>.json`` report.  ``--only`` restricts the matrix
  to the named faults (an unknown id aborts with the known-id list).
  Exits non-zero when any cell fails (a recoverable cell lost data, or
  any cell tripped a sanitizer).
* ``list`` — print the injector registry.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def cmd_run(args: argparse.Namespace) -> int:
    from repro.faults.campaign import CellResult, run_campaign
    from repro.faults.injectors import injector_names
    from repro.faults.report import render_report, validate_report

    def progress(cell: CellResult) -> None:
        flag = "ok" if cell.ok else "FAIL"
        print(f"  [{flag:>4}] {cell.fault:<28} x {cell.workload:<12} "
              f"injected={cell.injected} detected={cell.detected} "
              f"recovered={cell.recovered} lost={cell.lost} "
              f"violations={cell.violations}")

    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = sorted(set(only) - set(injector_names()))
        if unknown:
            print(f"unknown fault ids: {', '.join(unknown)}",
                  file=sys.stderr)
            print(f"known fault ids: {', '.join(injector_names())}",
                  file=sys.stderr)
            return 2
    mode = "quick" if args.quick else "full"
    print(f"repro faults run: {mode} matrix, seed {args.seed}"
          + (f", only {','.join(only)}" if only else ""))
    result = run_campaign(seed=args.seed, quick=args.quick,
                          capacity=args.capacity, progress=progress,
                          only=only)
    timestamp = time.strftime("%Y%m%d-%H%M%S")
    payload = render_report(result, timestamp=timestamp)
    problems = validate_report(json.loads(payload))
    if problems:    # a schema bug is a tooling failure, not a cell failure
        for problem in problems:
            print(f"report schema problem: {problem}", file=sys.stderr)
        return 2
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"FAULTS_{timestamp}.json"
    path.write_text(payload)
    totals = result.totals()
    print(f"wrote {path}")
    print(f"cells={totals['cells']} injected={totals['injected']} "
          f"detected={totals['detected']} recovered={totals['recovered']} "
          f"lost={totals['lost']} violations={totals['violations']} "
          f"failed={totals['failed_cells']}")
    if not result.ok:
        print("campaign FAILED: see cells above", file=sys.stderr)
        return 1
    print("campaign clean: every recoverable cell recovered, "
          "all sanitizers quiet")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    from repro.faults.injectors import INJECTORS

    for injector in INJECTORS.values():
        kind = "stream" if injector.kind == "stream" else "dax"
        tag = "recoverable" if injector.recoverable else "lossy"
        print(f"{injector.name:<28} [{kind}, {tag}] {injector.description}")
    return 0


def build_parser(sub_or_none: "argparse._SubParsersAction | None" = None
                 ) -> argparse.ArgumentParser:
    """Build the ``faults`` parser, standalone or under a parent CLI."""
    if sub_or_none is None:
        parser = argparse.ArgumentParser(prog="repro faults")
        sub = parser.add_subparsers(dest="faults_command", required=True)
    else:
        parser = sub_or_none.add_parser(
            "faults", help="fault-injection campaigns")
        sub = parser.add_subparsers(dest="faults_command", required=True)

    p_run = sub.add_parser("run", help="execute the campaign matrix")
    p_run.add_argument("--quick", action="store_true",
                       help="3x2 smoke matrix instead of the full one")
    p_run.add_argument("--seed", type=int, default=0,
                       help="campaign seed (default 0)")
    p_run.add_argument("--out", default="results",
                       help="directory for FAULTS_<timestamp>.json")
    p_run.add_argument("--capacity", type=int, default=400_000,
                       help="per-cell tracer retention bound (records)")
    p_run.add_argument("--only", default=None, metavar="ID[,ID...]",
                       help="run only the named faults (see 'faults list'; "
                            "cell seeds are unchanged)")
    p_run.set_defaults(fn=cmd_run)

    p_list = sub.add_parser("list", help="print the injector registry")
    p_list.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
