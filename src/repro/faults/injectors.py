"""The injector registry: seeded, deterministic fault sources.

Each :class:`Injector` names one adversarial scenario, knows whether
the stack is *supposed* to absorb it (``recoverable``), and carries two
hooks the campaign runner calls:

* ``arm(ctx)`` — before the workload: plant the fault (corrupt a CP
  word N commands from now, schedule a power cut on the K-th DMA
  window, force the next ECC decodes uncorrectable, ...).  All knobs
  are drawn from ``ctx.rng``, which the campaign seeds per cell, so a
  cell is a pure function of ``(fault, workload, seed)``.
* ``tally(ctx)`` — after the workload: read back ``(injected,
  detected)`` from the consumption counters the hook points maintain
  (``CPFaultPort``, NAND die/codec injection counters, driver retry
  stats), so the report counts faults that actually *happened*, not
  faults that were merely armed.

The registry deliberately avoids importing any model layer: arming goes
through duck-typed attributes on the context (``ctx.system`` for the
DAX stack, ``ctx.detector`` for the command-accurate stream stack), so
``repro.faults`` stays import-light and cycle-free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.clock import FaultClock
from repro.units import us


@dataclass
class ArmContext:
    """What an injector may touch when arming / tallying one cell.

    ``system`` is the :class:`~repro.device.nvdimmc.NVDIMMCSystem` for
    DAX cells (with ``system.nvmc.faults`` already populated with a
    :class:`~repro.nvmc.nvmc.CPFaultPort`); ``detector`` is the
    :class:`~repro.nvmc.refresh_detector.RefreshDetector` for stream
    cells.  ``notes`` carries arm-time facts forward to tally time
    (e.g. how many uncorrectable decodes were forced).
    """

    rng: random.Random
    clock: FaultClock
    system: Any = None
    detector: Any = None
    trefi_ps: int = 0
    notes: dict[str, int] = field(default_factory=dict)


def _no_arm(ctx: ArmContext) -> None:
    return None


def _no_tally(ctx: ArmContext) -> tuple[int, int]:
    return (0, 0)


@dataclass(frozen=True)
class Injector:
    """One named fault scenario."""

    name: str
    description: str
    #: True when the stack must absorb the fault with zero data loss
    #: (CP retry, read retry, bad-block remap, full battery drain);
    #: False when honest loss reporting is the acceptance criterion.
    recoverable: bool
    #: "dax" cells run the block-layer workload on an NVDIMMCSystem;
    #: "stream" cells run the command-accurate bus/agent stack.
    kind: str = "dax"
    #: True when the campaign must follow the workload with the §V-C
    #: power-fail -> drain -> remount -> replay sequence.
    power_loss: bool = False
    arm: Callable[[ArmContext], None] = _no_arm
    tally: Callable[[ArmContext], tuple[int, int]] = _no_tally


# -- CP mailbox faults (§IV-C) --------------------------------------------------


def _arm_cp_corrupt(ctx: ArmContext) -> None:
    port = ctx.system.nvmc.faults
    # One stale-phase word (driver sees no ack, times out, re-issues)
    # and one trashed-opcode word (device acks DECODE_ERROR).
    port.corrupt_command("phase", after=1 + ctx.rng.randrange(3))
    port.corrupt_command("opcode", after=2 + ctx.rng.randrange(3))


def _tally_cp_corrupt(ctx: ArmContext) -> tuple[int, int]:
    port = ctx.system.nvmc.faults
    stats = ctx.system.driver.stats
    return (port.commands_corrupted, stats.cp_retries)


def _arm_cp_ack_drop(ctx: ArmContext) -> None:
    port = ctx.system.nvmc.faults
    port.drop_ack(after=1 + ctx.rng.randrange(3))
    port.drop_ack(after=2 + ctx.rng.randrange(4))


def _tally_cp_ack_drop(ctx: ArmContext) -> tuple[int, int]:
    port = ctx.system.nvmc.faults
    return (port.acks_dropped, ctx.system.driver.stats.cp_timeouts)


# -- DMA faults ------------------------------------------------------------------


def _arm_dma_partial(ctx: ArmContext) -> None:
    port = ctx.system.nvmc.faults
    for _ in range(3):
        # Shortfalls strictly below 4 KB: every faulted window still
        # makes progress, the remainder spills into the next window.
        port.shorten_dma(512 * (1 + ctx.rng.randrange(6)),
                         after=ctx.rng.randrange(4))


def _tally_dma_partial(ctx: ArmContext) -> tuple[int, int]:
    port = ctx.system.nvmc.faults
    return (port.dma_shortfalls_applied,
            ctx.system.nvmc.dma.stats.partial_transfers)


# -- NAND media faults -----------------------------------------------------------


def _arm_nand_program_fail(ctx: ArmContext) -> None:
    # A couple of dies with a failed program each: the FTL retires the
    # block and remaps the write.  Deliberately fewer than the FTL's
    # 8-attempt remap budget — arming every die at once exhausts it and
    # (correctly) drives the device read-only, which is the degraded
    # mode's own test, not this cell's.
    dies = ctx.system.nand.dies
    for index in ctx.rng.sample(range(len(dies)), min(3, len(dies))):
        dies[index].inject_program_failures(1)


def _tally_nand_program_fail(ctx: ArmContext) -> tuple[int, int]:
    nand = ctx.system.nand
    injected = sum(die.injected_program_failures for die in nand.dies)
    return (injected, nand.ftl.stats.program_retries)


def _arm_read_uncorrectable(ctx: ArmContext) -> None:
    # Two consecutive bad decodes: within the controller's read-retry
    # budget, so the read recovers on the third attempt.
    ctx.notes["armed_decodes"] = 2
    ctx.system.nand.codec.inject_uncorrectable(2)


def _arm_read_uncorrectable_hard(ctx: ArmContext) -> None:
    # One more bad decode than the initial attempt plus every retry:
    # the read is unrecoverable and the loss must be reported.
    n = 1 + ctx.system.nand.read_retry_limit
    ctx.notes["armed_decodes"] = n
    ctx.system.nand.codec.inject_uncorrectable(n)


def _tally_read_uncorrectable(ctx: ArmContext) -> tuple[int, int]:
    nand = ctx.system.nand
    consumed = (ctx.notes.get("armed_decodes", 0)
                - nand.codec.force_uncorrectable)
    return (consumed, nand.stats.read_retries + nand.stats.unrecovered_reads)


# -- power loss (§V-C) -----------------------------------------------------------


def _arm_power_dma(ctx: ArmContext) -> None:
    # Cut during some DMA window boundary (fill, evict, poll or ack
    # phase) a couple dozen windows into the run.
    ctx.clock.cut_on_visit(20 + ctx.rng.randrange(10), site="nvmc.dma")


def _arm_power_writeback(ctx: ArmContext) -> None:
    # Cut right as the device is about to program a writeback page:
    # the victim mapping is already gone from ``slot_to_page``, so only
    # the driver's in-flight-writeback journal saves the page.
    ctx.clock.cut_on_visit(2 + ctx.rng.randrange(3),
                           site="nvmc.writeback.program")


def _arm_power_drain(ctx: ArmContext) -> None:
    # The battery dies partway through the drain itself: some journal
    # entries never reach Z-NAND and replay must report them lost.
    ctx.clock.cut_on_visit(3 + ctx.rng.randrange(4), site="power.drain")


# -- CA-bus noise (§VI-A detector) -----------------------------------------------


def _arm_ca_noise(ctx: ArmContext) -> None:
    detector = ctx.detector
    trefi = ctx.trefi_ps
    start = round(us(5))
    for k in range(3):
        burst_start = start + (20 + 30 * k) * trefi
        detector.inject_noise_burst(
            burst_start, burst_start + 4 * trefi,
            0.003 + 0.002 * ctx.rng.random())


def _tally_ca_noise(ctx: ArmContext) -> tuple[int, int]:
    burst = ctx.detector.burst_commands
    return (burst, burst)


INJECTORS: dict[str, Injector] = {
    injector.name: injector for injector in (
        Injector(
            name="none",
            description="control cell: no fault armed",
            recoverable=True),
        Injector(
            name="cp-corrupt",
            description="CP command-word corruption: stale phase "
                        "(ack timeout) and trashed opcode (DECODE_ERROR)",
            recoverable=True,
            arm=_arm_cp_corrupt, tally=_tally_cp_corrupt),
        Injector(
            name="cp-ack-drop",
            description="device performs the operation but the ack "
                        "write is lost; driver times out and re-issues",
            recoverable=True,
            arm=_arm_cp_ack_drop, tally=_tally_cp_ack_drop),
        Injector(
            name="dma-partial",
            description="DMA windows move fewer bytes than scheduled; "
                        "the remainder spills into later windows",
            recoverable=True,
            arm=_arm_dma_partial, tally=_tally_dma_partial),
        Injector(
            name="nand-program-fail",
            description="Z-NAND program failures; the FTL retires the "
                        "block and remaps the page",
            recoverable=True,
            arm=_arm_nand_program_fail, tally=_tally_nand_program_fail),
        Injector(
            name="nand-read-uncorrectable",
            description="transient uncorrectable ECC within the "
                        "read-retry budget",
            recoverable=True,
            arm=_arm_read_uncorrectable, tally=_tally_read_uncorrectable),
        Injector(
            name="nand-read-uncorrectable-hard",
            description="uncorrectable ECC outlasting every read "
                        "retry: honest data-loss reporting",
            recoverable=False,
            arm=_arm_read_uncorrectable_hard,
            tally=_tally_read_uncorrectable),
        Injector(
            name="power-loss-dma",
            description="power cut at a DMA window boundary; battery "
                        "drain + metadata replay recover the cache",
            recoverable=True, power_loss=True,
            arm=_arm_power_dma),
        Injector(
            name="power-loss-writeback",
            description="power cut as a victim writeback programs; the "
                        "in-flight-writeback journal entry saves it",
            recoverable=True, power_loss=True,
            arm=_arm_power_writeback),
        Injector(
            name="power-loss-drain",
            description="battery exhausted mid-drain: undrained pages "
                        "are lost and must be reported, not hidden",
            recoverable=False, power_loss=True,
            arm=_arm_power_drain),
        Injector(
            name="ca-noise",
            description="CA-bus noise bursts force the refresh "
                        "detector down its sampling slow path",
            recoverable=True, kind="stream",
            arm=_arm_ca_noise, tally=_tally_ca_noise),
    )
}


def injector_names() -> list[str]:
    """Registry order (which is matrix order)."""
    return list(INJECTORS)
