"""The cold-mount path: rebuild the module from what survived the cut.

A power cut wipes everything volatile at once: the DRAM cache, the
driver's slot metadata, the FTL core's SRAM (the L2P map), and the live
health monitor.  What survives is the Z-NAND — every page stamped with
its :class:`~repro.nand.ftl.OOB` record — plus, when the battery did its
job, the drained cache contents and the 16 MB metadata-area journal.

:func:`recover_mount` sequences the pieces in dependency order:

1. **media scan** — the NAND controller rebuilds its FTL from the OOB
   stamps (:meth:`~repro.nand.controller.NANDController.rebuild_from_media`):
   max-seq election per LPN, CRC quarantine for pages torn mid-program,
   trim tombstones honoured, partial blocks resumed or sealed;
2. **health re-seed** — a fresh :class:`~repro.health.monitor.HealthMonitor`
   fed the evidence the media can testify to (bad blocks, torn pages);
   sticky rungs (read-only past the bad-block budget) are re-entered,
   rolling rungs are not — their transient evidence died with the power;
3. **driver bring-up** — :meth:`~repro.device.nvdimmc.NVDIMMCSystem.remount`
   with the re-seeded monitor: fresh DRAM, fresh slot metadata, same NAND;
4. **journal audit** — when the §V-C drain ran, its metadata journal is
   replayed against the recovered media so the mount reports honestly
   which drained pages made it and which the dying battery dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.nvdimmc import NVDIMMCSystem
from repro.device.power import MetadataJournal, RecoveredDevice
from repro.health.monitor import HealthMonitor
from repro.nand.ftl import FTLRecoveryStats


@dataclass
class MountReport:
    """What one cold mount found and rebuilt."""

    ftl: FTLRecoveryStats
    health_state: str
    bad_blocks: int = 0
    #: Journal audit (zeros when no drain journal was handed in).
    replay_recovered: int = 0
    replay_lost: int = 0
    replay_crc_mismatches: int = 0

    def to_dict(self) -> dict:
        return {
            "ftl": self.ftl.to_dict(),
            "health_state": self.health_state,
            "bad_blocks": self.bad_blocks,
            "replay_recovered": self.replay_recovered,
            "replay_lost": self.replay_lost,
            "replay_crc_mismatches": self.replay_crc_mismatches,
        }


def recover_mount(system: NVDIMMCSystem,
                  journal: MetadataJournal | None = None,
                  now_ps: int = 0) -> tuple[NVDIMMCSystem, MountReport]:
    """Cold-mount ``system``'s module after a power cut.

    Returns ``(fresh_system, report)``: a remounted system over the
    same NAND with a rebuilt FTL and a re-seeded health monitor, plus
    the mount's findings.  ``journal`` is the drain's metadata journal
    when the §V-C battery ran; passing it enables the replay audit.
    """
    ftl_stats = system.nand.rebuild_from_media()
    monitor = HealthMonitor(policy=system.health.policy,
                            tracer=system.nvmc.tracer)
    bad_blocks = system.nand.media_bad_blocks()
    monitor.reseed({"bad-block": bad_blocks,
                    "torn-page": ftl_stats.torn_quarantined},
                   time_ps=now_ps)
    fresh = system.remount(health=monitor)
    report = MountReport(ftl=ftl_stats,
                         health_state=monitor.state.label,
                         bad_blocks=bad_blocks)
    if journal is not None:
        replay = RecoveredDevice(fresh.driver, journal).replay()
        report.replay_recovered = replay.pages_recovered
        report.replay_lost = replay.pages_lost
        report.replay_crc_mismatches = len(replay.crc_mismatches)
    return fresh, report
