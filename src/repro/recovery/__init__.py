"""Crash-consistent remount and the crash-point explorer.

The paper's battery exists for exactly one scenario: power dies and the
module must come back with every committed page intact (§V-C).  This
package is that scenario's proof machinery:

* :func:`recover_mount` — the cold-mount path: rebuild the FTL's L2P
  from per-page OOB stamps (max-seq wins, torn pages quarantined by
  CRC), re-seed the health ladder from media evidence, bring up a fresh
  driver over the surviving NAND, and audit the drain journal;
* :func:`~repro.recovery.explorer.explore` — a CrashMonkey/ALICE-style
  sweep: cut power at *every* event index a deterministic workload
  crosses (including inside the drain itself), remount, and check the
  recovery invariants;
* ``repro crash [--quick]`` — the CLI wrapper emitting a schema-pinned
  ``RECOVERY_<timestamp>.json`` (:data:`~repro.recovery.report.SCHEMA`).
"""

from repro.recovery.explorer import ExplorerResult, RunOutcome, explore
from repro.recovery.mount import MountReport, recover_mount
from repro.recovery.report import SCHEMA, render_report, validate_report

__all__ = [
    "ExplorerResult",
    "MountReport",
    "RunOutcome",
    "SCHEMA",
    "explore",
    "recover_mount",
    "render_report",
    "validate_report",
]
