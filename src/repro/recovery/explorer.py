"""The crash-point explorer: a power cut at every event index.

CrashMonkey and ALICE exhaustively crash filesystems at every journal
operation; this is the NVDIMM-C equivalent.  A fixed, seeded workload is
run once under a counting :class:`~repro.faults.clock.FaultClock` to
number every hook-site visit — the driver's CP exchanges and DMA
windows, the FTL's page programs and GC relocations, and the §V-C
battery drain itself.  The explorer then re-runs the workload
deterministically with ``cut_on_event(i)`` sweeping ``i`` across that
whole space, cold-mounts after each cut
(:func:`~repro.recovery.mount.recover_mount`), and checks the recovery
invariants:

* **no committed page lost** — every LPN whose program reached flash
  (observed via the FTL's ``on_commit`` hook) reads back with its last
  committed content;
* **no torn page served** — a page torn mid-program by the cut must be
  quarantined by its OOB CRC, never returned as live data (readback
  must always be some payload the host actually wrote, or zeros);
* **bounded loss** — an acked-but-uncommitted write may be missing only
  when the cut interrupted the drain itself (the double failure the
  battery cannot cover);
* **sanitizers quiet**, and the remounted module accepts new writes.

``--quick`` samples the event space at a fixed stride (plus explicit
in-drain points), then bisects between neighbouring samples whose
outcome signatures differ, CrashMonkey-style: uniform regions cost one
probe per stride, behaviour boundaries get binary-searched to the exact
event.  Everything is deterministic for a fixed seed — the report is
byte-identical across runs.

Snapshot-based sweeping
-----------------------

By default the sweep is O(run + cuts x tail), not O(cuts x run): the
counting baseline doubles as a *golden run* that captures a
:class:`~repro.sim.snapshot.SimSnapshot` of the whole simulation graph
(system, tracer, sanitizers, fault clock, workload RNG and ground-truth
dicts) at periodic workload-op boundaries.  Each explored cut restores
the nearest snapshot taken strictly before its event index, arms
``cut_on_event`` on the restored clock — ``events_seen`` travels with
the fork, so absolute indices line up — and replays only the tail.
Retained trace records are excluded from the captures (no report reads
them; sanitizer observation state *is* captured), keeping blobs small.
``snapshot=False`` (CLI ``--no-snapshot``) keeps the legacy
re-run-from-zero path; both produce byte-identical reports.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.check.sanitizer import default_suite
from repro.device.nvdimmc import NVDIMMCSystem
from repro.device.power import PowerFailureModel
from repro.errors import PowerLossInterrupt
from repro.faults.clock import FaultClock
from repro.recovery.mount import recover_mount
from repro.sim.snapshot import SimSnapshot, SnapshotTimeline
from repro.sim.trace import Tracer, use_tracer
from repro.units import PAGE_4K, kb, mb, us

#: Pages the workload touches; > cache slots so every run evicts.
FOOTPRINT_PAGES = 40
#: Mixed read/write steps after the sequential fill.  Sized for a
#: realistic churn phase (many overwrites per page, every slot evicted
#: and refilled repeatedly): snapshot-based forking makes the sweep cost
#: O(run + cuts x tail), so a long workload no longer multiplies the
#: whole sweep the way it did when every cut re-ran from t=0.
MIXED_STEPS = 800
_CACHE_BYTES = kb(96)      # 20 cache slots
_DEVICE_BYTES = mb(1)
#: ``--quick`` samples at least this many cut points before bisection.
QUICK_TARGET = 56
#: Golden-run snapshot cadence in workload ops: full sweeps fork once
#: per event index, so they amortize a dense timeline; quick sweeps
#: explore two orders of magnitude fewer cuts and prefer fewer,
#: cheaper captures over shorter tails.
SNAP_CADENCE_FULL = 8
SNAP_CADENCE_QUICK = 32

_ZERO_CRC = zlib.crc32(bytes(PAGE_4K))


@dataclass
class RunOutcome:
    """One explored cut point, remounted and verified."""

    index: int                    # 1-based event index of the cut
    cut_site: str = ""            # hook site where the cut landed
    fired: bool = False
    drain_interrupted: bool = False
    committed_lost: int = 0       # durable pages that read back wrong
    torn_served: int = 0          # readback neither acked content nor zeros
    acked_uncommitted: int = 0    # acked writes missing after remount
    torn_quarantined: int = 0     # pages the mount quarantined by CRC
    replay_recovered: int = 0
    replay_lost: int = 0
    sanitizer_violations: int = 0
    remount_writable: bool = True

    @property
    def ok(self) -> bool:
        """All invariants hold for this cut point."""
        return (self.committed_lost == 0
                and self.torn_served == 0
                and self.sanitizer_violations == 0
                and self.remount_writable
                and (self.acked_uncommitted == 0 or self.drain_interrupted))

    def signature(self) -> tuple:
        """Boolean outcome shape; bisection splits where it changes."""
        return (self.committed_lost > 0, self.torn_served > 0,
                self.acked_uncommitted > 0, self.drain_interrupted,
                self.sanitizer_violations > 0, self.remount_writable)


@dataclass
class ExplorerResult:
    """Everything one ``repro crash`` sweep learned."""

    seed: int
    quick: bool
    total_events: int = 0
    workload_events: int = 0
    baseline_ok: bool = False
    outcomes: list[RunOutcome] = field(default_factory=list)

    def windows(self) -> list[dict]:
        """Consecutive tested cut points folded by identical signature."""
        out: list[dict] = []
        for outcome in sorted(self.outcomes, key=lambda o: o.index):
            if out and out[-1]["_sig"] == outcome.signature():
                win = out[-1]
                win["end"] = outcome.index
                win["runs"] += 1
                win["committed_lost"] += outcome.committed_lost
                win["torn_served"] += outcome.torn_served
                win["acked_uncommitted"] += outcome.acked_uncommitted
                win["violations"] += outcome.sanitizer_violations
                continue
            out.append({
                "start": outcome.index,
                "end": outcome.index,
                "runs": 1,
                "committed_lost": outcome.committed_lost,
                "torn_served": outcome.torn_served,
                "acked_uncommitted": outcome.acked_uncommitted,
                "drain_interrupted": outcome.drain_interrupted,
                "remount_writable": outcome.remount_writable,
                "violations": outcome.sanitizer_violations,
                "_sig": outcome.signature(),
            })
        for win in out:
            del win["_sig"]
        return out

    def sites(self) -> dict[str, int]:
        """Histogram of hook sites the explored cuts landed on."""
        hist: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.fired:
                site = outcome.cut_site or "?"
                hist[site] = hist.get(site, 0) + 1
        return dict(sorted(hist.items()))

    def totals(self) -> dict[str, int]:
        drain_cuts = sum(1 for o in self.outcomes
                         if o.index > self.workload_events)
        return {
            "cut_points": len(self.outcomes),
            "drain_cuts": drain_cuts,
            "committed_lost": sum(o.committed_lost for o in self.outcomes),
            "torn_served": sum(o.torn_served for o in self.outcomes),
            "acked_uncommitted": sum(o.acked_uncommitted
                                     for o in self.outcomes),
            "torn_quarantined": sum(o.torn_quarantined
                                    for o in self.outcomes),
            "sanitizer_violations": sum(o.sanitizer_violations
                                        for o in self.outcomes),
            "replay_recovered": sum(o.replay_recovered
                                    for o in self.outcomes),
            "replay_lost": sum(o.replay_lost for o in self.outcomes),
            "failed_runs": sum(1 for o in self.outcomes if not o.ok),
        }

    @property
    def ok(self) -> bool:
        totals = self.totals()
        return (self.baseline_ok
                and totals["failed_runs"] == 0
                and totals["drain_cuts"] >= 1)

    def to_dict(self) -> dict:
        from repro.recovery.report import SCHEMA
        return {
            "schema": SCHEMA,
            "generated_at": None,
            "seed": self.seed,
            "quick": self.quick,
            "events": {
                "total": self.total_events,
                "workload": self.workload_events,
                "drain": self.total_events - self.workload_events,
            },
            "cut_points": sorted(o.index for o in self.outcomes),
            "windows": self.windows(),
            "sites": self.sites(),
            "totals": self.totals(),
            "ok": self.ok,
        }


# -- the deterministic workload ------------------------------------------------


def _payload(page: int, version: int) -> bytes:
    head = page.to_bytes(4, "little") + version.to_bytes(4, "little")
    return head + bytes([(page * 197 + version * 31) % 256]) * (PAGE_4K - 8)


#: Total workload operations (seq fill + mixed phase): the op index
#: space the golden run captures snapshots over.
def _total_ops() -> int:
    return FOOTPRINT_PAGES + MIXED_STEPS


def _record_ack(acked: dict[int, int], history: dict[int, set[int]],
                page: int, data: bytes) -> None:
    crc = zlib.crc32(data)
    acked[page] = crc
    history.setdefault(page, set()).add(crc)


def _workload_op(driver, rng: random.Random, acked: dict[int, int],
                 history: dict[int, set[int]], t: int, op: int) -> int:
    """Execute workload operation ``op`` (0-based); returns the new time.

    Ops 0..FOOTPRINT_PAGES-1 are the sequential fill; the rest are the
    mixed phase, drawing from ``rng`` exactly as the monolithic loop
    did.  Op-granular execution is what makes the workload *resumable*:
    a restored snapshot carries its op cursor and RNG, and replaying
    from there is bit-identical to having run from zero.
    """
    if op < FOOTPRINT_PAGES:
        data = _payload(op, 0)
        t = driver.write_page(op, data, t)
        _record_ack(acked, history, op, data)
        return t
    step = op - FOOTPRINT_PAGES
    if rng.random() < 0.3:
        page = rng.randrange(FOOTPRINT_PAGES)
        _data, t = driver.read_page(page, t)
    else:
        page = rng.randrange(FOOTPRINT_PAGES)
        data = _payload(page, 1 + step)
        t = driver.write_page(page, data, t)
        _record_ack(acked, history, page, data)
    return t


def _workload(driver, rng: random.Random, acked: dict[int, int],
              history: dict[int, set[int]], t: int) -> int:
    """Seq-fill then mixed read/write; records every *acked* version."""
    for op in range(_total_ops()):
        t = _workload_op(driver, rng, acked, history, t, op)
    return t


class _CommitLog:
    """The FTL ``on_commit`` hook as a picklable callable.

    Ground truth for "committed": the FTL reports every page that
    actually reached flash.  A class (not a closure) so the hook — and
    the ``durable`` dict it feeds — survives simulation snapshots.
    """

    def __init__(self, durable: dict[int, int]) -> None:
        self.durable = durable

    def __call__(self, lpn: int, crc: int, kind: str) -> None:
        if kind == "trim":
            self.durable.pop(lpn, None)
        else:
            self.durable[lpn] = crc


# -- one explored cut ----------------------------------------------------------


def _verify(driver, acked: dict[int, int], history: dict[int, set[int]],
            durable: dict[int, int], t: int, outcome: RunOutcome) -> None:
    """Check the recovery invariants against the remounted module."""
    for page in range(FOOTPRINT_PAGES):
        try:
            data, t = driver.read_page(page, t)
        except Exception:
            # Any read refusal after remount loses whatever was there.
            if page in durable:
                outcome.committed_lost += 1
            continue
        crc = zlib.crc32(data)
        allowed = history.get(page, set()) | {_ZERO_CRC}
        if crc not in allowed:
            outcome.torn_served += 1
            continue
        want = durable.get(page)
        if want is not None and crc != want:
            outcome.committed_lost += 1
            continue
        last = acked.get(page)
        if last is not None and crc != last:
            outcome.acked_uncommitted += 1
    try:
        probe = _payload(0, 424242)
        t = driver.write_page(0, probe, t)
        back, t = driver.read_page(0, t)
        outcome.remount_writable = back == probe
    except Exception:
        outcome.remount_writable = False


def _run_cut(seed: int, capacity: int,
             cut_index: int | None) -> tuple[RunOutcome, int, int]:
    """One deterministic run; ``cut_index=None`` is the counting baseline.

    Returns ``(outcome, workload_events, total_events)`` — the event
    counts are only meaningful for the baseline (a fired cut truncates
    the run), but every run shares the same pre-cut prefix, so the
    baseline's counts number the whole explorable space.
    """
    rng = random.Random(seed)
    tracer = Tracer(enabled=True, capacity=capacity)
    suite = default_suite(strict=False)
    outcome = RunOutcome(index=cut_index if cut_index is not None else 0)
    with use_tracer(tracer):
        with suite.attach(tracer):
            clock = FaultClock()
            if cut_index is not None:
                clock.cut_on_event(cut_index)
            # No CPU cache: a cut abandons CP exchanges mid-bracket by
            # design, which the coherence rules (correctly) flag; the
            # §V-B bracket has its own dedicated coverage.
            system = NVDIMMCSystem(cache_bytes=_CACHE_BYTES,
                                   device_bytes=_DEVICE_BYTES,
                                   with_cpu_cache=False,
                                   seed=seed % 100003,
                                   tracer=tracer)
            system.nvmc.fault_clock = clock
            system.nand.ftl.fault_clock = clock
            acked: dict[int, int] = {}
            history: dict[int, set[int]] = {}
            durable: dict[int, int] = {}
            # The hook survives into the drain (preload programs through
            # the same FTL) and dies with it at the mount — exactly the
            # durability boundary.
            system.nand.ftl.on_commit = _CommitLog(durable)
            t = round(us(1))
            try:
                t = _workload(system.driver, rng, acked, history, t)
            except PowerLossInterrupt as exc:
                outcome.fired = True
                outcome.cut_site = exc.site or ""
                t = max(t, exc.time_ps)
            workload_events = clock.events_seen
            power = PowerFailureModel(system.driver)
            power.fault_clock = clock
            try:
                power.power_fail(now_ps=t)
            except PowerLossInterrupt as exc:
                outcome.fired = True
                outcome.drain_interrupted = True
                outcome.cut_site = exc.site or ""
            total_events = clock.events_seen
            mounted, mount_report = recover_mount(
                system, journal=power.journal, now_ps=t)
            outcome.torn_quarantined = mount_report.ftl.torn_quarantined
            outcome.replay_recovered = mount_report.replay_recovered
            outcome.replay_lost = mount_report.replay_lost
            _verify(mounted.driver, acked, history, durable, t, outcome)
    outcome.sanitizer_violations = len(suite.violations)
    return outcome, workload_events, total_events


# -- the snapshot-based sweep --------------------------------------------------


def _capture(roots: dict, t: int, op: int, events_seen: int) -> SimSnapshot:
    """Capture the whole run graph at a workload-op boundary.

    Append-only observability logs — retained trace records, the NVMC's
    per-command :class:`OperationResult` list, the FSM transition
    history — are swapped out for the duration of the dump: no recovery
    report reads them, forks resume with empty logs, and the blob
    shrinks by the size of the prefix history.  Sanitizer observation
    state (inside the suite) and the live FSM *state* stay in — those
    feed post-cut behaviour.
    """
    tracer = roots["tracer"]
    nvmc = roots["system"].nvmc
    saved = (tracer.records, nvmc.operations, nvmc.fsm.history)
    tracer.records = []
    nvmc.operations = []
    nvmc.fsm.history = []
    try:
        return SimSnapshot.capture(dict(roots, t=t, op=op),
                                   event_index=events_seen,
                                   label=f"op{op}")
    finally:
        tracer.records, nvmc.operations, nvmc.fsm.history = saved


def _golden_run(seed: int, capacity: int, cadence: int,
                ) -> tuple[RunOutcome, int, int, SnapshotTimeline]:
    """The counting baseline, doubling as the snapshot producer.

    Identical simulation to ``_run_cut(seed, capacity, None)`` —
    captures are pure reads — plus a :class:`SnapshotTimeline` entry
    every ``cadence`` workload ops and one at the workload/drain
    boundary (so in-drain cuts fork without re-running any workload).
    """
    rng = random.Random(seed)
    tracer = Tracer(enabled=True, capacity=capacity)
    suite = default_suite(strict=False)
    outcome = RunOutcome(index=0)
    timeline = SnapshotTimeline()
    with use_tracer(tracer):
        with suite.attach(tracer):
            clock = FaultClock()
            system = NVDIMMCSystem(cache_bytes=_CACHE_BYTES,
                                   device_bytes=_DEVICE_BYTES,
                                   with_cpu_cache=False,
                                   seed=seed % 100003,
                                   tracer=tracer)
            system.nvmc.fault_clock = clock
            system.nand.ftl.fault_clock = clock
            acked: dict[int, int] = {}
            history: dict[int, set[int]] = {}
            durable: dict[int, int] = {}
            system.nand.ftl.on_commit = _CommitLog(durable)
            roots = {"system": system, "tracer": tracer, "suite": suite,
                     "clock": clock, "rng": rng, "acked": acked,
                     "history": history, "durable": durable}
            t = round(us(1))
            for op in range(_total_ops()):
                if op % cadence == 0:
                    timeline.add(_capture(roots, t, op, clock.events_seen))
                t = _workload_op(system.driver, rng, acked, history, t, op)
            workload_events = clock.events_seen
            timeline.add(_capture(roots, t, _total_ops(),
                                  clock.events_seen))
            power = PowerFailureModel(system.driver)
            power.fault_clock = clock
            power.power_fail(now_ps=t)
            total_events = clock.events_seen
            mounted, mount_report = recover_mount(
                system, journal=power.journal, now_ps=t)
            outcome.torn_quarantined = mount_report.ftl.torn_quarantined
            outcome.replay_recovered = mount_report.replay_recovered
            outcome.replay_lost = mount_report.replay_lost
            _verify(mounted.driver, acked, history, durable, t, outcome)
    outcome.sanitizer_violations = len(suite.violations)
    return outcome, workload_events, total_events, timeline


def _replay_cut(timeline: SnapshotTimeline, cut_index: int) -> RunOutcome:
    """Fork the golden run at the nearest snapshot and replay the tail.

    The restored fault clock carries the prefix's ``events_seen``, so
    arming ``cut_on_event(cut_index)`` on it fires at the same absolute
    event a from-zero run would see; everything downstream (drain,
    remount, verification, sanitizer finalize) mirrors ``_run_cut``.
    """
    snap = timeline.nearest(cut_index)
    if snap is None:
        raise RuntimeError(f"no snapshot precedes cut index {cut_index}")
    state = snap.restore()
    system = state["system"]
    tracer = state["tracer"]
    suite = state["suite"]
    clock = state["clock"]
    rng = state["rng"]
    acked = state["acked"]
    history = state["history"]
    durable = state["durable"]
    t = state["t"]
    op = state["op"]
    outcome = RunOutcome(index=cut_index)
    clock.cut_on_event(cut_index)
    total_ops = _total_ops()
    with use_tracer(tracer):
        try:
            driver = system.driver
            while op < total_ops:
                t = _workload_op(driver, rng, acked, history, t, op)
                op += 1
        except PowerLossInterrupt as exc:
            outcome.fired = True
            outcome.cut_site = exc.site or ""
            t = max(t, exc.time_ps)
        power = PowerFailureModel(system.driver)
        power.fault_clock = clock
        try:
            power.power_fail(now_ps=t)
        except PowerLossInterrupt as exc:
            outcome.fired = True
            outcome.drain_interrupted = True
            outcome.cut_site = exc.site or ""
        mounted, mount_report = recover_mount(
            system, journal=power.journal, now_ps=t)
        outcome.torn_quarantined = mount_report.ftl.torn_quarantined
        outcome.replay_recovered = mount_report.replay_recovered
        outcome.replay_lost = mount_report.replay_lost
        _verify(mounted.driver, acked, history, durable, t, outcome)
        suite.detach()
    outcome.sanitizer_violations = len(suite.violations)
    return outcome


# -- the sweep -----------------------------------------------------------------


def _quick_points(total: int, workload_events: int) -> list[int]:
    """Stride samples plus explicit in-drain probes."""
    stride = max(1, total // QUICK_TARGET)
    points = set(range(1, total + 1, stride))
    points.update({1, total})
    if total > workload_events:
        # At least one cut inside the drain itself, plus its boundary.
        points.add(workload_events + 1)
        points.add(workload_events + max(1, (total - workload_events) // 2))
    return sorted(p for p in points if 1 <= p <= total)


def explore(seed: int = 0, quick: bool = False,
            capacity: int = 200_000,
            progress: Callable[[int, int], None] | None = None,
            snapshot: bool = True,
            ) -> ExplorerResult:
    """Sweep a power cut across the workload's whole event space.

    Full mode runs once per event index.  ``quick`` samples at a
    stride (>= :data:`QUICK_TARGET` points) and bisects every pair of
    neighbouring samples whose outcome signatures differ, until each
    behaviour boundary is pinned to an exact event index.

    ``snapshot=True`` (the default) explores each cut by forking the
    golden run from the nearest op-boundary snapshot and replaying only
    the tail; ``snapshot=False`` re-runs every cut from zero.  Both
    paths produce byte-identical results.
    """
    result = ExplorerResult(seed=seed, quick=quick)
    timeline: SnapshotTimeline | None = None
    if snapshot:
        cadence = SNAP_CADENCE_QUICK if quick else SNAP_CADENCE_FULL
        baseline, workload_events, total, timeline = _golden_run(
            seed, capacity, cadence)
    else:
        baseline, workload_events, total = _run_cut(seed, capacity, None)
    result.total_events = total
    result.workload_events = workload_events
    # With no cut the drain completes: everything acked must be intact.
    result.baseline_ok = (baseline.ok and not baseline.fired
                          and baseline.acked_uncommitted == 0)
    if total < 1:
        return result

    if quick:
        pending = _quick_points(total, workload_events)
    else:
        pending = list(range(1, total + 1))
    explored: dict[int, RunOutcome] = {}
    planned = len(pending)
    while pending:
        for index in pending:
            if timeline is not None:
                outcome = _replay_cut(timeline, index)
            else:
                outcome, _, _ = _run_cut(seed, capacity, index)
            explored[index] = outcome
            if progress is not None:
                progress(len(explored), planned)
        if not quick:
            break
        # Bisect every adjacent pair whose outcome signatures differ:
        # behaviour boundaries get pinned to the exact event index.
        pending = []
        tested = sorted(explored)
        for left, right in zip(tested, tested[1:]):
            if right - left <= 1:
                continue
            if explored[left].signature() != explored[right].signature():
                pending.append((left + right) // 2)
        planned += len(pending)
    result.outcomes = [explored[i] for i in sorted(explored)]
    return result
