"""``python -m repro crash``: the crash-point explorer.

``crash [--quick] [--seed N] [--out DIR]`` sweeps a power cut across
every event index of a deterministic workload (``--quick``: stride
samples plus bisected behaviour boundaries), cold-mounts after each
cut, verifies the recovery invariants, and writes a schema-pinned
``RECOVERY_<timestamp>.json`` report.  Exits non-zero when any cut
point loses committed data, serves a torn page, trips a sanitizer, or
the sweep never reached the §V-C drain.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def cmd_crash(args: argparse.Namespace) -> int:
    from repro.recovery.explorer import explore
    from repro.recovery.report import render_report, validate_report

    def progress(done: int, planned: int) -> None:
        if done % 25 == 0 or done == planned:
            print(f"  explored {done}/{planned} cut points")

    mode = "quick" if args.quick else "full"
    print(f"repro crash: {mode} sweep, seed {args.seed}")
    result = explore(seed=args.seed, quick=args.quick,
                     capacity=args.capacity, progress=progress,
                     snapshot=not args.no_snapshot)
    timestamp = time.strftime("%Y%m%d-%H%M%S")
    payload = render_report(result, timestamp=timestamp)
    problems = validate_report(json.loads(payload))
    if problems:    # a schema bug is a tooling failure, not a sweep failure
        for problem in problems:
            print(f"report schema problem: {problem}", file=sys.stderr)
        return 2
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"RECOVERY_{timestamp}.json"
    path.write_text(payload)
    totals = result.totals()
    print(f"wrote {path}")
    print(f"events={result.total_events} "
          f"(workload {result.workload_events}, "
          f"drain {result.total_events - result.workload_events}) "
          f"cut_points={totals['cut_points']} "
          f"drain_cuts={totals['drain_cuts']}")
    print(f"committed_lost={totals['committed_lost']} "
          f"torn_served={totals['torn_served']} "
          f"torn_quarantined={totals['torn_quarantined']} "
          f"acked_uncommitted={totals['acked_uncommitted']} "
          f"violations={totals['sanitizer_violations']} "
          f"failed_runs={totals['failed_runs']}")
    print("sites: " + " ".join(
        f"{site}={count}" for site, count in sorted(result.sites().items())))
    if not result.ok:
        if not result.baseline_ok:
            print("crash sweep FAILED: fault-free baseline is not clean",
                  file=sys.stderr)
        if totals["failed_runs"]:
            print(f"crash sweep FAILED: {totals['failed_runs']} cut points "
                  "broke a recovery invariant", file=sys.stderr)
        if totals["drain_cuts"] < 1:
            print("crash sweep FAILED: no cut point landed inside the "
                  "§V-C drain", file=sys.stderr)
        return 1
    print("crash sweep clean: every cut point remounted with committed "
          "data intact and no torn page served")
    return 0


def build_parser(sub_or_none: "argparse._SubParsersAction | None" = None
                 ) -> argparse.ArgumentParser:
    """Build the ``crash`` parser, standalone or under a parent CLI."""
    if sub_or_none is None:
        parser = argparse.ArgumentParser(prog="repro crash")
    else:
        parser = sub_or_none.add_parser(
            "crash", help="crash-point explorer (cut + remount sweep)")
    parser.add_argument("--quick", action="store_true",
                        help="stride-sample the event space and bisect "
                             "behaviour boundaries instead of cutting at "
                             "every event")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--out", default="results",
                        help="directory for RECOVERY_<timestamp>.json")
    parser.add_argument("--capacity", type=int, default=200_000,
                        help="per-run tracer retention bound (records)")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="re-run every cut from event zero instead of "
                             "forking tails from mid-run snapshots "
                             "(reports are byte-identical either way)")
    parser.set_defaults(fn=cmd_crash)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
