"""The schema-pinned ``RECOVERY_*.json`` crash-exploration report.

Same contract as the faults and soak reports: :data:`SCHEMA` names the
revision, :func:`render_report` serialises with sorted keys and a
trailing newline — byte-identical for identical sweeps, since the
wall-clock timestamp is injected by the caller (pass ``None`` for
byte-stable output) — and :func:`validate_report` checks a parsed
report against the pinned shape.

Shape notes:

``events``
    the explorable space: total hook-site visits of the fault-free
    baseline, split into the workload's and the §V-C drain's share.
``cut_points``
    every event index actually explored (full mode: all of them;
    ``--quick``: stride samples plus bisected boundaries).
``windows``
    consecutive cut points folded while their outcome signature is
    unchanged — the compressed behaviour map of the event space.
``totals.committed_lost`` / ``totals.torn_served``
    the two always-illegal outcomes; a clean sweep reports zero for
    both (``acked_uncommitted`` is legal only under an interrupted
    drain, and ``failed_runs`` counts cut points where any invariant
    broke).
"""

from __future__ import annotations

import json
from typing import Any

from repro.report import (require_bool, require_exact_keys,
                          require_nonneg_ints, require_object_list,
                          schema_id, validate_schema_report)

SCHEMA = schema_id("recovery", 1)

_REPORT_KEYS = frozenset(
    {"schema", "generated_at", "seed", "quick", "events", "cut_points",
     "windows", "sites", "totals", "ok"})
_EVENT_KEYS = frozenset({"total", "workload", "drain"})
_WINDOW_KEYS = frozenset(
    {"start", "end", "runs", "committed_lost", "torn_served",
     "acked_uncommitted", "drain_interrupted", "remount_writable",
     "violations"})
_TOTAL_KEYS = frozenset(
    {"cut_points", "drain_cuts", "committed_lost", "torn_served",
     "acked_uncommitted", "torn_quarantined", "sanitizer_violations",
     "replay_recovered", "replay_lost", "failed_runs"})


def render_report(result: Any, timestamp: str | None = None) -> str:
    """Serialise an :class:`~repro.recovery.explorer.ExplorerResult`.

    ``timestamp`` is stamped into ``generated_at`` verbatim; pass None
    (the default) for byte-stable output.
    """
    payload = result.to_dict()
    payload["generated_at"] = timestamp
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _detail(payload: dict, problems: list[str]) -> None:
    if require_exact_keys(problems, payload.get("events"), _EVENT_KEYS,
                          "events"):
        require_nonneg_ints(problems, payload["events"],
                            sorted(_EVENT_KEYS), "events.")
    cut_points = payload.get("cut_points")
    if not isinstance(cut_points, list) or any(
            not isinstance(p, int) or p < 1 for p in cut_points):
        problems.append("cut_points must be a list of positive ints")
    elif cut_points != sorted(set(cut_points)):
        problems.append("cut_points must be sorted and distinct")
    for index, window in enumerate(require_object_list(problems, payload,
                                                       "windows")):
        if not isinstance(window, dict):
            problems.append(f"windows[{index}] must be an object")
            continue
        if window.keys() != _WINDOW_KEYS:
            problems.append(
                f"windows[{index}] keys {sorted(window.keys())} != "
                f"{sorted(_WINDOW_KEYS)}")
            continue
        require_nonneg_ints(
            problems, window,
            ("start", "end", "runs", "committed_lost", "torn_served",
             "acked_uncommitted", "violations"), f"windows[{index}].")
    sites = payload.get("sites")
    if not isinstance(sites, dict) or any(
            not isinstance(count, int) or count < 0
            for count in sites.values()):
        problems.append("sites must map site -> non-negative int")
    if require_exact_keys(problems, payload.get("totals"), _TOTAL_KEYS,
                          "totals"):
        require_nonneg_ints(problems, payload["totals"],
                            sorted(_TOTAL_KEYS), "totals.")
    require_bool(problems, payload, "ok")


def validate_report(payload: Any) -> list[str]:
    """Problems with a parsed report; an empty list means valid."""
    return validate_schema_report("recovery", 1, payload, _REPORT_KEYS,
                                  detail=_detail)
