"""The schema-pinned ``RECOVERY_*.json`` crash-exploration report.

Same contract as the faults and soak reports: :data:`SCHEMA` names the
revision, :func:`render_report` serialises with sorted keys and a
trailing newline — byte-identical for identical sweeps, since the
wall-clock timestamp is injected by the caller (pass ``None`` for
byte-stable output) — and :func:`validate_report` checks a parsed
report against the pinned shape.

Shape notes:

``events``
    the explorable space: total hook-site visits of the fault-free
    baseline, split into the workload's and the §V-C drain's share.
``cut_points``
    every event index actually explored (full mode: all of them;
    ``--quick``: stride samples plus bisected boundaries).
``windows``
    consecutive cut points folded while their outcome signature is
    unchanged — the compressed behaviour map of the event space.
``totals.committed_lost`` / ``totals.torn_served``
    the two always-illegal outcomes; a clean sweep reports zero for
    both (``acked_uncommitted`` is legal only under an interrupted
    drain, and ``failed_runs`` counts cut points where any invariant
    broke).
"""

from __future__ import annotations

import json
from typing import Any

SCHEMA = "repro.recovery/1"

_REPORT_KEYS = frozenset(
    {"schema", "generated_at", "seed", "quick", "events", "cut_points",
     "windows", "sites", "totals", "ok"})
_EVENT_KEYS = frozenset({"total", "workload", "drain"})
_WINDOW_KEYS = frozenset(
    {"start", "end", "runs", "committed_lost", "torn_served",
     "acked_uncommitted", "drain_interrupted", "remount_writable",
     "violations"})
_TOTAL_KEYS = frozenset(
    {"cut_points", "drain_cuts", "committed_lost", "torn_served",
     "acked_uncommitted", "torn_quarantined", "sanitizer_violations",
     "replay_recovered", "replay_lost", "failed_runs"})


def render_report(result: Any, timestamp: str | None = None) -> str:
    """Serialise an :class:`~repro.recovery.explorer.ExplorerResult`.

    ``timestamp`` is stamped into ``generated_at`` verbatim; pass None
    (the default) for byte-stable output.
    """
    payload = result.to_dict()
    payload["generated_at"] = timestamp
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def validate_report(payload: Any) -> list[str]:
    """Problems with a parsed report; an empty list means valid."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA:
        problems.append(
            f"schema must be {SCHEMA!r}: {payload.get('schema')!r}")
    missing = _REPORT_KEYS - payload.keys()
    if missing:
        problems.append(f"missing report keys: {sorted(missing)}")
    extra = payload.keys() - _REPORT_KEYS
    if extra:
        problems.append(f"unknown report keys: {sorted(extra)}")
    events = payload.get("events")
    if not isinstance(events, dict) or events.keys() != _EVENT_KEYS:
        problems.append(f"events keys must be {sorted(_EVENT_KEYS)}")
    else:
        for key in sorted(_EVENT_KEYS):
            if not isinstance(events[key], int) or events[key] < 0:
                problems.append(f"events.{key} must be a non-negative int")
    cut_points = payload.get("cut_points")
    if not isinstance(cut_points, list) or any(
            not isinstance(p, int) or p < 1 for p in cut_points):
        problems.append("cut_points must be a list of positive ints")
    elif cut_points != sorted(set(cut_points)):
        problems.append("cut_points must be sorted and distinct")
    windows = payload.get("windows")
    if not isinstance(windows, list):
        problems.append("windows must be a list")
        windows = []
    for index, window in enumerate(windows):
        if not isinstance(window, dict):
            problems.append(f"windows[{index}] must be an object")
            continue
        if window.keys() != _WINDOW_KEYS:
            problems.append(
                f"windows[{index}] keys {sorted(window.keys())} != "
                f"{sorted(_WINDOW_KEYS)}")
            continue
        for key in ("start", "end", "runs", "committed_lost",
                    "torn_served", "acked_uncommitted", "violations"):
            if not isinstance(window[key], int) or window[key] < 0:
                problems.append(
                    f"windows[{index}].{key} must be a non-negative int")
    sites = payload.get("sites")
    if not isinstance(sites, dict) or any(
            not isinstance(count, int) or count < 0
            for count in sites.values()):
        problems.append("sites must map site -> non-negative int")
    totals = payload.get("totals")
    if not isinstance(totals, dict) or totals.keys() != _TOTAL_KEYS:
        problems.append(f"totals keys must be {sorted(_TOTAL_KEYS)}")
    else:
        for key in sorted(_TOTAL_KEYS):
            if not isinstance(totals[key], int) or totals[key] < 0:
                problems.append(f"totals.{key} must be a non-negative int")
    if not isinstance(payload.get("ok"), bool):
        problems.append("ok must be a bool")
    return problems
