"""The DAX-aware filesystem layer: files, mmap, and the fault path.

§II-A / Fig. 6: an application mmaps a file on the DAX filesystem; the
first touch of each 4 KB page faults; the kernel routes the fault to the
filesystem, which calls the device's ``device_access`` to obtain the
backing PFN and installs the PTE; the retried access then proceeds as a
plain load/store.

The filesystem here is a minimal extent-based XFS stand-in: contiguous
allocation, 4 KB blocks, no journaling — enough to exercise the exact
fault flow and offset arithmetic the driver depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.mmu import MMU
from repro.errors import KernelError
from repro.kernel.blockdev import BlockDevice, SECTORS_PER_PAGE
from repro.units import PAGE_4K


@dataclass
class DaxFile:
    """One file: a contiguous extent of device pages."""

    name: str
    start_page: int       # first device page of the extent
    num_pages: int

    @property
    def size_bytes(self) -> int:
        return self.num_pages * PAGE_4K

    def device_page(self, offset: int) -> int:
        """Device page backing a byte offset within the file."""
        if not 0 <= offset < self.size_bytes:
            raise KernelError(
                f"offset {offset} outside file {self.name!r}")
        return self.start_page + offset // PAGE_4K


@dataclass
class Mapping:
    """An established mmap of a file into a virtual address range."""

    file: DaxFile
    vaddr: int

    def vaddr_of(self, offset: int) -> int:
        return self.vaddr + offset


class DaxFaultHandler:
    """The per-mapping DAX fault callback (Fig. 6 step 3-5).

    A class rather than a closure so established mappings survive
    simulation snapshots: instances hold only references into the
    snapshotted graph (filesystem, file handle, MMU) and re-bind
    naturally on restore.
    """

    def __init__(self, fs: "DaxFilesystem", handle: DaxFile,
                 mmu: MMU, vaddr: int) -> None:
        self.fs = fs
        self.handle = handle
        self.mmu = mmu
        self.vaddr = vaddr

    def __call__(self, fault_vaddr: int) -> bool:
        fs = self.fs
        fs.fault_count += 1
        delta = fault_vaddr - self.vaddr
        offset = delta - delta % PAGE_4K
        page = self.handle.device_page(offset)
        dax = fs.device.device_access(
            page * SECTORS_PER_PAGE, fs.now_ps, for_write=True)
        fs.now_ps = max(fs.now_ps, dax.end_ps)
        self.mmu.map_page((self.vaddr + offset) // PAGE_4K, dax.pfn)
        return True


class DaxEvictUnmapper:
    """Tears down the PTE of an evicted page so the next access
    re-faults (the driver keeps PTE pointers for this, §IV-B).
    Snapshot-safe for the same reason as :class:`DaxFaultHandler`.
    """

    def __init__(self, handle: DaxFile, mmu: MMU, vaddr: int) -> None:
        self.handle = handle
        self.mmu = mmu
        self.vaddr = vaddr

    def __call__(self, device_page: int) -> None:
        handle = self.handle
        if handle.start_page <= device_page < (handle.start_page
                                               + handle.num_pages):
            offset = (device_page - handle.start_page) * PAGE_4K
            self.mmu.unmap_page((self.vaddr + offset) // PAGE_4K)


class DaxFilesystem:
    """Mounted-with ``-o dax`` filesystem over one block device."""

    def __init__(self, device: BlockDevice, name: str = "xfs-dax") -> None:
        self.device = device
        self.name = name
        self.files: dict[str, DaxFile] = {}
        self._next_page = 0
        self.fault_count = 0
        #: Driver-visible clock used by fault handlers (the MMU fault
        #: callback carries no timestamp, as in the kernel).
        self.now_ps = 0

    # -- namespace --------------------------------------------------------------------

    def create(self, name: str, size_bytes: int) -> DaxFile:
        """Create a file with a contiguous extent."""
        if name in self.files:
            raise KernelError(f"file {name!r} exists")
        num_pages = -(-size_bytes // PAGE_4K)
        if (self._next_page + num_pages) > self.device.num_pages:
            raise KernelError(
                f"filesystem full: {name!r} needs {num_pages} pages")
        handle = DaxFile(name=name, start_page=self._next_page,
                         num_pages=num_pages)
        self._next_page += num_pages
        self.files[name] = handle
        return handle

    # -- mmap + fault path (Fig. 6) ------------------------------------------------------

    def mmap(self, handle: DaxFile, mmu: MMU, vaddr: int) -> Mapping:
        """Map a file at ``vaddr`` and register the DAX fault handler."""
        if vaddr % PAGE_4K:
            raise KernelError("mmap address must be page-aligned")
        mapping = Mapping(file=handle, vaddr=vaddr)
        mmu.register_fault_handler(
            vaddr, handle.size_bytes,
            DaxFaultHandler(self, handle, mmu, vaddr))
        if hasattr(self.device, "on_evict"):
            self.device.on_evict.append(DaxEvictUnmapper(handle, mmu, vaddr))
        return mapping

    # -- buffered (non-DAX) I/O, used by the file-copy workload -------------------------------

    def pwrite(self, handle: DaxFile, offset: int, data: bytes,
               now_ps: int) -> int:
        """Page-granular write through the block layer."""
        if offset % PAGE_4K or len(data) % PAGE_4K:
            raise KernelError("pwrite must be page-aligned (block layer)")
        t = now_ps
        for i in range(len(data) // PAGE_4K):
            page = handle.device_page(offset + i * PAGE_4K)
            t = self.device.write_page(
                page, data[i * PAGE_4K:(i + 1) * PAGE_4K], t)
        return t

    def pread(self, handle: DaxFile, offset: int, nbytes: int,
              now_ps: int) -> tuple[bytes, int]:
        """Page-granular read through the block layer."""
        if offset % PAGE_4K or nbytes % PAGE_4K:
            raise KernelError("pread must be page-aligned (block layer)")
        out = bytearray()
        t = now_ps
        for i in range(nbytes // PAGE_4K):
            page = handle.device_page(offset + i * PAGE_4K)
            data, t = self.device.read_page(page, t)
            out.extend(data)
        return bytes(out), t
