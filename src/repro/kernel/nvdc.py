"""The nvdc driver: DRAM-cache management over the CP protocol.

This is the software half of NVDIMM-C (§IV-B/§IV-C, Fig. 6):

* the 120 GB block device is direct-mapped: sector -> 4 KB NAND page;
* the reserved region's slots form a fully associative, 4 KB-line cache
  of those pages;
* a miss allocates a free slot (or evicts a victim — writeback first if
  dirty) and performs a *cachefill* through the CP mailbox;
* explicit coherence brackets every CP operation: ``clflush`` +
  ``sfence`` before a writeback so the device snapshots current bytes,
  cacheline invalidation after a cachefill so the CPU cannot serve
  stale data (§V-B);
* eviction policy is pluggable — the PoC's LRC, or LRU/CLOCK for the
  §VII-B5 study.

``skip_coherence=True`` builds the *broken* driver that omits the §V-B
bracket; the coherence tests use it to demonstrate the corruption the
paper warns about.

The PoC has no per-page dirty tracking through the writable DAX
mappings, so it conservatively treats every mapped page as dirty
(``conservative_dirty=True``, the configuration that reproduces the
measured read-miss cost of a full writeback+cachefill pair, §VII-B2).
Precise dirty tracking is available for the ablation bench.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cpu.cache import CPUCache
from repro.ddr.device import DRAMDevice
from repro.errors import (CPTimeoutError, DegradedModeError, FailStopError,
                          KernelError, MediaError, PowerLossInterrupt)
from repro.health.retry import policy_for
from repro.kernel.blockdev import (BlockDevice, DaxMapping, sector_to_page)
from repro.kernel.eviction import EvictionPolicy, make_policy
from repro.kernel.memmap import ReservedRegion
from repro.nvmc.cp import CPAck, CPCommand, Opcode
from repro.sim.snapshot import SnapshotMixin
from repro.nvmc.nvmc import NVMCModel, OperationResult
from repro.perf.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.units import PAGE_4K


@dataclass
class NvdcStats:
    """Driver-level counters."""

    hits: int = 0
    misses: int = 0
    cachefills: int = 0
    writebacks: int = 0
    evictions: int = 0
    merged_ops: int = 0
    overwrite_claims: int = 0
    fault_ns_total: float = 0.0
    windows_total: int = 0
    #: CP exchanges re-issued after a missing or unusable ack.
    cp_retries: int = 0
    #: Ack polls that hit the timeout (no ack at all).
    cp_timeouts: int = 0
    #: CP exchanges the device failed with MEDIA_ERROR.
    media_errors: int = 0
    #: CP exchanges the device refused with a DEGRADED ack.
    degraded_refusals: int = 0
    #: Read misses served directly from the media while read-only.
    degraded_reads: int = 0
    #: Evictions undone because the victim's writeback failed — the
    #: cache copy was the only current one, so the mapping is restored.
    eviction_rollbacks: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class NvdcDriver(BlockDevice, SnapshotMixin):
    """Driver for /dev/nvdc0."""

    def __init__(self, region: ReservedRegion, nvmc: NVMCModel,
                 dram: DRAMDevice, cpu_cache: CPUCache | None = None,
                 policy: str | EvictionPolicy = "lrc",
                 conservative_dirty: bool = True,
                 skip_coherence: bool = False,
                 use_merged_commands: bool = False,
                 calibration: CalibrationConstants = DEFAULT_CALIBRATION,
                 name: str = "nvdc0") -> None:
        capacity = nvmc.nand.logical_capacity_bytes
        super().__init__(name, capacity)
        self.region = region
        self.nvmc = nvmc
        self.dram = dram
        self.cpu_cache = cpu_cache
        self.policy: EvictionPolicy = (
            make_policy(policy) if isinstance(policy, str) else policy)
        self.conservative_dirty = conservative_dirty
        self.skip_coherence = skip_coherence
        self.use_merged_commands = use_merged_commands
        self.calibration = calibration
        # Mapping state (lives in the Fig. 5 metadata area on hardware).
        self.page_to_slot: dict[int, int] = {}
        self.slot_to_page: dict[int, int] = {}
        self.dirty_slots: set[int] = set()
        #: In-flight-writeback journal entry: ``(slot, page)`` while a
        #: victim's WRITEBACK/MERGED exchange is outstanding.  The victim
        #: mapping leaves ``slot_to_page`` before the device snapshots
        #: the page, so a power cut mid-writeback would otherwise miss
        #: it during the §V-C drain; the metadata area keeps this one
        #: extra mapping until the ack lands.
        self.inflight_writeback: tuple[int, int] | None = None
        self.free_slots: deque[int] = deque(range(region.num_slots))
        #: Called with the evicted device page: the DAX layers register
        #: PTE teardown here (§IV-B stores "the pointer to the
        #: associated PTE" in the FIFO for exactly this purpose).
        self.on_evict: list = []
        self.stats = NvdcStats()
        #: Shared module-health state (installed on the NVMC by the
        #: system composition; ``None`` for standalone constructions).
        self.health = getattr(nvmc, "health", None)
        #: CP exchange retry schedule: the calibrated timeout as the
        #: base, exponential with deterministic jitter, capped at 8x —
        #: the taxonomy budget for :class:`~repro.errors.CPTimeoutError`
        #: specialised to this driver's calibration.
        self.cp_retry_policy = policy_for(
            CPTimeoutError,
            max_attempts=1 + calibration.cp_max_retries,
            base_ps=calibration.cp_timeout_ps,
            cap_ps=8 * calibration.cp_timeout_ps,
            site=name)
        # Point the NVMC's slot arithmetic at our slot area.
        nvmc.slot_base = region.base_paddr + region.layout.slots_offset
        # The driver traces into its device's stream under the same owner
        # token, so the coherence sanitizer can correlate CP commands with
        # the flush/invalidate bracket that must surround them.
        self.tracer = nvmc.tracer
        self.trace_owner = nvmc.trace_owner
        if self.tracer.enabled:
            self.tracer.emit(0, "nvdc.attach", f"{name} attached",
                             owner=self.trace_owner,
                             coherent=cpu_cache is not None,
                             skip_coherence=skip_coherence)

    # -- fast-path lookup (the post-fault mapped state) ---------------------------------

    def lookup(self, page: int) -> int | None:
        """Slot holding ``page`` if cached, else None (no side effects
        beyond recency bookkeeping)."""
        slot = self.page_to_slot.get(page)
        if slot is not None:
            self.stats.hits += 1
            self.policy.on_access(slot)
        return slot

    def mark_write(self, page: int, now_ps: int = 0) -> None:
        """Record a store to a cached page (dirty bookkeeping)."""
        slot = self.page_to_slot.get(page)
        if slot is not None:
            self._mark_dirty(slot, page, now_ps)

    def _mark_dirty(self, slot: int, page: int, now_ps: int) -> None:
        health = self.health
        if health is not None and health.read_only:
            if health.failed:
                raise FailStopError(
                    f"{self.name}: store to page {page} refused; module "
                    "is fail-stop", reason=health.reason or "fail-stop")
            raise DegradedModeError(
                f"{self.name}: store to page {page} refused; module is "
                "read-only", reason=health.reason or "read-only")
        self.dirty_slots.add(slot)
        if self.tracer.enabled:
            self.tracer.emit(now_ps, "nvdc.dirty", f"page {page} dirtied",
                             owner=self.trace_owner, page=page, slot=slot,
                             addr=self.region.slot_paddr(slot))

    # -- the miss path (Fig. 6) -----------------------------------------------------------

    def fault(self, page: int, now_ps: int, for_write: bool,
              full_page_write: bool = False) -> tuple[int, int]:
        """Resolve a miss on device page ``page``; returns (slot, end).

        Implements the §IV-B flow: free slot -> cachefill; no free slot
        -> evict (writeback if dirty) then cachefill.

        ``full_page_write`` marks block-layer writes that cover the
        whole 4 KB page: when a *free slot* is available, those skip
        the CP exchange entirely (the slot is claimed and overwritten),
        which is how the PoC reaches its SSD-limited 518 MB/s during
        the Fig. 7 free-slot phase.  On the eviction path the PoC still
        performs the full writeback+cachefill pair — the DAX fault
        handler cannot know the upcoming store pattern (§VII-B1).
        """
        if not 0 <= page < self.num_pages:
            raise KernelError(f"{self.name}: page {page} beyond device")
        if page in self.page_to_slot:
            raise KernelError(f"{self.name}: fault on cached page {page}")
        health = self.health
        degraded = health is not None and health.read_only
        if degraded:
            if health.failed:
                raise FailStopError(
                    f"{self.name}: module is fail-stop; all I/O refused",
                    reason=health.reason or "fail-stop")
            if for_write:
                raise DegradedModeError(
                    f"{self.name}: write refused; module is read-only",
                    reason=health.reason or "read-only")
        self.stats.misses += 1
        t = now_ps + self.calibration.nvdc_miss_sw_ps

        victim_page: int | None = None
        victim_dirty = False
        if not self.free_slots:
            victim = self.policy.pick_victim()
            victim_page = self.slot_to_page.pop(victim)
            del self.page_to_slot[victim_page]
            # A read-only module trusts precise dirty tracking: nothing
            # new dirties, and conservatively writing back clean victims
            # would be refused anyway.
            victim_dirty = (victim in self.dirty_slots
                            or (self.conservative_dirty and not degraded))
            self.dirty_slots.discard(victim)
            self.stats.evictions += 1
            for callback in self.on_evict:
                callback(victim_page)
            if victim_dirty and not self.use_merged_commands:
                self.inflight_writeback = (victim, victim_page)
                try:
                    t = self._writeback(victim, victim_page, t)
                except (MediaError, CPTimeoutError, PowerLossInterrupt):
                    # Error *or* power cut mid-writeback: the slot still
                    # holds the only current copy, so re-instate the
                    # mapping.  For a cut this is what lets the §V-C
                    # drain (which snapshots slot_to_page) cover the
                    # victim — the finally below clears the journal
                    # field before the drain ever looks at it.
                    self._rollback_eviction(victim, victim_page, dirty=True)
                    raise
                finally:
                    self.inflight_writeback = None
            self.free_slots.append(victim)

        slot = self.free_slots.popleft()
        if full_page_write and victim_page is None:
            t = self._claim_for_overwrite(slot, t)
        elif (self.use_merged_commands and victim_page is not None
                and victim_dirty):
            self.inflight_writeback = (slot, victim_page)
            try:
                t = self._merged(slot, page, slot, victim_page, t)
            except (MediaError, CPTimeoutError, PowerLossInterrupt):
                self._rollback_eviction(slot, victim_page, dirty=True)
                raise
            finally:
                self.inflight_writeback = None
        else:
            try:
                t = self._cachefill(slot, page, t)
            except (MediaError, CPTimeoutError, PowerLossInterrupt):
                self.free_slots.appendleft(slot)   # do not leak the slot
                raise
        self.page_to_slot[page] = slot
        self.slot_to_page[slot] = page
        self.policy.on_cached(slot)
        if for_write or (self.conservative_dirty and not degraded):
            self._mark_dirty(slot, page, t)
        if self.tracer.enabled:
            self.tracer.emit(t, "nvdc.op", f"fault page {page} -> slot {slot}",
                             owner=self.trace_owner, page=page, slot=slot,
                             start_ps=now_ps)
        self.stats.fault_ns_total += (t - now_ps) / 1000.0
        return slot, t

    def _rollback_eviction(self, slot: int, page: int, dirty: bool) -> None:
        """Undo an eviction whose writeback failed.

        The cache slot still holds the only current copy of ``page``
        (the device never snapshotted it), so dropping the mapping
        would lose committed data — restore it instead and let the
        error propagate.
        """
        self.slot_to_page[slot] = page
        self.page_to_slot[page] = slot
        if dirty:
            self.dirty_slots.add(slot)
        self.policy.on_cached(slot)
        self.stats.eviction_rollbacks += 1

    # -- CP exchanges -----------------------------------------------------------------------

    def _flush_bracket(self, paddr: int, slot: int, now_ps: int) -> None:
        """§V-B pre-writeback bracket: clflush the slot, then sfence."""
        if self.cpu_cache is not None and not self.skip_coherence:
            self.cpu_cache.flush_range(paddr, PAGE_4K)
            self.cpu_cache.sfence()
            self._trace_coherence("nvdc.flush", now_ps, paddr, slot)
            self._trace_coherence("nvdc.sfence", now_ps, paddr, slot)

    def _invalidate(self, paddr: int, slot: int, now_ps: int) -> None:
        """§V-B post-cachefill action: drop the slot's CPU-cached lines."""
        if self.cpu_cache is not None and not self.skip_coherence:
            self.cpu_cache.invalidate_range(paddr, PAGE_4K)
            self._trace_coherence("nvdc.invalidate", now_ps, paddr, slot)

    def _exchange(self, opcode: Opcode, now_ps: int,
                  flush_slot: int | None, fill_slot: int | None,
                  **fields: int) -> OperationResult:
        """One CP exchange with timeout/backoff and re-issue (§IV-C).

        Each attempt re-establishes the §V-B coherence bracket: the
        flush+sfence before any write-carrying command (the device must
        snapshot *current* bytes on every attempt), and — on re-issues —
        an invalidation of the fill target, since an earlier attempt may
        already have deposited data the CPU could be caching stale.

        A missing ack (corrupted command word, lost ack write) times out
        after ``cp_timeout_ps`` and backs off per the driver's
        :class:`~repro.health.retry.RetryPolicy` (capped exponential
        with deterministic jitter); the ack area is poisoned before
        re-posting so a stale ack from an earlier command cannot be
        mistaken for a fresh one.  A ``DECODE_ERROR`` ack is re-issued
        immediately (zero backoff — the device proved it is alive).
        ``MEDIA_ERROR`` is not a protocol failure and is raised to the
        caller; ``DEGRADED`` means retrying is pointless and raises
        :class:`~repro.errors.DegradedModeError` (or
        :class:`~repro.errors.FailStopError`) with the health monitor's
        reason.  Once the policy's attempt budget is spent the driver
        gives up with :class:`CPTimeoutError`.
        """
        t = now_ps
        attempts = 0
        policy = self.cp_retry_policy
        health = self.health
        while policy.allows(attempts):
            attempts += 1
            if flush_slot is not None:
                self._flush_bracket(self.region.slot_paddr(flush_slot),
                                    flush_slot, t)
            if attempts > 1:
                if fill_slot is not None:
                    self._invalidate(self.region.slot_paddr(fill_slot),
                                     fill_slot, t)
                self.nvmc.cp.clear_ack(0)
                self.stats.cp_retries += 1
                if health is not None:
                    health.record("nvdc", "cp-retry", time_ps=t)
            command = CPCommand(phase=self.nvmc.next_phase(), opcode=opcode,
                                **fields)
            result = self.nvmc.submit(command, t)
            ack = self.nvmc.cp.poll_ack(0, command.phase)
            if ack is None:
                # Busy-wait until the timeout, back off, re-issue.
                self.stats.cp_timeouts += 1
                t = max(result.completion_ps,
                        t + policy.backoff_ps(attempts, site=opcode.name))
                if health is not None:
                    health.record("nvdc", "cp-timeout", time_ps=t)
                if self.tracer.enabled:
                    self.tracer.emit(t, "cp.abandon",
                                     f"{opcode.name} ack timeout",
                                     owner=self.trace_owner,
                                     opcode=opcode.name, attempt=attempts)
                continue
            if ack.status == CPAck.MEDIA_ERROR:
                self.stats.media_errors += 1
                raise MediaError(
                    f"{self.name}: {opcode.name} failed with MEDIA_ERROR "
                    f"(attempt {attempts})")
            if ack.status == CPAck.DEGRADED:
                self.stats.degraded_refusals += 1
                reason = (health.reason or "degraded") if health is not None \
                    else "degraded"
                if health is not None and health.failed:
                    raise FailStopError(
                        f"{self.name}: {opcode.name} refused; module is "
                        "fail-stop", reason=reason)
                raise DegradedModeError(
                    f"{self.name}: {opcode.name} refused; module is "
                    "read-only", reason=reason)
            if ack.status != CPAck.OK:   # DECODE_ERROR: re-issue
                t = result.completion_ps + self.calibration.nvdc_ack_poll_ps
                continue
            if health is not None:
                health.maybe_relax(result.completion_ps)
            return result
        raise CPTimeoutError(
            f"{self.name}: {opcode.name} exchange abandoned after "
            f"{attempts} attempts", attempts=attempts)

    def _writeback(self, slot: int, page: int, now_ps: int) -> int:
        """Flush + CP WRITEBACK + ack poll (§IV-C)."""
        result = self._exchange(Opcode.WRITEBACK, now_ps,
                                flush_slot=slot, fill_slot=None,
                                dram_slot=slot, nand_page=page)
        self.stats.writebacks += 1
        self.stats.windows_total += result.windows_used
        return result.completion_ps + self.calibration.nvdc_ack_poll_ps

    def _claim_for_overwrite(self, slot: int, now_ps: int) -> int:
        """Free-slot full-page write: no CP exchange, just hygiene.

        The slot's previous contents are zeroed (a hole must not leak
        another tenant's bytes) and any CPU-cached lines dropped.
        """
        paddr = self.region.slot_paddr(slot)
        self.dram.poke(paddr, bytes(PAGE_4K))
        self._invalidate(paddr, slot, now_ps)
        self.stats.overwrite_claims += 1
        return now_ps

    def _cachefill(self, slot: int, page: int, now_ps: int) -> int:
        """CP CACHEFILL + ack poll + cacheline invalidation (§V-B)."""
        result = self._exchange(Opcode.CACHEFILL, now_ps,
                                flush_slot=None, fill_slot=slot,
                                dram_slot=slot, nand_page=page)
        self.stats.cachefills += 1
        self.stats.windows_total += result.windows_used
        self._invalidate(self.region.slot_paddr(slot), slot,
                         result.completion_ps)
        return result.completion_ps + self.calibration.nvdc_ack_poll_ps

    def _merged(self, fill_slot: int, fill_page: int, wb_slot: int,
                wb_page: int, now_ps: int) -> int:
        """§VII-C item (4): one CP command carrying both halves."""
        result = self._exchange(Opcode.MERGED, now_ps,
                                flush_slot=wb_slot, fill_slot=fill_slot,
                                dram_slot=fill_slot, nand_page=fill_page,
                                wb_dram_slot=wb_slot, wb_nand_page=wb_page)
        self.stats.merged_ops += 1
        self.stats.windows_total += result.windows_used
        self._invalidate(self.region.slot_paddr(fill_slot), fill_slot,
                         result.completion_ps)
        return result.completion_ps + self.calibration.nvdc_ack_poll_ps

    def _trace_coherence(self, category: str, now_ps: int, addr: int,
                         slot: int) -> None:
        """Trace one §V-B coherence action against a slot's paddr."""
        if self.tracer.enabled:
            self.tracer.emit(now_ps, category, f"slot {slot}",
                             owner=self.trace_owner, addr=addr,
                             bytes=PAGE_4K, slot=slot)

    # -- BlockDevice interface -----------------------------------------------------------------

    def device_access(self, sector: int, now_ps: int,
                      for_write: bool) -> DaxMapping:
        """The fsdax hook: byte-addressable mapping for a block."""
        self.check_sector(sector)
        page = sector_to_page(sector)
        health = self.health
        if health is not None and health.failed:
            raise FailStopError(
                f"{self.name}: access to page {page} refused; module is "
                "fail-stop", reason=health.reason or "fail-stop")
        slot = self.page_to_slot.get(page)
        if slot is not None:
            self.stats.hits += 1
            self.policy.on_access(slot)
            if for_write:
                self._mark_dirty(slot, page, now_ps)
            end_ps = now_ps
        else:
            slot, end_ps = self.fault(page, now_ps, for_write)
        paddr = self.region.slot_paddr(slot)
        return DaxMapping(pfn=paddr // PAGE_4K, paddr=paddr, end_ps=end_ps)

    def read_page(self, page: int, now_ps: int) -> tuple[bytes, int]:
        """Block-layer page read (through the DRAM cache).

        In read-only degraded mode a miss that cannot fault (no free
        slot, or the eviction's writeback was refused) falls back to a
        direct media read — committed data stays readable all the way
        down the ladder until fail-stop.
        """
        try:
            mapping = self.device_access(page * 8, now_ps, for_write=False)
        except FailStopError:
            raise
        except DegradedModeError:
            return self._degraded_read(page, now_ps)
        data = self.dram.peek(mapping.paddr, PAGE_4K)
        return data, mapping.end_ps

    def _degraded_read(self, page: int, now_ps: int) -> tuple[bytes, int]:
        """Serve an uncacheable read-only-mode miss from the media.

        No cache allocation, no CP exchange — the same direct path the
        §V-C recovery flow uses.  Only reached for pages that are *not*
        cached, so the NAND copy is the current one.
        """
        data, end_ps = self.nvmc.nand.read_page(page, now_ps)
        if data is None:
            data, end_ps = bytes(PAGE_4K), now_ps
        self.stats.degraded_reads += 1
        if self.tracer.enabled:
            self.tracer.emit(end_ps, "nvdc.degraded",
                             f"direct media read of page {page}",
                             owner=self.trace_owner, page=page)
        return data, end_ps

    def write_page(self, page: int, data: bytes, now_ps: int) -> int:
        """Block-layer page write (dirties the DRAM cache slot)."""
        if len(data) != PAGE_4K:
            raise KernelError("write_page needs exactly 4 KB")
        sector = page * 8
        self.check_sector(sector)
        slot = self.page_to_slot.get(page)
        if slot is not None:
            self.stats.hits += 1
            self.policy.on_access(slot)
            self._mark_dirty(slot, page, now_ps)
            end_ps = now_ps
        else:
            slot, end_ps = self.fault(page, now_ps, for_write=True,
                                      full_page_write=True)
        self.dram.poke(self.region.slot_paddr(slot), data)
        return end_ps

    # -- capacity accounting ----------------------------------------------------------------------

    @property
    def cached_pages(self) -> int:
        return len(self.page_to_slot)

    @property
    def free_slot_count(self) -> int:
        return len(self.free_slots)
