"""The emulated-NVDIMM baseline driver (/dev/pmem0).

§VI: "we compare the results of our device with the emulated NVDIMM,
which is integrated in the Linux kernel v4.2 or later ...  The NVDIMM
emulation device uses the DRAMs as the back-end media (like a ramdisk);
thus, it actually does not guarantee the persistency property."

Every access is a hit by construction: ``device_access`` returns the
direct mapping immediately.  The paper treats this device as the upper
bound of NVDIMM-C performance.
"""

from __future__ import annotations

from repro.ddr.device import DRAMDevice
from repro.errors import KernelError
from repro.kernel.blockdev import BlockDevice, DaxMapping, sector_to_page
from repro.units import PAGE_4K


class PmemDriver(BlockDevice):
    """Ramdisk-like DAX device over a plain DRAM region."""

    def __init__(self, dram: DRAMDevice, base_paddr: int,
                 capacity_bytes: int, name: str = "pmem0") -> None:
        super().__init__(name, capacity_bytes)
        if base_paddr % PAGE_4K:
            raise KernelError("pmem region must be page-aligned")
        self.dram = dram
        self.base_paddr = base_paddr
        self.accesses = 0

    def page_paddr(self, page: int) -> int:
        return self.base_paddr + page * PAGE_4K

    def device_access(self, sector: int, now_ps: int,
                      for_write: bool) -> DaxMapping:
        """Direct mapping: DRAM is the media, nothing to fill."""
        self.check_sector(sector)
        self.accesses += 1
        paddr = self.page_paddr(sector_to_page(sector))
        return DaxMapping(pfn=paddr // PAGE_4K, paddr=paddr, end_ps=now_ps)

    def read_page(self, page: int, now_ps: int) -> tuple[bytes, int]:
        paddr = self.page_paddr(page)
        return self.dram.peek(paddr, PAGE_4K), now_ps

    def write_page(self, page: int, data: bytes, now_ps: int) -> int:
        if len(data) != PAGE_4K:
            raise KernelError("write_page needs exactly 4 KB")
        self.dram.poke(self.page_paddr(page), data)
        return now_ps
