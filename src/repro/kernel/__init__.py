"""The software stack: reserved memory, block layer, DAX, drivers.

A faithful control-flow port of the paper's §IV-B/§IV-C software:

* :mod:`repro.kernel.memmap` — the ``memmap=nn$ss`` reserved region and
  its Fig. 5 layout (CP page, metadata area, cache slots).
* :mod:`repro.kernel.blockdev` — the block-device abstraction with the
  ``device_access`` fsdax hook (§II-A).
* :mod:`repro.kernel.eviction` — cache-slot replacement policies: the
  PoC's LRC (FIFO), plus LRU and CLOCK for the §VII-B5 comparison.
* :mod:`repro.kernel.fs` — the DAX-aware filesystem layer and fault
  path (Fig. 6).
* :mod:`repro.kernel.nvdc` — the NVDIMM-C driver: slot management, CP
  protocol exchange, explicit coherence.
* :mod:`repro.kernel.pmem` — the emulated-NVDIMM baseline driver.
"""

from repro.kernel.blockdev import BlockDevice, SECTOR_BYTES
from repro.kernel.eviction import (ClockPolicy, EvictionPolicy, LRCPolicy,
                                   LRUPolicy, make_policy)
from repro.kernel.fs import DaxFile, DaxFilesystem
from repro.kernel.memmap import RegionLayout, ReservedRegion
from repro.kernel.nvdc import NvdcDriver
from repro.kernel.pmem import PmemDriver

__all__ = [
    "BlockDevice",
    "SECTOR_BYTES",
    "ClockPolicy",
    "EvictionPolicy",
    "LRCPolicy",
    "LRUPolicy",
    "make_policy",
    "DaxFile",
    "DaxFilesystem",
    "RegionLayout",
    "ReservedRegion",
    "NvdcDriver",
    "PmemDriver",
]
