"""Cache-slot replacement policies.

The PoC uses **LRC** — least-recently *cached*: "when a physical page is
cached in the DRAM cache, the nvdc driver stores the pointer to the
associated PTE in a FIFO manner.  Thus, whenever eviction is needed, the
first entry of the FIFO queue is selected as a victim" (§IV-B).  The
paper notes LRC "is possibly not optimal ... caching/eviction of the
same physical page may occur repeatedly", and reports an in-house
simulation where **LRU** reaches 78.7-99.3 % hit rate on TPC-H as the
cache grows 1 -> 16 GB (§VII-B5).  CLOCK is included as the standard
cheap LRU approximation.

Policies track *slots* (opaque ints).  ``on_access`` is a no-op for LRC
— by definition it ignores recency of use, which is exactly why it
thrashes on TPC-H.
"""

from __future__ import annotations

import abc
from collections import OrderedDict, deque

from repro.errors import KernelError


class EvictionPolicy(abc.ABC):
    """Replacement policy over cached slots."""

    name: str = "base"

    @abc.abstractmethod
    def on_cached(self, slot: int) -> None:
        """A page was just installed into ``slot``."""

    @abc.abstractmethod
    def on_access(self, slot: int) -> None:
        """The page in ``slot`` was touched by the host."""

    @abc.abstractmethod
    def pick_victim(self) -> int:
        """Choose and remove the victim slot."""

    @abc.abstractmethod
    def remove(self, slot: int) -> None:
        """Forget ``slot`` (trim / explicit invalidation)."""

    @abc.abstractmethod
    def __len__(self) -> int: ...


class LRCPolicy(EvictionPolicy):
    """Least-recently cached: plain FIFO of cache insertions."""

    name = "lrc"

    def __init__(self) -> None:
        self._fifo: deque[int] = deque()
        self._members: set[int] = set()

    def on_cached(self, slot: int) -> None:
        if slot in self._members:
            raise KernelError(f"slot {slot} cached twice")
        self._fifo.append(slot)
        self._members.add(slot)

    def on_access(self, slot: int) -> None:
        # LRC ignores use recency entirely — the §IV-B simplification.
        pass

    def pick_victim(self) -> int:
        while self._fifo:
            slot = self._fifo.popleft()
            if slot in self._members:
                self._members.remove(slot)
                return slot
        raise KernelError("no victim available (cache empty)")

    def remove(self, slot: int) -> None:
        self._members.discard(slot)   # lazily dropped from the deque

    def __len__(self) -> int:
        return len(self._members)


class LRUPolicy(EvictionPolicy):
    """True least-recently used."""

    name = "lru"

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def on_cached(self, slot: int) -> None:
        if slot in self._order:
            raise KernelError(f"slot {slot} cached twice")
        self._order[slot] = None

    def on_access(self, slot: int) -> None:
        if slot in self._order:
            self._order.move_to_end(slot)

    def pick_victim(self) -> int:
        if not self._order:
            raise KernelError("no victim available (cache empty)")
        slot, _ = self._order.popitem(last=False)
        return slot

    def remove(self, slot: int) -> None:
        self._order.pop(slot, None)

    def __len__(self) -> int:
        return len(self._order)


class ClockPolicy(EvictionPolicy):
    """CLOCK: one reference bit per slot, rotating hand."""

    name = "clock"

    def __init__(self) -> None:
        self._ring: list[int] = []
        self._referenced: dict[int, bool] = {}
        self._hand = 0

    def on_cached(self, slot: int) -> None:
        if slot in self._referenced:
            raise KernelError(f"slot {slot} cached twice")
        self._ring.append(slot)
        self._referenced[slot] = False

    def on_access(self, slot: int) -> None:
        if slot in self._referenced:
            self._referenced[slot] = True

    def pick_victim(self) -> int:
        if not self._referenced:
            raise KernelError("no victim available (cache empty)")
        while True:
            if self._hand >= len(self._ring):
                self._hand = 0
            slot = self._ring[self._hand]
            if slot not in self._referenced:
                self._ring.pop(self._hand)
                continue
            if self._referenced[slot]:
                self._referenced[slot] = False
                self._hand += 1
                continue
            self._ring.pop(self._hand)
            del self._referenced[slot]
            return slot

    def remove(self, slot: int) -> None:
        self._referenced.pop(slot, None)   # ring entry dropped lazily

    def __len__(self) -> int:
        return len(self._referenced)


def make_policy(name: str) -> EvictionPolicy:
    """Factory by policy name ('lrc' | 'lru' | 'clock')."""
    policies = {"lrc": LRCPolicy, "lru": LRUPolicy, "clock": ClockPolicy}
    if name not in policies:
        raise KernelError(f"unknown eviction policy {name!r}")
    return policies[name]()
