"""The ``memmap=nn$ss`` reserved region and its internal layout.

§IV-B: "we use the memmap parameter to mark the 16GB DRAM address space
as a reserved region so that there are no accesses to the DRAM from
applications and the OS."  Fig. 5 carves the region into:

* the **CP area** — the first 4 KB physical page (driver <-> NVMC
  mailbox);
* the **metadata area** — 16 MB holding the NAND-page <-> DRAM-slot
  mappings (read by the device's power-failure drain, §V-C);
* the **cache slots** — the rest, managed as a fully associative cache
  of 4 KB lines.

The paper's 16 GB module yields "15 GB for cache slots" after layout and
driver reserves; the model reproduces that with a configurable slot
fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.units import PAGE_4K, gb


@dataclass(frozen=True)
class RegionLayout:
    """Byte offsets of the Fig. 5 areas within the reserved region."""

    cp_offset: int
    cp_bytes: int
    metadata_offset: int
    metadata_bytes: int
    slots_offset: int
    slots_bytes: int

    @property
    def num_slots(self) -> int:
        return self.slots_bytes // PAGE_4K


class ReservedRegion:
    """A physically contiguous region excluded from normal OS usage."""

    #: Metadata fraction of the region (§V-C: a 16 MB metadata area for
    #: the 16 GB module = 1/1024; the mappings scale with the slots).
    METADATA_FRACTION = 1024

    def __init__(self, base_paddr: int, size_bytes: int,
                 slot_fraction: float = 15 / 16) -> None:
        metadata_bytes = max(
            PAGE_4K,
            (size_bytes // self.METADATA_FRACTION // PAGE_4K) * PAGE_4K)
        if size_bytes < metadata_bytes + 2 * PAGE_4K:
            raise KernelError(
                f"reserved region of {size_bytes} B too small for layout")
        if base_paddr % PAGE_4K:
            raise KernelError("reserved region must be page-aligned")
        if not 0 < slot_fraction <= 1:
            raise KernelError(f"bad slot fraction {slot_fraction}")
        self.base_paddr = base_paddr
        self.size_bytes = size_bytes
        # The paper's driver uses 15 of the 16 GB for slots; the rest is
        # CP + metadata + driver working space.
        usable = size_bytes - PAGE_4K - metadata_bytes
        slots_bytes = (int(usable * slot_fraction) // PAGE_4K) * PAGE_4K
        self.layout = RegionLayout(
            cp_offset=0, cp_bytes=PAGE_4K,
            metadata_offset=PAGE_4K, metadata_bytes=metadata_bytes,
            slots_offset=PAGE_4K + metadata_bytes,
            slots_bytes=slots_bytes)

    # -- address arithmetic ---------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return self.layout.num_slots

    def slot_paddr(self, slot: int) -> int:
        """Physical byte address of cache slot ``slot``."""
        if not 0 <= slot < self.num_slots:
            raise KernelError(f"slot {slot} out of range "
                              f"(region has {self.num_slots})")
        return self.base_paddr + self.layout.slots_offset + slot * PAGE_4K

    def slot_pfn(self, slot: int) -> int:
        """Page frame number of a cache slot."""
        return self.slot_paddr(slot) // PAGE_4K

    @property
    def cp_paddr(self) -> int:
        return self.base_paddr + self.layout.cp_offset

    @property
    def metadata_paddr(self) -> int:
        return self.base_paddr + self.layout.metadata_offset

    def contains(self, paddr: int) -> bool:
        return self.base_paddr <= paddr < self.base_paddr + self.size_bytes

    @staticmethod
    def kernel_parameter(base_paddr: int, size_bytes: int) -> str:
        """The boot-line string that would reserve this region."""
        return f"memmap={size_bytes}${base_paddr:#x}"


#: The paper's configuration: a 16 GB module reserved in one piece.
def paper_region(base_paddr: int = gb(4)) -> ReservedRegion:
    """The Table-I reserved region: 16 GB with ~15 GB of slots."""
    return ReservedRegion(base_paddr=base_paddr, size_bytes=gb(16))
