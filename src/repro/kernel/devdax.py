"""Device DAX (devdax) — the §V-C future-work path, implemented.

The PoC exposes only fsdax ("the nvdc driver does not implement devdax,
so direct manipulation of persistency from user applications is
currently not supported").  This extension adds the character-device
path: the whole block device is mapped into a process's address space
with no filesystem in between, and the application manages persistency
itself with clflush + sfence — the libpmem programming model.

The fault path is the same driver miss machinery as fsdax, minus the
filesystem's block lookup: the device page *is* the offset page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.mmu import MMU
from repro.errors import KernelError
from repro.kernel.nvdc import NvdcDriver
from repro.units import PAGE_4K


@dataclass
class DevDaxMapping:
    """An established /dev/daxX.Y mapping."""

    vaddr: int
    length: int

    def vaddr_of(self, offset: int) -> int:
        if not 0 <= offset < self.length:
            raise KernelError(f"offset {offset} outside devdax mapping")
        return self.vaddr + offset


class DevDaxFaultHandler:
    """Per-mapping devdax fault callback.

    A class rather than a closure so live mappings survive simulation
    snapshots (closures capture frames, which cannot be serialized).
    """

    def __init__(self, device: "DevDaxDevice", mmu: MMU,
                 vaddr: int) -> None:
        self.device = device
        self.mmu = mmu
        self.vaddr = vaddr

    def __call__(self, fault_vaddr: int) -> bool:
        device = self.device
        device.fault_count += 1
        offset = fault_vaddr - self.vaddr
        page = offset // PAGE_4K
        slot = device.driver.page_to_slot.get(page)
        if slot is None:
            slot, end_ps = device.driver.fault(page, device.now_ps,
                                               for_write=True)
            device.now_ps = max(device.now_ps, end_ps)
        paddr = device.driver.region.slot_paddr(slot)
        self.mmu.map_page((self.vaddr + page * PAGE_4K) // PAGE_4K,
                          paddr // PAGE_4K)
        return True


class DevDaxEvictUnmapper:
    """Snapshot-safe eviction callback: drops the PTE so the next
    access re-faults."""

    def __init__(self, mmu: MMU, vaddr: int, length: int) -> None:
        self.mmu = mmu
        self.vaddr = vaddr
        self.length = length

    def __call__(self, device_page: int) -> None:
        if device_page * PAGE_4K < self.length:
            self.mmu.unmap_page(
                (self.vaddr + device_page * PAGE_4K) // PAGE_4K)


class DevDaxDevice:
    """Character-device front end over the nvdc driver."""

    def __init__(self, driver: NvdcDriver, name: str = "dax0.0") -> None:
        self.driver = driver
        self.name = name
        self.fault_count = 0
        #: Time cursor used by fault handlers (MMU callbacks carry no
        #: timestamp, exactly as in the kernel).
        self.now_ps = 0

    @property
    def size_bytes(self) -> int:
        return self.driver.capacity_bytes

    def mmap(self, mmu: MMU, vaddr: int,
             length: int | None = None) -> DevDaxMapping:
        """Map ``length`` bytes of the device at ``vaddr``.

        Alignment must be 4 KB (real devdax enforces its base alignment
        at open time).
        """
        if vaddr % PAGE_4K:
            raise KernelError("devdax mapping must be page-aligned")
        length = self.size_bytes if length is None else length
        if length % PAGE_4K or length > self.size_bytes:
            raise KernelError(
                f"devdax mapping length {length} invalid for "
                f"{self.size_bytes}-byte device")
        mapping = DevDaxMapping(vaddr=vaddr, length=length)
        mmu.register_fault_handler(
            vaddr, length, DevDaxFaultHandler(self, mmu, vaddr))
        self.driver.on_evict.append(DevDaxEvictUnmapper(mmu, vaddr, length))
        return mapping

    def persist(self, core, vaddr: int, nbytes: int) -> None:
        """The user-space durability ritual: clflush range + sfence.

        After this returns, the range is in the DRAM cache — the §V-C
        persistence domain — and will survive power failure via the
        battery-backed drain.
        """
        core.clflush_range(vaddr, nbytes)
        core.sfence()
        # Pages covered become dirty-tracked so eviction writes them
        # back (the driver cannot see user-space stores otherwise).
        first = vaddr // PAGE_4K
        last = (vaddr + nbytes - 1) // PAGE_4K
        base_pfn = self.driver.region.slot_pfn(0)
        for vpn in range(first, last + 1):
            pte = core.mmu.pte(vpn)
            if pte is None:
                continue
            slot = pte.pfn - base_pfn
            page = self.driver.slot_to_page.get(slot)
            if page is not None:
                self.driver.mark_write(page)
