"""The block-device layer with the fsdax ``device_access`` hook.

§IV-B: the nvdc driver "allocates a block device of 128GB ... to the
/dev directory" and "implements a block device operation named
device_access for supporting fsdax.  When an application accesses a
block on our device, the kernel layer of the DAX-aware filesystem calls
the device_access function to retrieve a virtual address of that
block."

Sectors are 512 B; NAND pages are 4 KB; the driver converts "the block
device sector (aligned to 512 bytes) number to the NAND page
(4KB-aligned) number by assuming a direct mapping."
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import KernelError
from repro.units import PAGE_4K

SECTOR_BYTES = 512
SECTORS_PER_PAGE = PAGE_4K // SECTOR_BYTES


def sector_to_page(sector: int) -> int:
    """Direct-mapped sector -> 4 KB device page conversion (§IV-B)."""
    return sector // SECTORS_PER_PAGE


def page_to_sector(page: int) -> int:
    return page * SECTORS_PER_PAGE


@dataclass(frozen=True)
class DaxMapping:
    """Result of ``device_access``: where the block lives right now."""

    pfn: int                 # page frame number of the backing DRAM page
    paddr: int               # physical byte address of the page
    end_ps: int              # when the mapping became available


class BlockDevice(abc.ABC):
    """A /dev node exposing both block I/O and the DAX hook."""

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes % PAGE_4K:
            raise KernelError("device capacity must be 4 KB aligned")
        self.name = name
        self.capacity_bytes = capacity_bytes

    @property
    def num_sectors(self) -> int:
        return self.capacity_bytes // SECTOR_BYTES

    @property
    def num_pages(self) -> int:
        return self.capacity_bytes // PAGE_4K

    def check_sector(self, sector: int) -> None:
        if not 0 <= sector < self.num_sectors:
            raise KernelError(
                f"{self.name}: sector {sector} beyond device end")

    # -- the fsdax entry point (§II-A / §IV-B) ------------------------------------

    @abc.abstractmethod
    def device_access(self, sector: int, now_ps: int,
                      for_write: bool) -> DaxMapping:
        """Make the page holding ``sector`` byte-addressable.

        Returns the PFN/physical address the filesystem will map into
        the faulting process, plus the simulated completion time (which
        includes any cachefill/writeback the driver had to perform).
        """

    # -- conventional block I/O (used by file copy through the page cache) ----------

    @abc.abstractmethod
    def read_page(self, page: int, now_ps: int) -> tuple[bytes, int]:
        """Read one 4 KB device page."""

    @abc.abstractmethod
    def write_page(self, page: int, data: bytes, now_ps: int) -> int:
        """Write one 4 KB device page."""
