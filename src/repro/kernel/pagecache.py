"""The traditional (non-DAX) mmap path: the page cache.

§II-A motivates DAX by contrast: "although the traditional mmap()
approach allows the application to use pointer-based byte-addressable
loads and stores, accesses to the memory-mapped file actually cause a
4KB page-sized block I/O through the traditional block and filesystem
layers."

This module models that path so the advantage can be *measured*: every
first touch allocates a page-cache page in main memory and copies the
whole 4 KB block into it through the block layer; dirty pages are
written back as whole blocks.  Data therefore exists twice (device +
page cache), and every miss pays a block I/O plus a 4 KB copy that the
DAX path simply does not perform.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import KernelError
from repro.kernel.blockdev import BlockDevice
from repro.units import PAGE_4K


@dataclass
class PageCacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    bytes_copied: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """An LRU page cache over a block device (the non-DAX mmap path)."""

    #: Cost of copying one 4 KB block between device and cache page
    #: (a DRAM-to-DRAM copy at ~10 GB/s plus kernel entry overhead).
    COPY_PS_PER_PAGE = 410_000
    #: Kernel block-layer software path per miss (bio submit/complete).
    BLOCK_LAYER_PS = 1_500_000

    def __init__(self, device: BlockDevice,
                 capacity_pages: int = 4096) -> None:
        if capacity_pages < 1:
            raise KernelError("page cache needs at least one page")
        self.device = device
        self.capacity_pages = capacity_pages
        self._pages: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()
        self.stats = PageCacheStats()

    # -- the mmap read/write path ----------------------------------------------

    def read(self, offset: int, nbytes: int,
             now_ps: int) -> tuple[bytes, int]:
        """Byte read through the page cache; returns (data, end time)."""
        out = bytearray()
        t = now_ps
        while nbytes > 0:
            page = offset // PAGE_4K
            start = offset % PAGE_4K
            chunk = min(nbytes, PAGE_4K - start)
            buf, t = self._page_in(page, t)
            out.extend(buf[start:start + chunk])
            offset += chunk
            nbytes -= chunk
        return bytes(out), t

    def write(self, offset: int, data: bytes, now_ps: int) -> int:
        """Byte write through the page cache (write-back)."""
        t = now_ps
        view = 0
        while view < len(data):
            page = offset // PAGE_4K
            start = offset % PAGE_4K
            chunk = min(len(data) - view, PAGE_4K - start)
            buf, t = self._page_in(page, t)
            buf[start:start + chunk] = data[view:view + chunk]
            self._dirty.add(page)
            offset += chunk
            view += chunk
        return t

    def sync(self, now_ps: int) -> int:
        """fsync: write every dirty page back through the block layer."""
        t = now_ps
        for page in sorted(self._dirty):
            t = self._writeback(page, t)
        self._dirty.clear()
        return t

    # -- internals -------------------------------------------------------------------

    def _page_in(self, page: int, now_ps: int) -> tuple[bytearray, int]:
        buf = self._pages.get(page)
        if buf is not None:
            self.stats.hits += 1
            self._pages.move_to_end(page)
            return buf, now_ps
        self.stats.misses += 1
        data, t = self.device.read_page(page, now_ps
                                        + self.BLOCK_LAYER_PS)
        t += self.COPY_PS_PER_PAGE
        self.stats.bytes_copied += PAGE_4K
        buf = bytearray(data)
        self._pages[page] = buf
        if len(self._pages) > self.capacity_pages:
            victim, victim_buf = self._pages.popitem(last=False)
            if victim in self._dirty:
                self._dirty.discard(victim)
                t = self.device.write_page(victim, bytes(victim_buf),
                                           t + self.BLOCK_LAYER_PS)
                t += self.COPY_PS_PER_PAGE
                self.stats.writebacks += 1
                self.stats.bytes_copied += PAGE_4K
        return buf, t

    def _writeback(self, page: int, now_ps: int) -> int:
        buf = self._pages.get(page)
        if buf is None:
            return now_ps
        t = self.device.write_page(page, bytes(buf),
                                   now_ps + self.BLOCK_LAYER_PS)
        self.stats.writebacks += 1
        self.stats.bytes_copied += PAGE_4K
        return t + self.COPY_PS_PER_PAGE

    @property
    def cached_pages(self) -> int:
        return len(self._pages)
