"""DDR4 substrate: timing spec, command encoding, devices, shared bus.

This package models DDR4 at *command* granularity — precise enough to
reproduce the paper's shared-bus arbitration problem (two masters, no
handshake) and its tRFC-based solution, without simulating individual
data beats.

Modules:

* :mod:`repro.ddr.spec` — JEDEC speed grades and timing parameters.
* :mod:`repro.ddr.commands` — command set and CA-pin state encoding.
* :mod:`repro.ddr.bank` — per-bank state machine with timing checks.
* :mod:`repro.ddr.device` — a DRAM device (banks + data store + refresh).
* :mod:`repro.ddr.bus` — the shared CA/DQ bus with collision detection.
* :mod:`repro.ddr.controller` — command-sequence generation for transfers.
* :mod:`repro.ddr.imc` — the host integrated memory controller and the
  refresh timeline that the whole NVDIMM-C mechanism hangs off.
"""

from repro.ddr.spec import DDR4Spec, SpeedGrade, DDR4_1600, DDR4_2400
from repro.ddr.commands import CAState, Command, CommandKind
from repro.ddr.bank import Bank, BankState
from repro.ddr.device import DRAMDevice
from repro.ddr.bus import BusMaster, SharedBus
from repro.ddr.controller import DDR4Controller
from repro.ddr.imc import IntegratedMemoryController, RefreshTimeline

__all__ = [
    "DDR4Spec",
    "SpeedGrade",
    "DDR4_1600",
    "DDR4_2400",
    "CAState",
    "Command",
    "CommandKind",
    "Bank",
    "BankState",
    "DRAMDevice",
    "BusMaster",
    "SharedBus",
    "DDR4Controller",
    "IntegratedMemoryController",
    "RefreshTimeline",
]
