"""A DRAM device: address decode, banks, data store, refresh machinery.

The device is *passive*: bus masters (the host iMC or the NVMC's DDR4
controller) issue :class:`~repro.ddr.commands.Command` objects to it via
the shared bus, and the device validates them against its bank state
machines, moves data, and tracks refresh progress.

Data is stored sparsely — a ``dict`` of row buffers allocated on first
write — so a 16 GB DRAM cache costs memory proportional to its touched
footprint only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ddr.bank import Bank, BankState
from repro.ddr.commands import Command, CommandKind
from repro.ddr.spec import DDR4Spec
from repro.errors import ProtocolError
from repro.sim.snapshot import SnapshotMixin


@dataclass
class AddressParts:
    """Decomposition of a flat byte address into DRAM coordinates."""

    bank: int
    row: int
    column_byte: int


class DRAMDevice(SnapshotMixin):
    """One rank of DDR4 DRAM behind the shared bus.

    Address mapping is row-interleaved across banks (consecutive rows of
    the flat address space rotate through banks), which is close enough
    to real channel interleave for the protocol experiments.
    """

    def __init__(self, spec: DDR4Spec, capacity_bytes: int | None = None,
                 name: str = "dram") -> None:
        spec.validate()
        self.spec = spec
        self.name = name
        self.banks = [Bank(i, spec) for i in range(spec.total_banks)]
        self.capacity_bytes = capacity_bytes or (
            spec.total_banks * spec.rows_per_bank * spec.row_size_bytes)
        self._rows: dict[tuple[int, int], bytearray] = {}
        # Rolling window of recent ACT times for the tFAW check
        # (rank-wide: at most four activates per tFAW, JESD79-4).
        self._act_history: list[int] = []
        self.refresh_row_counter = 0
        self.refreshes_done = 0
        self.in_self_refresh = False
        self.refresh_end_ps = -1

    # -- address mapping ------------------------------------------------------

    def decode(self, addr: int) -> AddressParts:
        """Flat byte address -> (bank, row, column byte offset)."""
        if not 0 <= addr < self.capacity_bytes:
            raise ProtocolError(
                f"{self.name}: address {addr:#x} out of range "
                f"(capacity {self.capacity_bytes:#x})")
        row_global, column_byte = divmod(addr, self.spec.row_size_bytes)
        bank = row_global % self.spec.total_banks
        row = row_global // self.spec.total_banks
        return AddressParts(bank=bank, row=row, column_byte=column_byte)

    # -- command execution -----------------------------------------------------

    def execute(self, command: Command, now_ps: int,
                data: bytes | None = None) -> bytes | None:
        """Apply a command; returns read data for RD/RDA.

        The caller (bus) has already arbitrated the command slot; this
        method enforces bank-level legality and timing.
        """
        kind = command.kind
        if self.in_self_refresh and kind is not CommandKind.SRX:
            raise ProtocolError(
                f"{self.name}: {kind.name} while in self-refresh")

        if kind in (CommandKind.DES, CommandKind.NOP, CommandKind.ZQCL,
                    CommandKind.MRS):
            return None
        if kind is CommandKind.ACT:
            self._check_tfaw(now_ps)
            self.banks[command.bank].activate(command.row, now_ps)
            self._act_history.append(now_ps)
            if len(self._act_history) > 4:
                self._act_history.pop(0)
            return None
        if kind in (CommandKind.RD, CommandKind.RDA):
            bank = self.banks[command.bank]
            bank.read(command.row, now_ps)
            out = self._burst_read(command)
            if kind is CommandKind.RDA:
                bank.state = BankState.IDLE
                bank.open_row = -1
                bank.last_pre_ps = now_ps
            return out
        if kind in (CommandKind.WR, CommandKind.WRA):
            if data is None or len(data) != self.spec.burst_bytes:
                raise ProtocolError(
                    f"{self.name}: WR needs exactly one burst of "
                    f"{self.spec.burst_bytes} bytes")
            bank = self.banks[command.bank]
            bank.write(command.row, now_ps)
            self._burst_write(command, data)
            if kind is CommandKind.WRA:
                bank.state = BankState.IDLE
                bank.open_row = -1
                bank.last_pre_ps = now_ps
            return None
        if kind is CommandKind.PRE:
            self.banks[command.bank].precharge(now_ps)
            return None
        if kind is CommandKind.PREA:
            for bank in self.banks:
                bank.precharge(now_ps)
            return None
        if kind is CommandKind.REF:
            self._begin_refresh(now_ps)
            return None
        if kind is CommandKind.SRE:
            self._begin_refresh(now_ps)
            self.in_self_refresh = True
            return None
        if kind is CommandKind.SRX:
            self.in_self_refresh = False
            return None
        raise ProtocolError(f"{self.name}: unhandled command {command}")

    def _check_tfaw(self, now_ps: int) -> None:
        from repro.errors import TimingViolationError
        if (len(self._act_history) == 4
                and now_ps - self._act_history[0] < self.spec.tfaw_ps):
            raise TimingViolationError(
                f"{self.name}: fifth ACT within tFAW "
                f"({now_ps - self._act_history[0]} ps since the fourth-"
                f"last, tFAW={self.spec.tfaw_ps} ps)")

    def _begin_refresh(self, now_ps: int) -> None:
        for bank in self.banks:
            bank.begin_refresh(now_ps)
        self.refresh_end_ps = now_ps + self.spec.trfc_device_ps
        self.refresh_row_counter = (
            (self.refresh_row_counter + 1) % 8192)
        self.refreshes_done += 1

    def complete_refresh(self, now_ps: int) -> None:
        """Called tRFC_device after REF: banks become usable again."""
        for bank in self.banks:
            if bank.state is BankState.REFRESHING:
                bank.end_refresh(now_ps)

    def maybe_complete_refresh(self, now_ps: int) -> None:
        """Idempotent refresh completion for pull-style callers.

        Completion is timestamped at the actual refresh end, not at the
        (possibly much later) observation time, so post-refresh timing
        references are accurate.
        """
        if (self.refresh_end_ps >= 0 and now_ps >= self.refresh_end_ps
                and self.banks[0].state is BankState.REFRESHING):
            self.complete_refresh(self.refresh_end_ps)

    # -- data store --------------------------------------------------------------

    def _row_buffer(self, bank: int, row: int) -> bytearray:
        key = (bank, row)
        buf = self._rows.get(key)
        if buf is None:
            buf = bytearray(self.spec.row_size_bytes)
            self._rows[key] = buf
        return buf

    def _burst_read(self, command: Command) -> bytes:
        buf = self._row_buffer(command.bank, command.row)
        start = command.column * self.spec.burst_bytes
        return bytes(buf[start:start + self.spec.burst_bytes])

    def _burst_write(self, command: Command, data: bytes) -> None:
        buf = self._row_buffer(command.bank, command.row)
        start = command.column * self.spec.burst_bytes
        buf[start:start + self.spec.burst_bytes] = data

    # -- backdoor access (verification / power-failure drain) ---------------------

    def peek(self, addr: int, nbytes: int) -> bytes:
        """Read bytes bypassing the protocol (test/verification aid)."""
        out = bytearray()
        while nbytes > 0:
            parts = self.decode(addr)
            buf = self._rows.get((parts.bank, parts.row))
            chunk = min(nbytes, self.spec.row_size_bytes - parts.column_byte)
            if buf is None:
                out.extend(b"\x00" * chunk)
            else:
                out.extend(buf[parts.column_byte:parts.column_byte + chunk])
            addr += chunk
            nbytes -= chunk
        return bytes(out)

    def poke(self, addr: int, data: bytes) -> None:
        """Write bytes bypassing the protocol (test/initialisation aid)."""
        offset = 0
        while offset < len(data):
            parts = self.decode(addr + offset)
            buf = self._row_buffer(parts.bank, parts.row)
            chunk = min(len(data) - offset,
                        self.spec.row_size_bytes - parts.column_byte)
            buf[parts.column_byte:parts.column_byte + chunk] = (
                data[offset:offset + chunk])
            offset += chunk

    @property
    def touched_rows(self) -> int:
        """Number of row buffers materialised by writes."""
        return len(self._rows)
