"""Thermal refresh throttling (§II-B).

"Since the leakage of cells is accelerated as the cell temperature
increases, tREFI is adjusted to 3.9 us above 85°C."  For NVDIMM-C this
cuts both ways: a hot module refreshes twice as often, which *doubles
the device-side windows* (the Fig. 12 effect, for free) while costing
the host the Fig. 13 tREFI2 penalty (~8 %).

The model is the JEDEC two-step: 1x refresh up to 85°C, 2x above
(extended-temperature range up to 95°C), out-of-spec beyond.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ddr.spec import DDR4Spec
from repro.errors import ConfigError
from repro.units import us

#: JEDEC normal / extended temperature range bounds (°C).
NORMAL_MAX_C = 85
EXTENDED_MAX_C = 95


def trefi_for_temperature(temp_c: float,
                          base_trefi_ps: int = us(7.8)) -> int:
    """The refresh interval the iMC must program at ``temp_c``."""
    if temp_c > EXTENDED_MAX_C:
        raise ConfigError(
            f"{temp_c}°C exceeds the extended temperature range "
            f"({EXTENDED_MAX_C}°C): the device is out of spec")
    if temp_c > NORMAL_MAX_C:
        return base_trefi_ps // 2
    return base_trefi_ps


@dataclass(frozen=True)
class ThermalOperatingPoint:
    """NVDIMM-C behaviour at one module temperature."""

    temp_c: float
    trefi_ps: int
    device_windows_per_sec: float
    device_ceiling_mb_s: float      # one 4 KB page per window (MiB/s)

    @property
    def doubled(self) -> bool:
        return self.trefi_ps < us(7.8)


def operating_point(temp_c: float,
                    spec: DDR4Spec | None = None) -> ThermalOperatingPoint:
    """Device-side consequences of the module temperature."""
    from repro.ddr.spec import NVDIMMC_1600
    from repro.units import PAGE_4K
    base = (spec or NVDIMMC_1600).trefi_ps
    trefi = trefi_for_temperature(temp_c, base)
    windows = 1e12 / trefi
    return ThermalOperatingPoint(
        temp_c=temp_c, trefi_ps=trefi,
        device_windows_per_sec=windows,
        device_ceiling_mb_s=PAGE_4K * windows / 2**20)
