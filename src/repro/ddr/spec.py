"""DDR4 speed grades and JEDEC timing parameters.

Values follow the JEDEC DDR4 SDRAM specification (JESD79-4) for the
parameters the paper exercises.  Times are stored in integer picoseconds
(see :mod:`repro.units`); parameters natively specified in clocks are
converted with the grade's clock period.

The two parameters at the centre of the paper:

* ``tRFC`` — refresh cycle time; 350 ns for an 8 Gb device.  NVDIMM-C
  reprograms the *host's* tRFC register to 1250 ns (1000 device clocks at
  DDR4-1600), creating a ~900 ns window after the real refresh during
  which the device-side controller owns the bus (§IV-A).
* ``tREFI`` — average refresh interval; 7.8 µs normally, halved above
  85 °C, and reprogrammable by BIOS/kernel on Intel platforms (§II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from repro.errors import ConfigError
from repro.units import ns, us


@dataclass(frozen=True)
class SpeedGrade:
    """A DDR4 speed bin: data rate and the core latency triplet."""

    name: str
    data_rate_mtps: int      # mega-transfers per second (DDR: 2 per clock)
    cl_clk: int              # CAS latency, clocks
    trcd_clk: int            # ACT-to-RD/WR, clocks
    trp_clk: int             # PRE-to-ACT, clocks

    @cached_property
    def clock_ps(self) -> int:
        """Device clock period in picoseconds (clock = data rate / 2)."""
        return round(2_000_000 / self.data_rate_mtps) * 1  # ps

    @cached_property
    def half_clock_ps(self) -> int:
        """Half clock period: one DDR transfer slot on the CA/DQ pins."""
        return self.clock_ps // 2


#: JEDEC DDR4-1600K (the paper's PoC runs at 1600 MT/s, Table I).
GRADE_1600 = SpeedGrade("DDR4-1600", 1600, cl_clk=11, trcd_clk=11, trp_clk=11)

#: JEDEC DDR4-2400R (used for the §III-A timing-budget discussion).
GRADE_2400 = SpeedGrade("DDR4-2400", 2400, cl_clk=16, trcd_clk=16, trp_clk=16)

#: tRFC by device density, JESD79-4 table (ns).
TRFC_BY_DENSITY_NS = {
    "2Gb": 160,
    "4Gb": 260,
    "8Gb": 350,
    "16Gb": 550,
}


@dataclass(frozen=True)
class DDR4Spec:
    """Complete timing/geometry description of one DDR4 configuration.

    All ``*_ps`` fields are picoseconds.  ``trfc_ps`` is the value
    *programmed into the memory controller* — for NVDIMM-C this is the
    extended 1250 ns, while ``trfc_device_ps`` remains the JEDEC value the
    DRAM actually needs (350 ns for 8 Gb).  The difference is the paper's
    device-access window.

    Derived timings are ``cached_property``s: the dataclass is frozen, so
    each value is computed once per instance and then read from the
    instance ``__dict__`` — these accessors sit under every per-command
    and per-transfer hot path in the simulator.  ``replace``-based
    copies (``with_extended_trfc`` / ``with_trefi``) start with a fresh
    cache.
    """

    grade: SpeedGrade
    density: str = "8Gb"
    ranks: int = 1
    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 1 << 17
    row_size_bytes: int = 8192          # 8 KB page per rank (x64 DIMM)
    burst_length: int = 8               # BL8: 64 B per column burst (x64)

    trefi_ps: int = us(7.8)             # average refresh interval
    trfc_ps: int = ns(350)              # programmed refresh cycle time
    tras_clk: int = 28                  # ACT-to-PRE minimum
    twr_clk: int = 12                   # write recovery
    tccd_clk: int = 4                   # column-to-column (tCCD_L)
    trrd_clk: int = 5                   # ACT-to-ACT, different banks
    tfaw_clk: int = 28                  # four-activate window
    cwl_clk: int = 9                    # CAS write latency

    @cached_property
    def clock_ps(self) -> int:
        return self.grade.clock_ps

    @cached_property
    def trcd_ps(self) -> int:
        return self.grade.trcd_clk * self.clock_ps

    @cached_property
    def tcl_ps(self) -> int:
        return self.grade.cl_clk * self.clock_ps

    @cached_property
    def trp_ps(self) -> int:
        return self.grade.trp_clk * self.clock_ps

    @cached_property
    def tras_ps(self) -> int:
        return self.tras_clk * self.clock_ps

    @cached_property
    def twr_ps(self) -> int:
        return self.twr_clk * self.clock_ps

    @cached_property
    def tccd_ps(self) -> int:
        return self.tccd_clk * self.clock_ps

    @cached_property
    def cwl_ps(self) -> int:
        return self.cwl_clk * self.clock_ps

    @cached_property
    def trrd_ps(self) -> int:
        """ACT-to-ACT spacing across banks."""
        return self.trrd_clk * self.clock_ps

    @cached_property
    def tfaw_ps(self) -> int:
        """Four-activate window: at most 4 ACTs per rank within it."""
        return self.tfaw_clk * self.clock_ps

    @cached_property
    def trfc_device_ps(self) -> int:
        """The JEDEC tRFC the DRAM die actually requires (by density)."""
        return ns(TRFC_BY_DENSITY_NS[self.density])

    @cached_property
    def extra_trfc_ps(self) -> int:
        """Device-access window: programmed tRFC minus the JEDEC tRFC.

        This is the paper's "additional tRFC time" of §IV-A during which
        the NVMC may drive the shared bus.  Zero on a stock system.
        """
        return max(0, self.trfc_ps - self.trfc_device_ps)

    @cached_property
    def burst_time_ps(self) -> int:
        """Data-bus occupancy of one BL8 burst: BL/2 clocks."""
        return (self.burst_length // 2) * self.clock_ps

    @cached_property
    def burst_bytes(self) -> int:
        """Bytes moved per column burst on a x64 DIMM (8 B * BL)."""
        return 8 * self.burst_length

    @cached_property
    def total_banks(self) -> int:
        return self.ranks * self.bank_groups * self.banks_per_group

    @cached_property
    def read_latency_ps(self) -> int:
        """Closed-row read latency: tRCD + tCL (the §III-A budget)."""
        return self.trcd_ps + self.tcl_ps

    def validate(self) -> None:
        """Raise :class:`ConfigError` on an inconsistent configuration."""
        if self.density not in TRFC_BY_DENSITY_NS:
            raise ConfigError(f"unknown DRAM density {self.density!r}")
        if self.trfc_ps < self.trfc_device_ps:
            raise ConfigError(
                "programmed tRFC is below the JEDEC device requirement: "
                f"{self.trfc_ps} < {self.trfc_device_ps}")
        if self.trefi_ps <= self.trfc_ps:
            raise ConfigError(
                "tREFI must exceed tRFC, otherwise refresh starves the bus")
        if self.burst_length not in (4, 8):
            raise ConfigError(f"unsupported burst length {self.burst_length}")

    def with_extended_trfc(self, trfc_ps: int) -> "DDR4Spec":
        """Copy of this spec with a reprogrammed controller tRFC."""
        spec = replace(self, trfc_ps=trfc_ps)
        spec.validate()
        return spec

    def with_trefi(self, trefi_ps: int) -> "DDR4Spec":
        """Copy of this spec with a reprogrammed refresh interval."""
        spec = replace(self, trefi_ps=trefi_ps)
        spec.validate()
        return spec


#: Stock DDR4-1600, 8 Gb devices — the paper's main-memory RDIMMs.
DDR4_1600 = DDR4Spec(grade=GRADE_1600)

#: Stock DDR4-2400 — used in the §III-A design-space discussion.
DDR4_2400 = DDR4Spec(grade=GRADE_2400)

#: NVDIMM-C channel configuration: tRFC extended to 1000 device clocks
#: (1.25 us at DDR4-1600), i.e. JEDEC 350 ns + a 900 ns device window.
NVDIMMC_1600 = DDR4_1600.with_extended_trfc(ns(1250))
