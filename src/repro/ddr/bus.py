"""The shared CA/DQ memory bus with multi-master collision detection.

This is where the paper's central hazard lives.  On NVDIMM-C the DRAM
cache's command/address and data pins are wired to *both* the host iMC
and the device-side NVMC (§III-B), and standard DDR4 offers no
request/grant handshake, so nothing in the protocol prevents the two
masters from driving the bus in the same command slot.

The bus model reserves:

* a CA-bus slot of one clock per command, and
* a DQ-bus window per data command (RD: ``[t+tCL, t+tCL+burst)``;
  WR: ``[t+tCWL, t+tCWL+burst)``),

and flags any overlap between *different* masters as a collision —
either raising :class:`~repro.errors.BusCollisionError` (default) or
recording it, which the validation experiments use to count how often an
unserialised design would corrupt the channel.

Snoopers (the NVMC's refresh detector) observe the raw CA pin state of
every issued command, exactly as the FPGA taps the routed CA wires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.ddr.commands import CAState, Command, CommandKind, DATA_COMMANDS
from repro.ddr.device import DRAMDevice
from repro.ddr.spec import DDR4Spec
from repro.errors import BusCollisionError, ProtocolError
from repro.sim.trace import Tracer, default_tracer, next_owner


class BusMaster(Protocol):
    """Anything that issues commands: needs only a stable ``name``."""

    name: str


@dataclass(frozen=True)
class Reservation:
    """A half-open occupancy interval on one of the buses."""

    master: str
    start_ps: int
    end_ps: int
    command: Command

    def overlaps(self, start_ps: int, end_ps: int) -> bool:
        return self.start_ps < end_ps and start_ps < self.end_ps


@dataclass(frozen=True)
class Collision:
    """A detected simultaneous drive of one bus by two masters."""

    bus: str                  # "CA" or "DQ"
    time_ps: int
    first: Reservation
    second_master: str
    second_command: Command


Snooper = Callable[[int, CAState], None]


class SharedBus:
    """One memory channel shared by the host iMC and the NVMC."""

    #: Reservations older than this are pruned (nothing checks that far back).
    PRUNE_HORIZON_PS = 10_000_000  # 10 us

    def __init__(self, spec: DDR4Spec, device: DRAMDevice,
                 raise_on_collision: bool = True,
                 tracer: Tracer | None = None) -> None:
        self.spec = spec
        self.device = device
        self.raise_on_collision = raise_on_collision
        self.tracer = tracer if tracer is not None else default_tracer()
        self.trace_owner = next_owner(f"bus.{device.name}")
        self._ca: list[Reservation] = []
        self._dq: list[Reservation] = []
        self.collisions: list[Collision] = []
        self.commands_issued = 0
        self._snoopers: list[Snooper] = []

    # -- snooping ---------------------------------------------------------------

    def add_snooper(self, snooper: Snooper) -> None:
        """Register an observer of every CA-bus state (the FPGA tap)."""
        self._snoopers.append(snooper)

    # -- issue -------------------------------------------------------------------

    def issue(self, master: str, command: Command, now_ps: int,
              data: bytes | None = None) -> bytes | None:
        """Drive ``command`` onto the bus at ``now_ps``.

        Returns read data for RD/RDA.  Collisions are raised or recorded
        according to ``raise_on_collision``; a *recorded* collision still
        lets the command through so aging experiments can keep running
        and count every corruption opportunity.
        """
        self.device.maybe_complete_refresh(now_ps)

        ca_end = now_ps + self.spec.clock_ps
        self._reserve(self._ca, "CA", master, command, now_ps, ca_end)

        dq_start = dq_end = None
        if command.kind in DATA_COMMANDS:
            if command.kind in (CommandKind.RD, CommandKind.RDA):
                dq_start = now_ps + self.spec.tcl_ps
            else:
                dq_start = now_ps + self.spec.cwl_ps
            dq_end = dq_start + self.spec.burst_time_ps
            self._reserve(self._dq, "DQ", master, command, dq_start, dq_end)

        self.commands_issued += 1
        if self.tracer.enabled:
            self._trace_command(master, command, now_ps, ca_end,
                                dq_start, dq_end)
        self._prune(now_ps)
        result = self.device.execute(command, now_ps, data=data)

        # Snoopers run after the device state change: a detector-armed
        # transfer (later in simulated time) must observe the refresh
        # already in progress, exactly as on real silicon.
        for snooper in self._snoopers:
            snooper(now_ps, command.ca_state)
        return result

    # -- internals ------------------------------------------------------------------

    def _trace_command(self, master: str, command: Command, now_ps: int,
                       ca_end: int, dq_start: int | None,
                       dq_end: int | None) -> None:
        """Emit a structured ``ddr.cmd`` record.

        The record is self-describing for the ``repro.check`` sanitizers:
        the bus occupancy intervals it just reserved, and — on REF — the
        extended-tRFC device window the refresh opens, so observers need
        no spec of their own.
        """
        fields: dict[str, object] = {
            "master": master,
            "owner": self.trace_owner,
            "kind": command.kind.name,
            "bank": command.bank,
            "ca_end": ca_end,
        }
        if dq_start is not None:
            fields["dq_start"] = dq_start
            fields["dq_end"] = dq_end
        if command.kind is CommandKind.REF:
            fields["win_start"] = now_ps + self.spec.trfc_device_ps
            fields["win_end"] = now_ps + self.spec.trfc_ps
        self.tracer.emit(now_ps, "ddr.cmd", str(command), **fields)

    def _reserve(self, lane: list[Reservation], bus_name: str, master: str,
                 command: Command, start_ps: int, end_ps: int) -> None:
        for existing in lane:
            if existing.master != master and existing.overlaps(start_ps, end_ps):
                collision = Collision(bus_name, start_ps, existing,
                                      master, command)
                self.collisions.append(collision)
                self.tracer.emit(start_ps, "ddr.collision",
                                 f"{bus_name} collision",
                                 owner=self.trace_owner,
                                 first=existing.master, second=master)
                if self.raise_on_collision:
                    raise BusCollisionError(
                        f"{bus_name} bus collision at {start_ps} ps: "
                        f"{existing.master} ({existing.command}) vs "
                        f"{master} ({command})",
                        time_ps=start_ps,
                        masters=(existing.master, master))
            elif existing.master == master and existing.overlaps(start_ps,
                                                                 end_ps):
                raise ProtocolError(
                    f"{master} overlapped its own {bus_name} slot at "
                    f"{start_ps} ps ({existing.command} vs {command})")
        lane.append(Reservation(master, start_ps, end_ps, command))

    def _prune(self, now_ps: int) -> None:
        horizon = now_ps - self.PRUNE_HORIZON_PS
        if self._ca and self._ca[0].end_ps < horizon:
            self._ca = [r for r in self._ca if r.end_ps >= horizon]
        if self._dq and self._dq[0].end_ps < horizon:
            self._dq = [r for r in self._dq if r.end_ps >= horizon]

    @property
    def collision_count(self) -> int:
        return len(self.collisions)
