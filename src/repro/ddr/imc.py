"""The host integrated memory controller (iMC) and the refresh timeline.

Two responsibilities:

* **Refresh scheduling.**  The iMC issues PREA + REF every tREFI and then
  keeps off the bus for its *programmed* tRFC (§II-B).  With NVDIMM-C the
  programmed tRFC is extended past the JEDEC device requirement, and the
  gap — ``[REF + tRFC_device, REF + tRFC_programmed)`` — is the window in
  which the NVMC may drive the shared bus.  :class:`RefreshTimeline`
  captures this arithmetic in one deterministic object shared by the
  command-accurate simulation and the fast transaction-level models, so a
  tREFI/tRFC sweep moves every layer consistently.

* **Host accesses.**  CPU loads/stores that miss the LLC arrive here; the
  iMC stalls them while a refresh owns the channel, otherwise hands them
  to its embedded :class:`~repro.ddr.controller.DDR4Controller`.

The iMC also models the **write pending queue** (WPQ), the uncore buffer
that defines the platform persistence domain in §V-C.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial

from repro.ddr.bus import SharedBus
from repro.ddr.controller import DDR4Controller
from repro.ddr.spec import DDR4Spec
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.snapshot import SnapshotMixin
from repro.sim.trace import Tracer, default_tracer, next_owner


@dataclass(frozen=True)
class RefreshWindow:
    """One device-access opportunity behind a REFRESH command."""

    index: int
    refresh_ps: int     # REF command time
    start_ps: int       # REF + tRFC_device: DRAM is usable again
    end_ps: int         # REF + tRFC_programmed: host resumes

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps


class RefreshTimeline:
    """Deterministic arithmetic over the periodic refresh schedule.

    REF commands are issued at ``offset + k * tREFI``; the host is blocked
    ``[REF - tRP, REF + tRFC_programmed)`` (PREA precedes REF, Fig. 2b);
    the device window is ``[REF + tRFC_device, REF + tRFC_programmed)``.
    """

    def __init__(self, spec: DDR4Spec, offset_ps: int | None = None) -> None:
        spec.validate()
        self.spec = spec
        self.trefi_ps = spec.trefi_ps
        self.trfc_programmed_ps = spec.trfc_ps
        self.trfc_device_ps = spec.trfc_device_ps
        self.offset_ps = spec.trefi_ps if offset_ps is None else offset_ps

    def refresh_time(self, index: int) -> int:
        """REF command time of refresh ``index`` (0-based)."""
        return self.offset_ps + index * self.trefi_ps

    def window(self, index: int) -> RefreshWindow:
        """The device-access window behind refresh ``index``."""
        ref = self.refresh_time(index)
        return RefreshWindow(index, ref,
                             ref + self.trfc_device_ps,
                             ref + self.trfc_programmed_ps)

    def index_at_or_after(self, time_ps: int) -> int:
        """Smallest refresh index whose REF time is >= ``time_ps``."""
        if time_ps <= self.offset_ps:
            return 0
        return -(-(time_ps - self.offset_ps) // self.trefi_ps)

    def next_window(self, time_ps: int) -> RefreshWindow:
        """First window whose usable interval starts at or after ``time_ps``.

        If ``time_ps`` falls inside a window's usable interval, that
        window is *not* returned — callers who can still use the current
        window should call :meth:`window_containing` first.  This mirrors
        the NVMC firmware, which arms a transfer only for a window it can
        use from its very start.
        """
        index = self.index_at_or_after(
            time_ps - self.trfc_device_ps)
        ref = self.offset_ps + index * self.trefi_ps
        if ref + self.trfc_device_ps < time_ps:
            index += 1
            ref += self.trefi_ps
        return RefreshWindow(index, ref,
                             ref + self.trfc_device_ps,
                             ref + self.trfc_programmed_ps)

    def window_containing(self, time_ps: int) -> RefreshWindow | None:
        """The window whose usable interval contains ``time_ps``, if any."""
        if self.trfc_programmed_ps <= self.trfc_device_ps:
            return None
        index = (time_ps - self.offset_ps) // self.trefi_ps
        if index < 0:
            return None
        window = self.window(index)
        if window.start_ps <= time_ps < window.end_ps:
            return window
        return None

    def host_blocked_until(self, time_ps: int) -> int:
        """If the host is refresh-blocked at ``time_ps``, when it frees.

        Returns ``time_ps`` itself when the host may issue immediately.
        The blocked span covers the PREA lead-in as well.
        """
        index = (time_ps + self.spec.trp_ps - self.offset_ps) // self.trefi_ps
        for i in (index, index + 1):
            if i < 0:
                continue
            ref = self.refresh_time(i)
            if ref - self.spec.trp_ps <= time_ps < ref + self.trfc_programmed_ps:
                return ref + self.trfc_programmed_ps
        return time_ps

    @property
    def blocked_fraction(self) -> float:
        """Fraction of channel time the host loses to refresh."""
        return (self.trfc_programmed_ps + self.spec.trp_ps) / self.trefi_ps

    @property
    def window_duration_ps(self) -> int:
        """Usable device window length per refresh."""
        return max(0, self.trfc_programmed_ps - self.trfc_device_ps)


class WritePendingQueue:
    """The iMC's WPQ: last stop before data reaches the DRAM pins.

    On Intel platforms the platform persistence domain (ADR) flushes the
    WPQ on power failure; §V-C explains why NVDIMM-C's effective domain
    shrinks to the DRAM cache because the device drain runs concurrently
    with the platform flush.  The model keeps the queue contents visible
    so the power-failure experiment can reproduce that race.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self.entries: deque[tuple[int, bytes]] = deque()
        self.total_enqueued = 0
        self.total_drained = 0

    def enqueue(self, addr: int, data: bytes) -> list[tuple[int, bytes]]:
        """Add a write; returns entries force-drained by capacity."""
        drained: list[tuple[int, bytes]] = []
        while len(self.entries) >= self.capacity:
            drained.append(self.entries.popleft())
            self.total_drained += 1
        self.entries.append((addr, data))
        self.total_enqueued += 1
        return drained

    def drain(self) -> list[tuple[int, bytes]]:
        """Flush everything (sfence/ADR); returns the drained writes."""
        drained = list(self.entries)
        self.total_drained += len(drained)
        self.entries.clear()
        return drained

    def __len__(self) -> int:
        return len(self.entries)


class IntegratedMemoryController(SnapshotMixin):
    """Host-side master on the shared bus.

    ``start_refresh_process`` spawns the periodic PREA+REF loop on a DES
    engine; experiments that only need the arithmetic use ``timeline``
    directly.  The timing registers are mutable before the process starts
    (the BIOS path) — reprogramming mid-run is rejected, matching how the
    real registers are applied at memory-training time.
    """

    def __init__(self, engine: Engine, spec: DDR4Spec, bus: SharedBus,
                 name: str = "iMC", tracer: Tracer | None = None) -> None:
        self.engine = engine
        self.spec = spec
        self.bus = bus
        self.name = name
        self.tracer = tracer if tracer is not None else default_tracer()
        self.trace_owner = next_owner(name)
        self.controller = DDR4Controller(name, spec, bus)
        self.timeline = RefreshTimeline(spec)
        self.wpq = WritePendingQueue()
        self.refreshes_issued = 0
        self._refresh_process: _RefreshScheduler | None = None

    # -- BIOS / kernel-programmable registers (§II-B) ------------------------------

    def program_timing(self, trfc_ps: int | None = None,
                       trefi_ps: int | None = None) -> None:
        """Reprogram tRFC/tREFI registers (boot-time only)."""
        if self._refresh_process is not None:
            raise ConfigError(
                "timing registers are applied at memory training; "
                "stop the refresh process before reprogramming")
        spec = self.spec
        if trfc_ps is not None:
            spec = spec.with_extended_trfc(trfc_ps)
        if trefi_ps is not None:
            spec = spec.with_trefi(trefi_ps)
        self.spec = spec
        self.controller.spec = spec
        self.timeline = RefreshTimeline(spec)

    # -- refresh loop ------------------------------------------------------------------

    #: Refreshes armed per batch by the scheduler.  One wakeup per batch
    #: instead of one per tREFI; REF times are distinct (tREFI apart), so
    #: heap order — and therefore the simulation — is unchanged.
    REFRESH_BATCH = 64

    def start_refresh_process(self) -> "_RefreshScheduler":
        """Start the periodic refresh loop on the engine."""
        if self._refresh_process is not None:
            return self._refresh_process
        self._refresh_process = _RefreshScheduler(self)
        self.engine.call_after(0, self._refresh_process)
        return self._refresh_process

    def issue_refresh(self, index: int) -> None:
        """PREA then REF at the timeline's scheduled instant (Fig. 2b)."""
        ref_ps = self.timeline.refresh_time(index)
        self.controller.precharge_all(ref_ps - self.spec.trp_ps)
        self.controller.refresh(ref_ps)
        self.controller.forget_open_rows()
        self.refreshes_issued += 1
        self.tracer.emit(ref_ps, "imc.refresh", "REF issued",
                         owner=self.trace_owner, index=index)

    # -- host transfers ---------------------------------------------------------------

    def host_read(self, addr: int, nbytes: int,
                  start_ps: int) -> tuple[bytes, int]:
        """Read for the CPU side, stalling through refresh blackouts."""
        t = self._safe_start(start_ps, nbytes)
        return self.controller.read(addr, nbytes, t)

    def host_write(self, addr: int, data: bytes, start_ps: int) -> int:
        """Write for the CPU side via the WPQ."""
        t = self._safe_start(start_ps, len(data))
        self.wpq.enqueue(addr, data)
        end_ps = self.controller.write(addr, data, t)
        # The write has reached the array; retire it from the WPQ model.
        if self.wpq.entries and self.wpq.entries[0][0] == addr:
            self.wpq.entries.popleft()
            self.wpq.total_drained += 1
        return end_ps

    def _safe_start(self, start_ps: int, nbytes: int) -> int:
        """Start time at which a whole transfer fits before the next
        refresh lead-in.

        Real memory controllers interleave refreshes between individual
        column commands; this model issues a transfer's command burst
        atomically, so it must not *straddle* the PREA+REF slots.  The
        worst-case duration assumes a row switch per burst.  The engine
        is advanced to the chosen start so REFRESH commands hit the bus
        in chronological order relative to host traffic.
        """
        t = max(start_ps, self.controller.busy_until_ps)
        spec = self.spec
        bursts = -(-nbytes // spec.burst_bytes)
        worst = (spec.trcd_ps + spec.tcl_ps
                 + bursts * (spec.trp_ps + spec.trcd_ps + spec.tccd_ps))
        for _ in range(4):   # at most a few deferrals
            t = self.timeline.host_blocked_until(t)
            next_ref = self.timeline.refresh_time(
                self.timeline.index_at_or_after(t))
            if t + worst <= next_ref - spec.trp_ps:
                break
            t = next_ref + self.timeline.trfc_programmed_ps
        if not self.engine.running:
            self.engine.run(until=t)
        return t


class _RefreshScheduler:
    """Self-rescheduling batch armer behind ``start_refresh_process``.

    Replaces the generator process the loop used to run on: a suspended
    generator frame cannot be pickled, and the refresh loop must ride
    along when :mod:`repro.sim.snapshot` captures a protocol stack
    mid-run.  The whole loop state is one integer (the next refresh
    index), so the object round-trips through a snapshot and resumes
    arming exactly where the golden run left off.

    Event ordering is identical to the process version: each wakeup
    pushes the next ``REFRESH_BATCH`` PREA+REF slots via
    ``Engine.call_at_many`` and then schedules its own next wakeup, so
    at equal timestamps the REF callbacks (queued first) still dispatch
    before the re-arm.  ``issue_refresh`` derives all command times
    from the timeline, so a late wakeup simply issues the overdue
    refresh immediately.
    """

    __slots__ = ("imc", "index")

    def __init__(self, imc: IntegratedMemoryController) -> None:
        self.imc = imc
        self.index = 0

    def __call__(self) -> None:
        imc = self.imc
        engine = imc.engine
        now = engine.now
        trp_ps = imc.spec.trp_ps
        items = []
        for i in range(self.index, self.index + imc.REFRESH_BATCH):
            prea_ps = imc.timeline.refresh_time(i) - trp_ps
            items.append((max(prea_ps, now), partial(imc.issue_refresh, i)))
        engine.call_at_many(items)
        self.index += imc.REFRESH_BATCH
        engine.call_after(max(0, items[-1][0] - now), self)
