"""A DDR4 controller: turns byte transfers into legal command sequences.

Both bus masters embed one of these — the host iMC for CPU traffic and
the NVMC for device-side DMA (the paper's §III-B notes the NVMC "must
include a DDR4 controller ... configured to have the same DDR4 timing
parameters with the host system").

The controller keeps its own open-row book (mirroring what it believes
the device state to be — which is exactly the belief a second master can
invalidate, reproducing hazard C2), spaces column commands by tCCD so
the DQ bus never self-overlaps, and honours tRP/tRCD/tRAS around row
switches.
"""

from __future__ import annotations

from repro.ddr.bus import SharedBus
from repro.ddr.commands import Command, CommandKind
from repro.ddr.spec import DDR4Spec
from repro.errors import ProtocolError


class DDR4Controller:
    """Command-sequence generator for one bus master."""

    def __init__(self, name: str, spec: DDR4Spec, bus: SharedBus) -> None:
        self.name = name
        self.spec = spec
        self.bus = bus
        # Controller-side belief of each bank's open row (-1 = closed).
        self.open_rows: dict[int, int] = {}
        self._bank_act_ps: dict[int, int] = {}
        self._bank_write_end_ps: dict[int, int] = {}
        self._recent_acts: list[int] = []     # tFAW pacing
        self.busy_until_ps = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- public transfer API -------------------------------------------------------

    def read(self, addr: int, nbytes: int, start_ps: int) -> tuple[bytes, int]:
        """Read ``nbytes`` beginning at ``addr``; returns (data, end_ps).

        ``end_ps`` is the time the last data beat lands (tCL + burst after
        the final RD command).
        """
        self._check_alignment(addr, nbytes)
        t = max(start_ps, self.busy_until_ps)
        out = bytearray()
        last_cmd_ps = t
        for burst_addr in self._bursts(addr, nbytes):
            t = self._prepare_row(burst_addr, t)
            parts = self.bus.device.decode(burst_addr)
            column = parts.column_byte // self.spec.burst_bytes
            data = self.bus.issue(self.name, Command(
                CommandKind.RD, bank=parts.bank, row=parts.row,
                column=column), t)
            out.extend(data or b"")
            last_cmd_ps = t
            t += self.spec.tccd_ps
        end_ps = last_cmd_ps + self.spec.tcl_ps + self.spec.burst_time_ps
        self.busy_until_ps = max(self.busy_until_ps, t)
        self.bytes_read += nbytes
        return bytes(out), end_ps

    def write(self, addr: int, data: bytes, start_ps: int) -> int:
        """Write ``data`` at ``addr``; returns the end-of-data time."""
        self._check_alignment(addr, len(data))
        t = max(start_ps, self.busy_until_ps)
        last_cmd_ps = t
        burst = self.spec.burst_bytes
        for i, burst_addr in enumerate(self._bursts(addr, len(data))):
            t = self._prepare_row(burst_addr, t)
            parts = self.bus.device.decode(burst_addr)
            column = parts.column_byte // burst
            chunk = data[i * burst:(i + 1) * burst]
            self.bus.issue(self.name, Command(
                CommandKind.WR, bank=parts.bank, row=parts.row,
                column=column), t, data=chunk)
            self._bank_write_end_ps[parts.bank] = (
                t + self.spec.cwl_ps + self.spec.burst_time_ps)
            last_cmd_ps = t
            t += self.spec.tccd_ps
        end_ps = last_cmd_ps + self.spec.cwl_ps + self.spec.burst_time_ps
        self.busy_until_ps = max(self.busy_until_ps, t)
        self.bytes_written += len(data)
        return end_ps

    def precharge_all(self, start_ps: int) -> int:
        """Issue PREA (close every bank); returns completion time.

        tRAS of the most recent ACT still applies; the controller waits
        it out rather than violating it.
        """
        t = max(start_ps, self.busy_until_ps)
        t = max(t, self._earliest_prea(t))
        self.bus.issue(self.name, Command(CommandKind.PREA), t)
        self.open_rows.clear()
        self._bank_act_ps.clear()
        self._bank_write_end_ps.clear()
        end_ps = t + self.spec.trp_ps
        self.busy_until_ps = max(self.busy_until_ps, end_ps)
        return end_ps

    def refresh(self, start_ps: int) -> int:
        """Issue REF; banks must already be precharged (PREA first)."""
        t = max(start_ps, self.busy_until_ps)
        self.bus.issue(self.name, Command(CommandKind.REF), t)
        end_ps = t + self.spec.trfc_ps
        self.busy_until_ps = max(self.busy_until_ps, end_ps)
        return end_ps

    def forget_open_rows(self) -> None:
        """Drop the open-row book (after refresh closed everything)."""
        self.open_rows.clear()
        self._bank_act_ps.clear()
        self._bank_write_end_ps.clear()

    # -- internals ----------------------------------------------------------------------

    def _check_alignment(self, addr: int, nbytes: int) -> None:
        burst = self.spec.burst_bytes
        if addr % burst or nbytes % burst or nbytes == 0:
            raise ProtocolError(
                f"{self.name}: transfer must be whole bursts of {burst} B "
                f"(addr={addr:#x}, nbytes={nbytes})")

    def _bursts(self, addr: int, nbytes: int) -> list[int]:
        burst = self.spec.burst_bytes
        return [addr + i * burst for i in range(nbytes // burst)]

    def _earliest_prea(self, t: int) -> int:
        earliest = t
        for bank, act_ps in self._bank_act_ps.items():
            if self.open_rows.get(bank, -1) >= 0:
                earliest = max(earliest, act_ps + self.spec.tras_ps)
                write_end = self._bank_write_end_ps.get(bank)
                if write_end is not None:
                    earliest = max(earliest, write_end + self.spec.twr_ps)
        return earliest

    def _prepare_row(self, addr: int, t: int) -> int:
        """Ensure the burst's row is open; returns the command-issue time."""
        parts = self.bus.device.decode(addr)
        current = self.open_rows.get(parts.bank, -1)
        if current == parts.row:
            return t
        if current >= 0:
            act_ps = self._bank_act_ps.get(parts.bank, -10**18)
            pre_t = max(t, act_ps + self.spec.tras_ps)
            write_end = self._bank_write_end_ps.get(parts.bank)
            if write_end is not None:
                pre_t = max(pre_t, write_end + self.spec.twr_ps)
            self.bus.issue(self.name, Command(
                CommandKind.PRE, bank=parts.bank), pre_t)
            t = pre_t + self.spec.trp_ps
        # tFAW pacing: defer the fifth ACT of any rolling window.
        if len(self._recent_acts) == 4:
            t = max(t, self._recent_acts[0] + self.spec.tfaw_ps)
        self.bus.issue(self.name, Command(
            CommandKind.ACT, bank=parts.bank, row=parts.row), t)
        self._recent_acts.append(t)
        if len(self._recent_acts) > 4:
            self._recent_acts.pop(0)
        self.open_rows[parts.bank] = parts.row
        self._bank_act_ps[parts.bank] = t
        return t + self.spec.trcd_ps
