"""DRAM refresh power: the watt cost of the tREFI knob.

Fig. 12/13 trade bandwidth; this module adds the third axis.  Refresh
energy is charged per REF command from the JEDEC IDD5B current class:
one all-bank refresh of an 8 Gb x8 DDR4 die moves roughly

    E_ref = (IDD5B - IDD3N) * VDD * tRFC_device

(~1.1 uJ per die at 1.2 V), so a DIMM's refresh power scales linearly
with the refresh *rate* — doubling the rate for the NVDIMM-C windows
doubles this term.  Background/activate/IO power is out of scope; the
point is the *marginal* cost of the mechanism's favourite knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ddr.spec import DDR4Spec
from repro.units import us


@dataclass(frozen=True)
class DramPowerParams:
    """Electrical parameters of one DRAM die (JEDEC-class values)."""

    vdd: float = 1.2            # V
    idd5b_ma: float = 175.0     # burst-refresh current
    idd3n_ma: float = 47.0      # active standby (subtracted baseline)

    @property
    def refresh_current_a(self) -> float:
        return (self.idd5b_ma - self.idd3n_ma) / 1000.0


def refresh_energy_per_ref_j(spec: DDR4Spec,
                             params: DramPowerParams | None = None
                             ) -> float:
    """Energy of one REF command, per die (joules).

    Uses the *device* tRFC — the die only works for 350 ns regardless
    of the extended value programmed into the controller.
    """
    params = params or DramPowerParams()
    return (params.refresh_current_a * params.vdd
            * spec.trfc_device_ps / 1e12)


def refresh_power_w(spec: DDR4Spec, dies: int = 18,
                    params: DramPowerParams | None = None) -> float:
    """Refresh power of a DIMM (default: 18 dies, an ECC RDIMM rank)."""
    per_ref = refresh_energy_per_ref_j(spec, params)
    refs_per_second = 1e12 / spec.trefi_ps
    return per_ref * refs_per_second * dies


@dataclass(frozen=True)
class RefreshPowerPoint:
    """One row of the power-vs-refresh-rate table."""

    trefi_us: float
    power_w: float
    device_window_mib_s: float


def power_sweep(spec: DDR4Spec, dies: int = 18) -> list[RefreshPowerPoint]:
    """Refresh power and device-window bandwidth at 1x/2x/4x rates."""
    from repro.units import PAGE_4K
    out = []
    for trefi_us_value in (7.8, 3.9, 1.95):
        point_spec = spec.with_trefi(us(trefi_us_value))
        windows_per_s = 1e12 / point_spec.trefi_ps
        out.append(RefreshPowerPoint(
            trefi_us=trefi_us_value,
            power_w=refresh_power_w(point_spec, dies=dies),
            device_window_mib_s=PAGE_4K * windows_per_s / 2**20))
    return out
