"""Per-bank DRAM state machine with JEDEC timing enforcement.

Each bank tracks its open row and the timestamps of the last state
transitions so that every incoming command can be checked against the
relevant timing windows (tRCD, tRP, tRAS, tWR, tCCD).  Violations raise
:class:`~repro.errors.TimingViolationError`; illegal sequences (e.g.
READ to a closed bank — the paper's Fig. 2a case C2) raise
:class:`~repro.errors.ProtocolError`.

The model is conservative rather than cycle-exact: it enforces the
constraints the shared-bus mechanism can break, which is what the
reproduction needs to demonstrate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ddr.spec import DDR4Spec
from repro.errors import ProtocolError, TimingViolationError


class BankState(enum.Enum):
    """Lifecycle of a DRAM bank."""

    IDLE = "idle"                 # precharged, no open row
    ACTIVE = "active"             # a row is open in the sense amps
    REFRESHING = "refreshing"     # inside tRFC (all-bank, device-wide)


NEVER = -10**18  # sentinel "long ago" timestamp


@dataclass
class Bank:
    """One bank: open-row bookkeeping plus last-event timestamps."""

    index: int
    spec: DDR4Spec
    state: BankState = BankState.IDLE
    open_row: int = -1
    last_act_ps: int = NEVER
    last_pre_ps: int = NEVER
    last_rdwr_ps: int = NEVER
    last_write_end_ps: int = NEVER
    stats: dict[str, int] = field(default_factory=lambda: {
        "activates": 0, "reads": 0, "writes": 0, "precharges": 0,
        "row_hits": 0, "row_misses": 0,
    })

    # -- command legality ---------------------------------------------------

    def activate(self, row: int, now_ps: int) -> None:
        """Open ``row``; bank must be idle and past tRP since precharge."""
        if self.state is BankState.REFRESHING:
            raise ProtocolError(
                f"bank {self.index}: ACT during refresh (tRFC window)")
        if self.state is BankState.ACTIVE:
            raise ProtocolError(
                f"bank {self.index}: ACT while row {self.open_row} is open")
        if now_ps < self.last_pre_ps + self.spec.trp_ps:
            raise TimingViolationError(
                f"bank {self.index}: ACT violates tRP "
                f"({now_ps} < {self.last_pre_ps + self.spec.trp_ps})")
        self.state = BankState.ACTIVE
        self.open_row = row
        self.last_act_ps = now_ps
        self.stats["activates"] += 1

    def read(self, row: int, now_ps: int) -> None:
        """Column read; the addressed row must be the open one.

        A READ to a row that another master just precharged is exactly
        case C2 of Fig. 2a — it surfaces here as a ProtocolError.
        """
        self._check_column_access(row, now_ps, "RD")
        self.last_rdwr_ps = now_ps
        self.stats["reads"] += 1

    def write(self, row: int, now_ps: int) -> None:
        """Column write; records write-recovery end for the tWR check."""
        self._check_column_access(row, now_ps, "WR")
        self.last_rdwr_ps = now_ps
        data_end = now_ps + self.spec.cwl_ps + self.spec.burst_time_ps
        self.last_write_end_ps = data_end
        self.stats["writes"] += 1

    def precharge(self, now_ps: int) -> None:
        """Close the open row (no-op when already idle, as on silicon)."""
        if self.state is BankState.REFRESHING:
            raise ProtocolError(
                f"bank {self.index}: PRE during refresh (tRFC window)")
        if self.state is BankState.IDLE:
            return
        if now_ps < self.last_act_ps + self.spec.tras_ps:
            raise TimingViolationError(
                f"bank {self.index}: PRE violates tRAS")
        if now_ps < self.last_write_end_ps + self.spec.twr_ps:
            raise TimingViolationError(
                f"bank {self.index}: PRE violates tWR (write recovery)")
        self.state = BankState.IDLE
        self.open_row = -1
        self.last_pre_ps = now_ps
        self.stats["precharges"] += 1

    def begin_refresh(self, now_ps: int) -> None:
        """Enter the refresh cycle; requires the bank to be precharged.

        DDR4 has no per-bank refresh, so the memory controller must have
        issued PREA first (§III-B) — an ACT-to-REF here is a protocol
        error the simulator reports.
        """
        if self.state is BankState.ACTIVE:
            raise ProtocolError(
                f"bank {self.index}: REF while row {self.open_row} open "
                "(controller must PREA before REFRESH)")
        self.state = BankState.REFRESHING

    def end_refresh(self, now_ps: int) -> None:
        """Leave the refresh cycle (called tRFC_device after REF).

        JEDEC allows ACT immediately once tRFC elapses (the precharge is
        internal to the refresh), so the tRP reference is backdated.
        """
        if self.state is not BankState.REFRESHING:
            raise ProtocolError(f"bank {self.index}: end_refresh while idle")
        self.state = BankState.IDLE
        self.last_pre_ps = now_ps - self.spec.trp_ps

    # -- helpers -------------------------------------------------------------

    def _check_column_access(self, row: int, now_ps: int, what: str) -> None:
        if self.state is BankState.REFRESHING:
            raise ProtocolError(
                f"bank {self.index}: {what} during refresh (tRFC window)")
        if self.state is not BankState.ACTIVE:
            raise ProtocolError(
                f"bank {self.index}: {what} to precharged bank "
                "(row was closed under the requester — Fig. 2a C2)")
        if self.open_row != row:
            raise ProtocolError(
                f"bank {self.index}: {what} row {row} but row "
                f"{self.open_row} is open")
        if now_ps < self.last_act_ps + self.spec.trcd_ps:
            raise TimingViolationError(
                f"bank {self.index}: {what} violates tRCD")
        if now_ps < self.last_rdwr_ps + self.spec.tccd_ps:
            raise TimingViolationError(
                f"bank {self.index}: {what} violates tCCD")
        if self.open_row == row:
            self.stats["row_hits"] += 1
