"""DDR4 command set and CA-pin state encoding.

The refresh detector inside the NVMC works on raw command/address pin
states, not on abstract command objects (§IV-A): the FPGA taps six CA
signals — CKE, CS_n, ACT_n, RAS_n, CAS_n, WE_n — runs them through 1:8
deserializers, and pattern-matches the REFRESH encoding

    CKE=H, CS_n=L, ACT_n=H, RAS_n=L, CAS_n=L, WE_n=H.

This module provides the full truth table so the detector can be tested
against *every* DDR4 command, including the self-refresh variants (SRE
and SRX) that must *not* be classified as a normal refresh.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ProtocolError

H = True   # logic high
L = False  # logic low


class CommandKind(enum.Enum):
    """DDR4 command kinds the simulator models."""

    DES = "deselect"           # chip not selected; bus idle slot
    NOP = "nop"
    ACT = "activate"           # open a row
    RD = "read"
    RDA = "read_autopre"
    WR = "write"
    WRA = "write_autopre"
    PRE = "precharge"          # close one bank
    PREA = "precharge_all"     # close all banks (required before REF)
    REF = "refresh"
    SRE = "self_refresh_entry"
    SRX = "self_refresh_exit"
    MRS = "mode_register_set"
    ZQCL = "zq_calibration"


@dataclass(frozen=True)
class CAState:
    """Sampled logic levels of the six CA pins the NVMC monitors.

    ``cke_prev`` carries the previous clock's CKE level because the
    self-refresh commands are defined by CKE *transitions*: SRE is the
    REF encoding with CKE falling, SRX is DESELECT with CKE rising.
    """

    cke: bool
    cs_n: bool
    act_n: bool
    ras_n: bool
    cas_n: bool
    we_n: bool
    cke_prev: bool = True

    def pins(self) -> tuple[bool, bool, bool, bool, bool, bool]:
        """The six monitored pins in board-routing order (§IV-A)."""
        return (self.cke, self.cs_n, self.act_n,
                self.ras_n, self.cas_n, self.we_n)


#: Truth table: kind -> (cke, cs_n, act_n, ras_n, cas_n, we_n, cke_prev).
#: For ACT, the RAS/CAS/WE pins are re-purposed as row-address bits; the
#: simulator encodes them high (their level is address-dependent on real
#: silicon, but ACT is unambiguous via ACT_n=L regardless).
_ENCODINGS: dict[CommandKind, tuple[bool, ...]] = {
    CommandKind.DES:  (H, H, H, H, H, H, H),
    CommandKind.NOP:  (H, L, H, H, H, H, H),
    CommandKind.ACT:  (H, L, L, H, H, H, H),
    CommandKind.RD:   (H, L, H, H, L, H, H),
    CommandKind.RDA:  (H, L, H, H, L, H, H),
    CommandKind.WR:   (H, L, H, H, L, L, H),
    CommandKind.WRA:  (H, L, H, H, L, L, H),
    CommandKind.PRE:  (H, L, H, L, H, L, H),
    CommandKind.PREA: (H, L, H, L, H, L, H),
    CommandKind.REF:  (H, L, H, L, L, H, H),
    CommandKind.MRS:  (H, L, H, L, L, L, H),
    CommandKind.ZQCL: (H, L, H, H, H, L, H),
    # Self-refresh entry: REF pin state with CKE driven low this cycle.
    CommandKind.SRE:  (L, L, H, L, L, H, H),
    # Self-refresh exit: deselect with CKE rising.
    CommandKind.SRX:  (H, H, H, H, H, H, L),
}


def encode(kind: CommandKind) -> CAState:
    """CA pin state for a command kind."""
    cke, cs_n, act_n, ras_n, cas_n, we_n, cke_prev = _ENCODINGS[kind]
    return CAState(cke, cs_n, act_n, ras_n, cas_n, we_n, cke_prev)


def is_refresh_state(state: CAState) -> bool:
    """True iff the pin state is a *normal* REFRESH (the paper's match).

    The predicate the RTL refresh detector implements: CKE, ACT_n and
    WE_n high, the other monitored pins low — and CKE steady (a falling
    CKE with the same other pins is self-refresh *entry*, which begins a
    window of unknown length and must not trigger a device transfer).
    """
    return (state.cke is H and state.cke_prev is H and state.cs_n is L
            and state.act_n is H and state.ras_n is L
            and state.cas_n is L and state.we_n is H)


def classify(state: CAState) -> CommandKind:
    """Decode a pin state back to a command kind.

    RD/RDA, WR/WRA and PRE/PREA pairs share pin states (they differ only
    in address bit A10, which the detector does not monitor); decoding
    returns the non-auto-precharge member of each pair.  Raises
    :class:`ProtocolError` on an encoding that matches nothing.
    """
    if state.cke is L and state.cke_prev is L:
        # CKE held low: the device is in power-down/self-refresh and the
        # command pins are don't-care — the slot registers as deselect.
        return CommandKind.DES
    if state.cs_n is H:
        if state.cke is H and state.cke_prev is L:
            return CommandKind.SRX
        return CommandKind.DES
    if state.cke is L and state.cke_prev is H:
        if (state.act_n, state.ras_n, state.cas_n, state.we_n) == (H, L, L, H):
            return CommandKind.SRE
        raise ProtocolError(f"CKE fell with non-refresh pin state: {state}")
    if state.cke is H and state.cke_prev is L:
        # Power-down/self-refresh exit requires DESELECT (CS_n high) on
        # the CKE rising edge; any selected command here is illegal.
        raise ProtocolError(f"CKE rose without deselect: {state}")
    if state.act_n is L:
        return CommandKind.ACT
    key = (state.ras_n, state.cas_n, state.we_n)
    table = {
        (H, H, H): CommandKind.NOP,
        (H, L, H): CommandKind.RD,
        (H, L, L): CommandKind.WR,
        (L, H, L): CommandKind.PRE,
        (L, L, H): CommandKind.REF,
        (L, L, L): CommandKind.MRS,
        (H, H, L): CommandKind.ZQCL,
    }
    if key not in table:
        raise ProtocolError(f"unrecognised CA state: {state}")
    return table[key]


@dataclass(frozen=True)
class Command:
    """A decoded DDR4 command with its address payload.

    ``bank`` is a flat bank index (group * banks_per_group + bank),
    ``row``/``column`` are used by ACT/RD/WR respectively.  Non-addressed
    commands (REF, PREA, ...) leave them at -1.
    """

    kind: CommandKind
    bank: int = -1
    row: int = -1
    column: int = -1

    @property
    def ca_state(self) -> CAState:
        """The pin state this command puts on the CA bus."""
        return encode(self.kind)

    def __str__(self) -> str:
        parts = [self.kind.name]
        if self.bank >= 0:
            parts.append(f"b{self.bank}")
        if self.row >= 0:
            parts.append(f"r{self.row}")
        if self.column >= 0:
            parts.append(f"c{self.column}")
        return " ".join(parts)


#: Commands that transfer data on the DQ bus.
DATA_COMMANDS = frozenset({CommandKind.RD, CommandKind.RDA,
                           CommandKind.WR, CommandKind.WRA})

#: Commands that require *all* banks idle when issued.
ALL_BANK_COMMANDS = frozenset({CommandKind.REF, CommandKind.SRE})
