"""The schema-pinned ``AGING_*.json`` endurance-campaign report.

Mirrors :mod:`repro.health.report`: :data:`SCHEMA` names the pinned
revision, :func:`render_report` serialises with sorted keys and a
trailing newline (byte-identical for identical campaign results — the
wall-clock timestamp is the *only* non-deterministic field, injected by
the caller so tests can omit it), and :func:`validate_report` checks a
parsed report against the pinned shape.

The report carries the whole fleet's life stories — per-shard epoch
logs and ladder transitions, per-strategy survival curves, wear-spread
and WAF aggregates, time-to-read_only percentiles — plus the analytic
cross-check against the paper's §VII-A lifetime projection, so every
acceptance gate is checkable from the artifact alone.
"""

from __future__ import annotations

import json
from typing import Any

from repro.report import (require_bool, require_exact_keys,
                          require_nonneg_ints, require_object_list,
                          schema_id, validate_schema_report)

SCHEMA = schema_id("aging", 1)

_REPORT_KEYS = frozenset(
    {"schema", "generated_at", "seed", "quick", "config", "strategies",
     "ladder_histogram", "analytic", "totals", "gates", "ok"})
_CONFIG_KEYS = frozenset(
    {"shards", "strategies", "max_epochs", "footprint_pages",
     "epoch_steps", "years_per_epoch_x1000", "wear_accel",
     "bad_block_budget", "static_level_period", "gc_headroom",
     "scrub_windows"})
_STRATEGY_KEYS = frozenset(
    {"strategy", "mean_wear_spread_x1000", "mean_waf_x1000",
     "survival_curve", "time_to_read_only", "shards"})
_TTRO_KEYS = frozenset(
    {"reached", "censored", "p50_epochs", "p90_epochs"})
_SHARD_KEYS = frozenset(
    {"strategy", "shard", "wear_accel", "epochs_run", "read_only_epoch",
     "end_state", "waf_x1000", "wear_spread_x1000", "data_loss",
     "grown_bad_blocks", "scrub_relocations", "retired_free_blocks",
     "epoch_log", "ladder"})
_EPOCH_KEYS = frozenset(
    {"epoch", "writes", "reads", "refused_writes", "media_errors",
     "data_loss", "retired_free_blocks", "relocations",
     "grown_bad_blocks", "bad_blocks", "free_blocks", "max_erase",
     "mean_erase_x1000", "wear_spread_x1000", "health"})
_TRANSITION_KEYS = frozenset(
    {"time_ps", "from", "to", "reason", "component"})
_ANALYTIC_KEYS = frozenset(
    {"paper_waf_x1000", "paper_lifetime_years_x1000",
     "measured_waf_x1000", "projected_lifetime_years_x1000"})
_TOTAL_KEYS = frozenset(
    {"shards", "epochs", "writes", "reads", "refused_writes",
     "media_errors", "data_loss", "grown_bad_blocks",
     "scrub_relocations", "retired_free_blocks", "violations"})
_GATE_KEYS = frozenset(
    {"zero_loss", "sanitizers_quiet", "graceful_order",
     "leveling_beats_greedy"})

_SHARD_COUNTERS = (
    "shard", "wear_accel", "epochs_run", "read_only_epoch", "waf_x1000",
    "wear_spread_x1000", "data_loss", "grown_bad_blocks",
    "scrub_relocations", "retired_free_blocks")
_EPOCH_COUNTERS = (
    "epoch", "writes", "reads", "refused_writes", "media_errors",
    "data_loss", "retired_free_blocks", "relocations",
    "grown_bad_blocks", "bad_blocks", "free_blocks", "max_erase",
    "mean_erase_x1000", "wear_spread_x1000")


def render_report(result: Any, timestamp: str | None = None) -> str:
    """Serialise an :class:`~repro.aging.campaign.AgingResult`.

    ``timestamp`` is stamped into ``generated_at`` verbatim; pass None
    (the default) for byte-stable output.
    """
    payload = result.to_dict()
    payload["generated_at"] = timestamp
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _check_shard(shard: dict, where: str, problems: list[str]) -> None:
    if shard.keys() != _SHARD_KEYS:
        problems.append(
            f"{where} keys {sorted(shard.keys())} != {sorted(_SHARD_KEYS)}")
        return
    require_nonneg_ints(problems, shard, _SHARD_COUNTERS, f"{where}.")
    for index, entry in enumerate(require_object_list(
            problems, shard, "epoch_log")):
        if not isinstance(entry, dict) or entry.keys() != _EPOCH_KEYS:
            problems.append(
                f"{where}.epoch_log[{index}] keys must be "
                f"{sorted(_EPOCH_KEYS)}")
            continue
        require_nonneg_ints(problems, entry, _EPOCH_COUNTERS,
                            f"{where}.epoch_log[{index}].")
    for index, entry in enumerate(require_object_list(
            problems, shard, "ladder")):
        if not isinstance(entry, dict) or entry.keys() != _TRANSITION_KEYS:
            problems.append(
                f"{where}.ladder[{index}] keys must be "
                f"{sorted(_TRANSITION_KEYS)}")


def _check_strategy(entry: dict, index: int, problems: list[str]) -> None:
    where = f"strategies[{index}]"
    if entry.keys() != _STRATEGY_KEYS:
        problems.append(
            f"{where} keys {sorted(entry.keys())} != "
            f"{sorted(_STRATEGY_KEYS)}")
        return
    require_nonneg_ints(problems, entry,
                        ("mean_wear_spread_x1000", "mean_waf_x1000"),
                        f"{where}.")
    curve = entry.get("survival_curve")
    if (not isinstance(curve, list)
            or any(not isinstance(n, int) or isinstance(n, bool) or n < 0
                   for n in curve)):
        problems.append(
            f"{where}.survival_curve must be a list of non-negative ints")
    if require_exact_keys(problems, entry.get("time_to_read_only"),
                          _TTRO_KEYS, f"{where}.time_to_read_only"):
        require_nonneg_ints(problems, entry["time_to_read_only"],
                            sorted(_TTRO_KEYS),
                            f"{where}.time_to_read_only.")
    shards = require_object_list(problems, entry, "shards",
                                 non_empty=True)
    for shard_index, shard in enumerate(shards):
        if not isinstance(shard, dict):
            problems.append(
                f"{where}.shards[{shard_index}] must be an object")
            continue
        _check_shard(shard, f"{where}.shards[{shard_index}]", problems)


def _detail(payload: dict, problems: list[str]) -> None:
    if require_exact_keys(problems, payload.get("config"), _CONFIG_KEYS,
                          "config"):
        require_nonneg_ints(
            problems, payload["config"],
            sorted(_CONFIG_KEYS - {"strategies"}), "config.")
        names = payload["config"].get("strategies")
        if (not isinstance(names, list) or not names
                or any(not isinstance(n, str) for n in names)):
            problems.append("config.strategies must be a list of names")
    for index, entry in enumerate(require_object_list(
            problems, payload, "strategies", non_empty=True)):
        if not isinstance(entry, dict):
            problems.append(f"strategies[{index}] must be an object")
            continue
        _check_strategy(entry, index, problems)
    histogram = payload.get("ladder_histogram")
    if not isinstance(histogram, dict):
        problems.append("ladder_histogram must be an object")
    else:
        require_nonneg_ints(problems, histogram, sorted(histogram),
                            "ladder_histogram.")
    if require_exact_keys(problems, payload.get("analytic"),
                          _ANALYTIC_KEYS, "analytic"):
        require_nonneg_ints(problems, payload["analytic"],
                            sorted(_ANALYTIC_KEYS), "analytic.")
    if require_exact_keys(problems, payload.get("totals"), _TOTAL_KEYS,
                          "totals"):
        require_nonneg_ints(problems, payload["totals"],
                            sorted(_TOTAL_KEYS), "totals.")
    gates = payload.get("gates")
    if not isinstance(gates, dict) or gates.keys() != _GATE_KEYS:
        problems.append(f"gates keys must be {sorted(_GATE_KEYS)}")
    else:
        for key in sorted(_GATE_KEYS):
            if not isinstance(gates[key], bool):
                problems.append(f"gates[{key!r}] must be a bool")
    require_bool(problems, payload, "ok")


def validate_report(payload: Any) -> list[str]:
    """Problems with a parsed report; an empty list means valid."""
    return validate_schema_report("aging", 1, payload, _REPORT_KEYS,
                                  detail=_detail)
