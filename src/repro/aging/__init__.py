"""Device-lifetime endurance campaigns (``repro age``).

The fleet-survival counterpart of :mod:`repro.health.soak`: instead of
marching one module down the ladder with *injected* faults, the aging
harness lives a whole device population to organic end-of-life.  Each
shard runs workload epochs whose wear, retention age and read counts
are fast-forwarded closed-form between epochs (snapshot-accelerated —
O(epochs x epoch), not years of event-by-event simulation), under one
of the FTL's GC victim strategies, until grown bad blocks push the
module into ``read_only``.  Fleet telemetry — survival curves,
wear-spread distributions per strategy, time-to-read_only percentiles,
ladder-transition histograms — lands in a schema-pinned
``AGING_<timestamp>.json`` (``repro.aging/1``).
"""

from repro.aging.campaign import AgingConfig, AgingResult, run_aging

__all__ = ["AgingConfig", "AgingResult", "run_aging"]
