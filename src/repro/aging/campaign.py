"""The aging campaign: snapshot-accelerated epochs to end-of-life.

One *shard* is one simulated NVDIMM-C module aged in epochs::

    epoch:   hot/cold workload -> patrol scrub -> verify every page
    between: capture SimSnapshot -> restore -> closed-form fast-forward

The fast-forward multiplies the epoch's *measured* per-block erase and
read deltas by the shard's wear-acceleration factor (manufacturing
variation: a seeded spread around the configured base) and adds the
epoch's retention years to every touched block — the media decays
exactly as if the epoch had run ``accel`` times over plus parked time,
without simulating any of it.  Worn-out free blocks are retired after
each fast-forward; non-free worn blocks die at their next real erase.
A shard ends when the health ladder reaches ``read_only`` (the grown
bad blocks cross the budget) or the epoch budget runs out (censored).

A *campaign* ages ``shards`` independently-seeded shards under each
configured GC victim strategy, with matched shard seeds across
strategies so wear-leveling comparisons see identical workloads.
Campaign acceptance, checked from the report alone:

* **zero committed loss at every epoch** — every shadow-tracked page
  reads back intact through every epoch, including the read-only one;
* **sanitizers quiet** — the full default suite observes every run;
* **graceful degradation order** — no shard reaches ``fail_stop``
  without passing ``read_only`` first;
* **wear leveling works** — ``cost_benefit`` and ``static`` end with
  strictly lower mean wear spread than the ``greedy`` baseline.

Determinism: a pure function of the config — reruns render
byte-identical reports, independent of ``PYTHONHASHSEED``, with or
without snapshot acceleration.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.aging.report import SCHEMA
from repro.check.sanitizer import default_suite
from repro.device.nvdimmc import NVDIMMCSystem
from repro.errors import ConfigError, FailStopError, MediaError
from repro.health.monitor import HealthPolicy
from repro.nand.ecc import AgingParams
from repro.nand.endurance import (EnduranceSnapshot, paper_device_lifetime,
                                  project_lifetime_years)
from repro.nand.ftl import VICTIM_STRATEGIES, FlashTranslationLayer
from repro.nand.spec import ZNAND_64GB
from repro.sim.snapshot import SimSnapshot
from repro.sim.trace import Tracer, use_tracer
from repro.units import PAGE_4K, gb, kb, mb, us

_CACHE_BYTES = kb(512)
_DEVICE_BYTES = mb(8)

#: Hot/cold skew: every fourth page is hot and takes 80 % of the
#: writes.  The hot set is *strided* through the footprint on purpose —
#: each fill block ends up mostly cold with a few hot pages, exactly
#: the mixed, slightly-stale blocks greedy GC never reclaims (their
#: valid counts stay high) and the leveling strategies must dig out.
_HOT_DIVISOR = 4
_HOT_WRITE_BIAS = 0.8
_READ_FRACTION = 0.25


def _campaign_seed(seed: int, *parts: object) -> int:
    tag = ":".join(str(part) for part in ("aging", seed) + parts)
    return zlib.crc32(tag.encode("ascii"))


@dataclass(frozen=True)
class AgingConfig:
    """One campaign's knobs; everything downstream derives from here."""

    quick: bool = False
    seed: int = 0
    #: Shards aged per strategy (default 2 quick / 4 full).
    shards: int | None = None
    strategies: tuple[str, ...] = VICTIM_STRATEGIES
    #: Epoch budget per shard (default 8 quick / 14 full).
    max_epochs: int | None = None
    #: Device pages the workload touches (default 1024 quick / 1536
    #: full) — most of the logical space, so the cold data pins a large
    #: share of the physical blocks and wear leveling has real work.
    footprint_pages: int | None = None
    #: Mixed read/write steps per epoch (default: the footprint).
    epoch_steps: int | None = None
    #: Parked (retention) years added per epoch, milli-years.
    years_per_epoch_x1000: int = 350
    #: Base wear acceleration: each epoch's erase/read deltas stand for
    #: this many repetitions of themselves (manufacturing variation
    #: scatters the per-shard factor around it).  Around 26k, a block's
    #: second or third recycling crosses the 50K-cycle endurance — the
    #: manufacturing spread straddles the boundary, so shard lifetimes
    #: stagger instead of the whole population dying in one epoch.
    wear_accel: int = 26_000
    #: ``static`` strategy: erases between cold-block migrations.
    static_level_period: int = 8
    #: Grown-bad-block budget before the module goes read-only.
    bad_block_budget: int = 6
    #: Free-pool headroom above the GC low water mark after the fill —
    #: small enough that GC (where victim strategies act) runs from the
    #: first epochs instead of after years of fill traffic, large
    #: enough that collection stays calm instead of thrashing.
    gc_headroom: int = 20
    #: Idle refresh windows patrolled per epoch.
    scrub_windows: int = 24
    #: Snapshot-accelerated epochs (capture/restore each boundary) and
    #: shard forks from one shared prefix; ``False`` reruns everything
    #: from zero — byte-identical reports either way.
    snapshot: bool = True

    def __post_init__(self) -> None:
        for strategy in self.strategies:
            if strategy not in VICTIM_STRATEGIES:
                raise ConfigError(
                    f"unknown victim strategy {strategy!r}; expected "
                    f"one of {VICTIM_STRATEGIES}")
        if not self.strategies:
            raise ConfigError("at least one victim strategy is required")
        if len(set(self.strategies)) != len(self.strategies):
            raise ConfigError("duplicate victim strategies")
        if "greedy" not in self.strategies:
            raise ConfigError(
                "the greedy baseline strategy is required (the wear "
                "leveling gate compares against it)")
        if self.shard_count < 1:
            raise ConfigError("shards must be >= 1")
        if self.epoch_budget < 1:
            raise ConfigError("max_epochs must be >= 1")
        if self.wear_accel < 1:
            raise ConfigError("wear_accel must be >= 1")
        if self.years_per_epoch_x1000 < 0:
            raise ConfigError("years_per_epoch_x1000 must be >= 0")
        if self.bad_block_budget < 1:
            raise ConfigError("bad_block_budget must be >= 1")
        if self.static_level_period < 1:
            raise ConfigError("static_level_period must be >= 1")
        if self.footprint < 16:
            raise ConfigError("footprint_pages must be >= 16")

    @property
    def shard_count(self) -> int:
        if self.shards is not None:
            return self.shards
        return 2 if self.quick else 4

    @property
    def epoch_budget(self) -> int:
        if self.max_epochs is not None:
            return self.max_epochs
        return 8 if self.quick else 14

    @property
    def footprint(self) -> int:
        if self.footprint_pages is not None:
            return self.footprint_pages
        return 1024 if self.quick else 1536

    @property
    def steps(self) -> int:
        if self.epoch_steps is not None:
            return self.epoch_steps
        return self.footprint


@dataclass
class EpochLog:
    """One epoch's endurance census plus workload accounting."""

    epoch: int
    writes: int = 0
    reads: int = 0
    refused_writes: int = 0
    media_errors: int = 0
    data_loss: int = 0
    retired_free_blocks: int = 0
    relocations: int = 0          # cumulative scrub relocations
    grown_bad_blocks: int = 0     # cumulative
    bad_blocks: int = 0           # census across all blocks
    free_blocks: int = 0
    max_erase: int = 0
    mean_erase_x1000: int = 0
    wear_spread_x1000: int = 0
    health: str = "ok"

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "writes": self.writes,
            "reads": self.reads,
            "refused_writes": self.refused_writes,
            "media_errors": self.media_errors,
            "data_loss": self.data_loss,
            "retired_free_blocks": self.retired_free_blocks,
            "relocations": self.relocations,
            "grown_bad_blocks": self.grown_bad_blocks,
            "bad_blocks": self.bad_blocks,
            "free_blocks": self.free_blocks,
            "max_erase": self.max_erase,
            "mean_erase_x1000": self.mean_erase_x1000,
            "wear_spread_x1000": self.wear_spread_x1000,
            "health": self.health,
        }


@dataclass
class ShardOutcome:
    """One aged module's life story."""

    strategy: str
    shard: int
    wear_accel: int
    epochs_run: int = 0
    #: 1-based epoch at which the ladder reached read-only; 0 = the
    #: epoch budget ran out first (censored).
    read_only_epoch: int = 0
    end_state: str = "ok"
    waf_x1000: int = 1000
    wear_spread_x1000: int = 1000
    data_loss: int = 0
    grown_bad_blocks: int = 0
    scrub_relocations: int = 0
    retired_free_blocks: int = 0
    epoch_log: list[EpochLog] = field(default_factory=list)
    ladder: list[dict] = field(default_factory=list)

    @property
    def graceful(self) -> bool:
        """``fail_stop`` only ever after ``read_only``."""
        seen_read_only = False
        for transition in self.ladder:
            if transition["to"] == "read_only":
                seen_read_only = True
            if transition["to"] == "fail_stop" and not seen_read_only:
                return False
        return True

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "shard": self.shard,
            "wear_accel": self.wear_accel,
            "epochs_run": self.epochs_run,
            "read_only_epoch": self.read_only_epoch,
            "end_state": self.end_state,
            "waf_x1000": self.waf_x1000,
            "wear_spread_x1000": self.wear_spread_x1000,
            "data_loss": self.data_loss,
            "grown_bad_blocks": self.grown_bad_blocks,
            "scrub_relocations": self.scrub_relocations,
            "retired_free_blocks": self.retired_free_blocks,
            "epoch_log": [entry.to_dict() for entry in self.epoch_log],
            "ladder": list(self.ladder),
        }


@dataclass
class AgingResult:
    """Everything one campaign observed, plus the acceptance gates."""

    config: AgingConfig
    shards: list[ShardOutcome] = field(default_factory=list)
    violations: int = 0

    def by_strategy(self, strategy: str) -> list[ShardOutcome]:
        return [s for s in self.shards if s.strategy == strategy]

    def mean_wear_spread_x1000(self, strategy: str) -> int:
        outcomes = self.by_strategy(strategy)
        if not outcomes:
            return 0
        return round(sum(s.wear_spread_x1000 for s in outcomes)
                     / len(outcomes))

    def mean_waf_x1000(self, strategy: str) -> int:
        outcomes = self.by_strategy(strategy)
        if not outcomes:
            return 1000
        return round(sum(s.waf_x1000 for s in outcomes) / len(outcomes))

    def survival_curve(self, strategy: str) -> list[int]:
        """Writable shard count after each epoch, ``1..epoch_budget``."""
        outcomes = self.by_strategy(strategy)
        curve = []
        for epoch in range(1, self.config.epoch_budget + 1):
            curve.append(sum(
                1 for s in outcomes
                if s.read_only_epoch == 0 or s.read_only_epoch > epoch))
        return curve

    def time_to_read_only(self, strategy: str) -> dict[str, int]:
        reached = sorted(s.read_only_epoch
                         for s in self.by_strategy(strategy)
                         if s.read_only_epoch > 0)
        total = len(self.by_strategy(strategy))

        def pct(fraction: float) -> int:
            if not reached:
                return 0
            index = min(len(reached) - 1, int(fraction * len(reached)))
            return reached[index]

        return {"reached": len(reached), "censored": total - len(reached),
                "p50_epochs": pct(0.50), "p90_epochs": pct(0.90)}

    def ladder_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for outcome in self.shards:
            for transition in outcome.ladder:
                key = f"{transition['from']}->{transition['to']}"
                histogram[key] = histogram.get(key, 0) + 1
        return histogram

    # -- gates ---------------------------------------------------------------------

    @property
    def zero_loss(self) -> bool:
        return all(s.data_loss == 0 for s in self.shards)

    @property
    def sanitizers_quiet(self) -> bool:
        return self.violations == 0

    @property
    def graceful_order(self) -> bool:
        return all(s.graceful for s in self.shards)

    @property
    def leveling_beats_greedy(self) -> bool:
        """Every non-greedy strategy strictly improves the wear spread."""
        greedy = self.mean_wear_spread_x1000("greedy")
        others = [s for s in self.config.strategies if s != "greedy"]
        return all(self.mean_wear_spread_x1000(strategy) < greedy
                   for strategy in others)

    @property
    def ok(self) -> bool:
        return (self.zero_loss and self.sanitizers_quiet
                and self.graceful_order and self.leveling_beats_greedy)

    # -- serialisation -------------------------------------------------------------

    def analytic(self) -> dict:
        """Cross-check the campaign against the paper's §VII-A math.

        ``paper_*`` is the closed-form projection at the paper's own
        operating point (58.3 MB/s sustained, WAF 1.1); ``measured_*``
        re-runs the same projection with the WAF and wear spread the
        greedy baseline actually exhibited, so the two lifetimes are
        directly comparable.
        """
        measured_waf = self.mean_waf_x1000("greedy")
        spread = self.mean_wear_spread_x1000("greedy")
        projected = project_lifetime_years(
            ZNAND_64GB, 2 * gb(64), 58.3, waf=measured_waf / 1000,
            wear_spread=max(1.0, spread / 1000))
        return {
            "paper_waf_x1000": 1100,
            "paper_lifetime_years_x1000":
                round(paper_device_lifetime() * 1000),
            "measured_waf_x1000": measured_waf,
            "projected_lifetime_years_x1000": round(projected * 1000),
        }

    def totals(self) -> dict:
        entries = [e for s in self.shards for e in s.epoch_log]
        return {
            "shards": len(self.shards),
            "epochs": sum(s.epochs_run for s in self.shards),
            "writes": sum(e.writes for e in entries),
            "reads": sum(e.reads for e in entries),
            "refused_writes": sum(e.refused_writes for e in entries),
            "media_errors": sum(e.media_errors for e in entries),
            "data_loss": sum(s.data_loss for s in self.shards),
            "grown_bad_blocks":
                sum(s.grown_bad_blocks for s in self.shards),
            "scrub_relocations":
                sum(s.scrub_relocations for s in self.shards),
            "retired_free_blocks":
                sum(s.retired_free_blocks for s in self.shards),
            "violations": self.violations,
        }

    def to_dict(self) -> dict:
        config = self.config
        return {
            "schema": SCHEMA,
            "generated_at": None,
            "seed": config.seed,
            "quick": config.quick,
            "config": {
                "shards": config.shard_count,
                "strategies": list(config.strategies),
                "max_epochs": config.epoch_budget,
                "footprint_pages": config.footprint,
                "epoch_steps": config.steps,
                "years_per_epoch_x1000": config.years_per_epoch_x1000,
                "wear_accel": config.wear_accel,
                "bad_block_budget": config.bad_block_budget,
                "static_level_period": config.static_level_period,
                "gc_headroom": config.gc_headroom,
                "scrub_windows": config.scrub_windows,
            },
            "strategies": [
                {
                    "strategy": name,
                    "mean_wear_spread_x1000":
                        self.mean_wear_spread_x1000(name),
                    "mean_waf_x1000": self.mean_waf_x1000(name),
                    "survival_curve": self.survival_curve(name),
                    "time_to_read_only": self.time_to_read_only(name),
                    "shards": [s.to_dict()
                               for s in self.by_strategy(name)],
                }
                for name in config.strategies
            ],
            "ladder_histogram": self.ladder_histogram(),
            "analytic": self.analytic(),
            "totals": self.totals(),
            "gates": {
                "zero_loss": self.zero_loss,
                "sanitizers_quiet": self.sanitizers_quiet,
                "graceful_order": self.graceful_order,
                "leveling_beats_greedy": self.leveling_beats_greedy,
            },
            "ok": self.ok,
        }


# -- workload ----------------------------------------------------------------------


def _payload(page: int, version: int) -> bytes:
    head = page.to_bytes(4, "little") + version.to_bytes(4, "little")
    return head + bytes([(page * 149 + version * 53) % 256]) * (PAGE_4K - 8)


class _ShardLeg:
    """Workload runner over one shard's driver with a shadow of truth."""

    def __init__(self, driver, shadow: dict[int, bytes],
                 footprint: int) -> None:
        self.driver = driver
        self.shadow = shadow
        self.footprint = footprint

    def fill(self, t: int, log: EpochLog) -> int:
        for page in range(self.footprint):
            data = _payload(page, 0)
            try:
                t = self.driver.write_page(page, data, t)
            except FailStopError:
                log.refused_writes += 1
                continue
            except MediaError as exc:
                if getattr(exc, "reason", None) is not None:
                    log.refused_writes += 1
                else:
                    log.media_errors += 1
                continue
            log.writes += 1
            self.shadow[page] = data
        return t

    def churn(self, t: int, rng: random.Random, steps: int,
              version_base: int, log: EpochLog) -> int:
        hot_pages = max(1, self.footprint // _HOT_DIVISOR)
        for step in range(steps):
            if self.shadow and rng.random() < _READ_FRACTION:
                page = rng.choice(sorted(self.shadow))
                try:
                    _data, t = self.driver.read_page(page, t)
                except MediaError:
                    log.media_errors += 1
                    continue
                log.reads += 1
                continue
            if rng.random() < _HOT_WRITE_BIAS:
                # The hot set is strided: every _HOT_DIVISOR-th page.
                page = _HOT_DIVISOR * rng.randrange(hot_pages)
            else:
                page = rng.randrange(self.footprint)
            data = _payload(page, version_base + step)
            try:
                t = self.driver.write_page(page, data, t)
            except FailStopError:
                log.refused_writes += 1
                continue
            except MediaError as exc:
                if getattr(exc, "reason", None) is not None:
                    log.refused_writes += 1
                else:
                    log.media_errors += 1
                continue
            log.writes += 1
            self.shadow[page] = data
        return t

    def verify(self, t: int, log: EpochLog) -> int:
        """Read back every committed page; any mismatch is data loss."""
        lost = 0
        for page in sorted(self.shadow):
            try:
                data, t = self.driver.read_page(page, t)
            except MediaError:
                lost += 1
                continue
            if data != self.shadow[page]:
                lost += 1
            log.reads += 1
        log.data_loss += lost
        return t


# -- shard machinery ---------------------------------------------------------------


def _build_system(config: AgingConfig, tracer: Tracer) -> NVDIMMCSystem:
    system = NVDIMMCSystem(
        cache_bytes=_CACHE_BYTES, device_bytes=_DEVICE_BYTES,
        seed=_campaign_seed(config.seed, "module") % 100003,
        tracer=tracer,
        health_policy=HealthPolicy(
            read_only_bad_blocks=config.bad_block_budget))
    system.nand.degraded_bad_block_limit = config.bad_block_budget
    system.nand.aging = AgingParams()
    return system


def _strategy_prefix(config: AgingConfig, strategy: str, tracer: Tracer,
                     ) -> tuple[NVDIMMCSystem, _ShardLeg, int]:
    """Bring-up plus the RNG-free sequential fill, shared by all shards.

    After the fill the GC water marks are pinned just below the free
    pool: an endurance campaign wants the device living in its *steady
    state* — GC active, victim strategies making real choices — from
    epoch one, not after simulating years of fill-up traffic first.
    """
    system = _build_system(config, tracer)
    system.nand.ftl.set_victim_strategy(
        strategy, static_period=config.static_level_period)
    leg = _ShardLeg(system.driver, {}, config.footprint)
    t = round(us(1))
    t = leg.fill(t, EpochLog(epoch=0))
    ftl = system.nand.ftl
    low = max(FlashTranslationLayer.GC_LOW_WATER,
              ftl.free_blocks - config.gc_headroom)
    ftl.GC_LOW_WATER = low
    ftl.GC_HIGH_WATER = low + 4
    return system, leg, t


def _wear_baseline(system: NVDIMMCSystem,
                   ) -> dict[tuple[int, int, int], tuple[int, int]]:
    baseline = {}
    for die in system.nand.dies:
        for (plane, block), info in die.blocks.items():
            baseline[(die.die_index, plane, block)] = (
                info.erase_count, info.read_count)
    return baseline


def _fast_forward(system: NVDIMMCSystem,
                  baseline: dict[tuple[int, int, int], tuple[int, int]],
                  accel: int, years: float) -> int:
    """Closed-form aging: amplify the epoch's wear, add parked years.

    Each block's measured erase/read deltas since ``baseline`` are
    multiplied by ``accel`` (the epoch stands for ``accel`` repetitions
    of itself) and every block's retention clock advances by ``years``.
    Bad blocks are out of service and wear no further.  Returns how
    many worn-out *free* blocks the FTL retired afterwards.
    """
    for die in system.nand.dies:
        for key in sorted(die.blocks):
            info = die.blocks[key]
            if info.bad:
                continue
            base_erase, base_reads = baseline.get(
                (die.die_index,) + key, (0, 0))
            erase_delta = info.erase_count - base_erase
            read_delta = info.read_count - base_reads
            if erase_delta > 0:
                info.erase_count += erase_delta * (accel - 1)
            if read_delta > 0:
                info.read_count += read_delta * (accel - 1)
            info.aged_years += years
    return system.nand.ftl.retire_worn_free_blocks()


def _census(outcome: ShardOutcome, system: NVDIMMCSystem,
            log: EpochLog) -> None:
    snap = EnduranceSnapshot.capture(system.nand.ftl)
    log.relocations = snap.scrub_relocations
    log.grown_bad_blocks = snap.grown_bad_blocks
    log.bad_blocks = snap.bad_blocks
    log.free_blocks = snap.free_blocks
    log.max_erase = snap.max_erase_count
    log.mean_erase_x1000 = round(1000 * snap.mean_erase_count)
    log.wear_spread_x1000 = round(1000 * snap.wear_spread)
    log.health = system.health.state.label
    outcome.epoch_log.append(log)


def _capture_state(state: dict) -> SimSnapshot:
    """Capture a shard's full root set, log-swap trick included.

    Mirrors ``soak._capture_prefix``: the tracer records and NVMC logs
    are swapped out so the capture holds the simulation state, not the
    observation history, then swapped back onto whichever graph keeps
    running.
    """
    tracer = state["tracer"]
    nvmc = state["system"].nvmc
    saved = (tracer.records, nvmc.operations, nvmc.fsm.history)
    tracer.records = []
    nvmc.operations = []
    nvmc.fsm.history = []
    try:
        return SimSnapshot.capture(state, label="aging-epoch")
    finally:
        tracer.records, nvmc.operations, nvmc.fsm.history = saved


def _adopt(snap: SimSnapshot, logs: tuple) -> dict:
    """Restore a capture and transplant the live logs onto the clone."""
    state = snap.restore()
    tracer = state["tracer"]
    nvmc = state["system"].nvmc
    tracer.records, nvmc.operations, nvmc.fsm.history = logs
    return state


def _age_shard(config: AgingConfig, outcome: ShardOutcome,
               state: dict) -> dict:
    """Run one shard's epochs to read-only or the epoch budget.

    ``state`` is the shard's mutable root set (``system``, ``leg``,
    ``tracer``, ``suite``, ``rng``, ``t``); the *final* root set is
    returned — with snapshots on, each epoch boundary captures the set,
    restores it, and *continues on the restored clone*: the closed-form
    fast-forward lands on the snapshot, and the next epoch proves the
    restored graph carried every aging field (read counts, retention
    clocks, victim strategy, block ages) faithfully.
    """
    years = config.years_per_epoch_x1000 / 1000.0
    for epoch in range(1, config.epoch_budget + 1):
        system = state["system"]
        leg = state["leg"]
        log = EpochLog(epoch=epoch)
        baseline = _wear_baseline(system)
        with use_tracer(state["tracer"]):
            t = leg.churn(state["t"], state["rng"], config.steps,
                          epoch * 1_000_000, log)
            trefi = system.spec.trefi_ps
            idle_from = max(t, system.nvmc.ready_ps)
            system.scrubber.patrol(
                idle_from, idle_from + config.scrub_windows * trefi)
            t = max(idle_from + config.scrub_windows * trefi,
                    system.nvmc.ready_ps)
            t = leg.verify(t, log)
        state["t"] = t
        if config.snapshot:
            tracer = state["tracer"]
            nvmc = system.nvmc
            snap = _capture_state(state)
            state = _adopt(snap, (tracer.records, nvmc.operations,
                                  nvmc.fsm.history))
            system = state["system"]
        with use_tracer(state["tracer"]):
            log.retired_free_blocks = _fast_forward(
                system, baseline, outcome.wear_accel, years)
        _census(outcome, system, log)
        outcome.epochs_run = epoch
        if system.health.read_only:
            outcome.read_only_epoch = epoch
            break
    system = state["system"]
    monitor = system.health
    outcome.end_state = monitor.state.label
    outcome.ladder = [tr.to_dict() for tr in monitor.timeline]
    stats = system.nand.ftl.stats
    outcome.waf_x1000 = round(1000 * stats.write_amplification)
    outcome.grown_bad_blocks = stats.grown_bad_blocks
    outcome.scrub_relocations = stats.scrub_relocations
    outcome.retired_free_blocks = sum(
        entry.retired_free_blocks for entry in outcome.epoch_log)
    outcome.data_loss = sum(entry.data_loss for entry in outcome.epoch_log)
    final = EnduranceSnapshot.capture(system.nand.ftl)
    outcome.wear_spread_x1000 = round(1000 * final.wear_spread)
    return state


def _shard_outcome(config: AgingConfig, strategy: str,
                   shard: int) -> ShardOutcome:
    mfg = random.Random(_campaign_seed(config.seed, "mfg", shard))
    accel = max(1, config.wear_accel * (850 + mfg.randrange(301)) // 1000)
    return ShardOutcome(strategy=strategy, shard=shard, wear_accel=accel)


def _fork_state(config: AgingConfig, shard: int,
                snap: SimSnapshot) -> dict:
    state = snap.restore()
    state["system"].nand.reseed(_campaign_seed(config.seed, "media", shard))
    state["rng"] = random.Random(_campaign_seed(config.seed, "work", shard))
    return state


# -- the campaign ------------------------------------------------------------------


def run_aging(config: AgingConfig,
              progress: Callable[[ShardOutcome], None] | None = None,
              ) -> AgingResult:
    """Age the whole population and aggregate the fleet telemetry.

    With ``config.snapshot`` each strategy runs its prefix (bring-up +
    fill, which consumes no workload RNG) once, captures it, and forks
    every shard from the capture with an independent media seed and
    workload RNG; without, every shard reruns the prefix from zero.
    Both paths render byte-identical reports — the soak/fleet
    snapshot-equivalence contract, extended to aging.
    """
    result = AgingResult(config=config)
    for strategy in config.strategies:
        tracer = Tracer(enabled=True, capacity=600_000)
        suite = default_suite(strict=False)
        if config.snapshot:
            with use_tracer(tracer):
                with suite.attach(tracer):
                    system, leg, t = _strategy_prefix(
                        config, strategy, tracer)
                    snap = _capture_state(
                        {"system": system, "leg": leg, "tracer": tracer,
                         "suite": suite, "rng": None, "t": t})
            result.violations += len(suite.violations)
            for shard in range(config.shard_count):
                outcome = _shard_outcome(config, strategy, shard)
                state = _fork_state(config, shard, snap)
                state = _age_shard(config, outcome, state)
                state["suite"].detach()
                result.violations += len(state["suite"].violations)
                result.shards.append(outcome)
                if progress is not None:
                    progress(outcome)
            continue
        # Legacy path: every shard reruns bring-up and fill from zero
        # under the strategy's one shared suite.
        with use_tracer(tracer):
            with suite.attach(tracer):
                for shard in range(config.shard_count):
                    outcome = _shard_outcome(config, strategy, shard)
                    system, leg, t = _strategy_prefix(
                        config, strategy, tracer)
                    system.nand.reseed(
                        _campaign_seed(config.seed, "media", shard))
                    state = {
                        "system": system, "leg": leg, "tracer": tracer,
                        "suite": suite, "t": t,
                        "rng": random.Random(
                            _campaign_seed(config.seed, "work", shard)),
                    }
                    _age_shard(config, outcome, state)
                    result.shards.append(outcome)
                    if progress is not None:
                        progress(outcome)
        result.violations += len(suite.violations)
    return result
