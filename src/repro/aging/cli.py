"""``python -m repro age``: device-lifetime endurance campaigns.

``age run [--quick]`` ages a population of independently-seeded module
shards to organic end-of-life under each FTL victim-selection strategy
and writes a schema-pinned ``AGING_<timestamp>.json`` report.  Exits
non-zero when the campaign fails an acceptance gate: any committed-data
loss, a sanitizer violation, a shard that fail-stopped before reaching
``read_only`` (degradation out of order), or a wear-leveling strategy
that does not beat the greedy baseline's wear spread.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def cmd_run(args: argparse.Namespace) -> int:
    from repro.aging.campaign import AgingConfig, run_aging
    from repro.aging.report import render_report, validate_report
    from repro.errors import ConfigError

    try:
        config = AgingConfig(
            quick=args.quick, seed=args.seed, shards=args.shards,
            max_epochs=args.epochs, snapshot=not args.no_snapshot)
    except ConfigError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    mode = "quick" if config.quick else "full"
    print(f"repro age: {mode} campaign, {config.shard_count} shards x "
          f"{len(config.strategies)} strategies, "
          f"<= {config.epoch_budget} epochs, seed {config.seed}")
    def progress(outcome) -> None:
        print(f"  aged {outcome.strategy}/{outcome.shard}: "
              f"{outcome.epochs_run} epochs, end {outcome.end_state}, "
              f"spread {outcome.wear_spread_x1000}")

    result = run_aging(config, progress=progress)
    timestamp = time.strftime("%Y%m%d-%H%M%S")
    payload = render_report(result, timestamp=timestamp)
    problems = validate_report(json.loads(payload))
    if problems:    # a schema bug is a tooling failure, not an aging failure
        for problem in problems:
            print(f"report schema problem: {problem}", file=sys.stderr)
        return 2
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"AGING_{timestamp}.json"
    path.write_text(payload)
    print(f"wrote {path}")
    for name in config.strategies:
        ttro = result.time_to_read_only(name)
        print(f"  {name:<12} spread={result.mean_wear_spread_x1000(name)} "
              f"waf={result.mean_waf_x1000(name)} "
              f"read_only={ttro['reached']}/{ttro['reached'] + ttro['censored']} "
              f"p50={ttro['p50_epochs']}ep "
              f"survival={result.survival_curve(name)}")
    histogram = result.ladder_histogram()
    print("  ladder: " + " ".join(
        f"{key}={count}" for key, count in sorted(histogram.items())))
    if not result.ok:
        if not result.zero_loss:
            lost = sum(s.data_loss for s in result.shards)
            print(f"aging FAILED: {lost} pages lost", file=sys.stderr)
        if not result.sanitizers_quiet:
            print(f"aging FAILED: {result.violations} sanitizer "
                  "violations", file=sys.stderr)
        if not result.graceful_order:
            bad = [f"{s.strategy}/{s.shard}" for s in result.shards
                   if not s.graceful]
            print(f"aging FAILED: shards {bad} fail-stopped before "
                  "read_only (degradation out of order)", file=sys.stderr)
        if not result.leveling_beats_greedy:
            print("aging FAILED: wear leveling did not beat the greedy "
                  "baseline's wear spread", file=sys.stderr)
        return 1
    print("aging clean: zero data loss, sanitizers quiet, graceful "
          "degradation order, wear leveling beats greedy")
    return 0


def build_parser(sub_or_none: "argparse._SubParsersAction | None" = None
                 ) -> argparse.ArgumentParser:
    """Build the ``age`` parser, standalone or under a parent CLI."""
    if sub_or_none is None:
        parser = argparse.ArgumentParser(prog="repro age")
        sub = parser.add_subparsers(dest="age_command", required=True)
    else:
        parser = sub_or_none.add_parser(
            "age", help="age a module population to end-of-life")
        sub = parser.add_subparsers(dest="age_command", required=True)

    p_run = sub.add_parser(
        "run", help="run the endurance campaign and write a report")
    p_run.add_argument("--quick", action="store_true",
                       help="CI-sized campaign (2 shards, <= 8 epochs)")
    p_run.add_argument("--seed", type=int, default=0,
                       help="campaign seed (default 0)")
    p_run.add_argument("--shards", type=int, default=None,
                       help="shards per strategy "
                            "(default: 2 quick / 4 full)")
    p_run.add_argument("--epochs", type=int, default=None,
                       help="epoch budget per shard "
                            "(default: 8 quick / 14 full)")
    p_run.add_argument("--out", default=".",
                       help="directory for AGING_<timestamp>.json")
    p_run.add_argument("--no-snapshot", action="store_true",
                       help="age each shard on a freshly rebuilt module "
                            "instead of forking the post-fill snapshot "
                            "(slower; byte-identical report)")
    p_run.set_defaults(fn=cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
