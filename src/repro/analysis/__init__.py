"""Result aggregation and rendering.

* :mod:`repro.analysis.stats` — latency accumulators and percentile
  arithmetic used by every runner.
* :mod:`repro.analysis.results` — typed experiment records with
  paper-vs-measured comparison.
* :mod:`repro.analysis.tables` — plain-text tables/series rendering for
  the benchmark harness output (the rows the paper's figures plot).
"""

from repro.analysis.results import Comparison, ExperimentRecord
from repro.analysis.stats import LatencyAccumulator, summarize
from repro.analysis.tables import render_series, render_table

__all__ = [
    "Comparison",
    "ExperimentRecord",
    "LatencyAccumulator",
    "summarize",
    "render_series",
    "render_table",
]
