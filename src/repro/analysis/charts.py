"""ASCII charts for terminal output (no plotting dependencies offline).

Two chart kinds cover everything the paper's figures need:

* :func:`bar_chart` — labelled horizontal bars (Figs. 8, 11, 12);
* :func:`line_chart` — a y-over-x scatter drawn on a character grid
  (Figs. 7, 9, 13).
"""

from __future__ import annotations

from typing import Sequence


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, unit: str = "",
              log: bool = False) -> str:
    """Horizontal bar chart; optionally log-scaled for wide ranges.

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], width=4))
    a 1 ##
    b 2 ####
    """
    import math
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return "(empty chart)"
    if any(v < 0 for v in values):
        raise ValueError("bar charts need non-negative values")

    def scale(value: float) -> float:
        if not log:
            return value
        return math.log10(value + 1.0)

    peak = max(scale(v) for v in values) or 1.0
    label_width = max(len(l) for l in labels)
    number_width = max(len(_fmt(v)) for v in values)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0,
                        round(scale(value) / peak * width))
        lines.append(f"{label.ljust(label_width)} "
                     f"{_fmt(value).rjust(number_width)}{unit} {bar}")
    return "\n".join(lines)


def line_chart(xs: Sequence[float], ys: Sequence[float],
               width: int = 60, height: int = 12,
               x_label: str = "x", y_label: str = "y") -> str:
    """A y-over-x curve on a character grid (ASCII-art line chart)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must align and be non-empty")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = round((x - x_min) / x_span * (width - 1))
        row = height - 1 - round((y - y_min) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = [f"{y_label} (max {_fmt(y_max)}, min {_fmt(y_min)})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {_fmt(x_min)} .. {_fmt(x_max)}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}".rstrip("0").rstrip(".")
