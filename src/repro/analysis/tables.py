"""Plain-text table/series rendering for the benchmark harness."""

from __future__ import annotations

from typing import Any, Sequence


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    out = []
    header_line = " | ".join(c.ljust(w) for c, w in zip(cells[0], widths))
    out.append(header_line.rstrip())
    out.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        out.append(" | ".join(c.ljust(w)
                              for c, w in zip(row, widths)).rstrip())
    return "\n".join(out)


def render_series(name: str, xs: Sequence[Any],
                  ys: Sequence[float], x_label: str = "x",
                  y_label: str = "y") -> str:
    """A figure series as labelled rows (what the paper plots)."""
    rows = [[x, y] for x, y in zip(xs, ys)]
    return f"# {name}\n" + render_table([x_label, y_label], rows)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}".rstrip("0").rstrip(".")
        return f"{value:.3f}"
    return str(value)
