"""Typed experiment records: paper value vs measured value.

Every experiment module emits :class:`ExperimentRecord` rows so that
EXPERIMENTS.md and the benchmark output share one source of truth for
"what the paper reports" vs "what the reproduction measures".
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    label: str
    unit: str
    paper: float | None
    measured: float

    @property
    def ratio(self) -> float | None:
        """measured / paper (None when the paper gives no number)."""
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def __str__(self) -> str:
        if self.paper is None:
            return f"{self.label}: measured {self.measured:.1f} {self.unit}"
        ratio = "" if self.ratio is None else f" (x{self.ratio:.2f})"
        return (f"{self.label}: paper {self.paper:.1f} / measured "
                f"{self.measured:.1f} {self.unit}{ratio}")


@dataclass
class ExperimentRecord:
    """One table/figure reproduction outcome."""

    experiment_id: str            # "fig8", "fig11", "validation", ...
    title: str
    comparisons: list[Comparison] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, label: str, unit: str, paper: float | None,
            measured: float) -> Comparison:
        comparison = Comparison(label, unit, paper, measured)
        self.comparisons.append(comparison)
        return comparison

    def note(self, text: str) -> None:
        self.notes.append(text)

    def worst_ratio_error(self) -> float:
        """Largest |log-ratio| across points with paper values."""
        worst = 0.0
        for comparison in self.comparisons:
            ratio = comparison.ratio
            if ratio is not None and ratio > 0:
                import math
                worst = max(worst, abs(math.log(ratio)))
        return worst

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    def __str__(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.extend(f"  {comparison}" for comparison in self.comparisons)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)
