"""Export experiment records to CSV / JSON for external analysis.

The benchmark harness prints human tables; this module produces the
machine-readable forms (one row per comparison) so results can be
diffed across runs or pulled into a notebook.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.analysis.results import ExperimentRecord

CSV_COLUMNS = ("experiment_id", "title", "label", "unit", "paper",
               "measured", "ratio")


def to_csv(records: Iterable[ExperimentRecord]) -> str:
    """All comparisons of all records as CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(CSV_COLUMNS)
    for record in records:
        for c in record.comparisons:
            writer.writerow([
                record.experiment_id, record.title, c.label, c.unit,
                "" if c.paper is None else c.paper,
                c.measured,
                "" if c.ratio is None else f"{c.ratio:.6g}",
            ])
    return out.getvalue()


def to_json(records: Iterable[ExperimentRecord]) -> str:
    """All records as a JSON document (notes included)."""
    payload = []
    for record in records:
        payload.append({
            "experiment_id": record.experiment_id,
            "title": record.title,
            "comparisons": [
                {"label": c.label, "unit": c.unit, "paper": c.paper,
                 "measured": c.measured, "ratio": c.ratio}
                for c in record.comparisons
            ],
            "notes": list(record.notes),
        })
    return json.dumps(payload, indent=2, sort_keys=True)


def load_json(text: str) -> list[ExperimentRecord]:
    """Round-trip loader for :func:`to_json` output."""
    records = []
    for item in json.loads(text):
        record = ExperimentRecord(item["experiment_id"], item["title"])
        for c in item["comparisons"]:
            record.add(c["label"], c["unit"], c["paper"], c["measured"])
        for note in item["notes"]:
            record.note(note)
        records.append(record)
    return records


def diff_runs(old: list[ExperimentRecord],
              new: list[ExperimentRecord],
              tolerance: float = 0.02) -> list[str]:
    """Regression check between two exported runs.

    Returns human-readable lines for every measured value that moved by
    more than ``tolerance`` (relative); empty list = no drift.
    """
    old_index = {(r.experiment_id, c.label, c.unit): c.measured
                 for r in old for c in r.comparisons}
    drifts = []
    for record in new:
        for c in record.comparisons:
            key = (record.experiment_id, c.label, c.unit)
            if key not in old_index:
                drifts.append(f"NEW {key}: {c.measured:g}")
                continue
            before = old_index[key]
            if before == 0:
                moved = c.measured != 0
            else:
                moved = abs(c.measured - before) / abs(before) > tolerance
            if moved:
                drifts.append(
                    f"DRIFT {key}: {before:g} -> {c.measured:g}")
    return drifts
