"""Latency accumulation and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass


class LatencyAccumulator:
    """Collects per-op latencies (ps) and answers summary queries."""

    def __init__(self) -> None:
        self._samples: list[int] = []
        self._sorted = True

    def record(self, latency_ps: int) -> None:
        """Add one sample."""
        self._samples.append(latency_ps)
        self._sorted = False

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean_ps(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def mean_us(self) -> float:
        return self.mean_ps / 1e6

    def percentile_ps(self, pct: float) -> int:
        """Nearest-rank percentile."""
        if not self._samples:
            return 0
        self._ensure_sorted()
        if not 0 < pct <= 100:
            raise ValueError(f"percentile must be in (0, 100]: {pct}")
        rank = max(1, round(pct / 100 * len(self._samples)))
        return self._samples[rank - 1]

    def percentile_us(self, pct: float) -> float:
        return self.percentile_ps(pct) / 1e6

    @property
    def min_ps(self) -> int:
        self._ensure_sorted()
        return self._samples[0] if self._samples else 0

    @property
    def max_ps(self) -> int:
        self._ensure_sorted()
        return self._samples[-1] if self._samples else 0


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one latency population (us)."""

    count: int
    mean_us: float
    p50_us: float
    p99_us: float
    min_us: float
    max_us: float


def summarize(acc: LatencyAccumulator) -> Summary:
    """Freeze an accumulator into a summary record."""
    return Summary(count=acc.count, mean_us=acc.mean_us,
                   p50_us=acc.percentile_us(50),
                   p99_us=acc.percentile_us(99),
                   min_us=acc.min_ps / 1e6, max_us=acc.max_ps / 1e6)
