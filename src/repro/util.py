"""Small shared helpers used across subsystem CLIs.

Kept deliberately tiny: anything here is imported by several otherwise
unrelated packages (experiments, fleet), so it must stay dependency-free.
"""

from __future__ import annotations


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalise a ``--jobs`` value: int, ``"auto"`` or None (=1).

    ``"auto"`` means one worker per CPU.  Every CLI that fans work out
    over a process pool (``repro experiments --jobs``, ``repro fleet
    run --jobs``) parses its flag through this one helper so the
    accepted spellings cannot drift apart.
    """
    if jobs is None:
        return 1
    if jobs == "auto":
        import os
        return max(1, os.cpu_count() or 1)
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs
