"""CPU cache with the explicit-coherence operations the driver needs.

§V-B: device-side DMA during the tRFC window is invisible to the CPU's
coherence fabric, so

* before a **writeback** the driver must ``clflush`` + ``sfence`` the
  victim page's lines (else the device snapshots stale DRAM);
* after a **cachefill** the driver must ``invalidate`` the filled page's
  lines (else the CPU keeps serving pre-fill data, and a later eviction
  of those stale dirty lines would overwrite the new page).

This model is a write-back, write-allocate LRU cache over a pluggable
memory backend.  It is *data-functional*: the coherence experiments
assert byte-exact outcomes; timing belongs to ``repro.perf``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol

from repro.cpu.cacheline import CacheLine, line_addr, lines_covering
from repro.units import CACHELINE


class MemoryBackend(Protocol):
    """What the cache sits in front of (ultimately the DRAM device)."""

    def mem_read(self, addr: int, nbytes: int) -> bytes: ...

    def mem_write(self, addr: int, data: bytes) -> None: ...


@dataclass
class CacheStats:
    """Hit/miss and coherence-operation counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    clflushes: int = 0
    invalidates: int = 0
    sfences: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CPUCache:
    """Write-back, write-allocate, LRU-replacement cache."""

    def __init__(self, backend: MemoryBackend,
                 capacity_lines: int = 8192) -> None:
        if capacity_lines < 1:
            raise ValueError("cache needs at least one line")
        self.backend = backend
        self.capacity_lines = capacity_lines
        self._lines: OrderedDict[int, CacheLine] = OrderedDict()
        self.stats = CacheStats()

    # -- loads/stores ------------------------------------------------------------

    def load(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes``, filling lines from the backend on miss."""
        out = bytearray()
        for la in lines_covering(addr, nbytes):
            line = self._get_line(la)
            start = max(addr, la) - la
            end = min(addr + nbytes, la + CACHELINE) - la
            out.extend(line.read(start, end - start))
        return bytes(out)

    def store(self, addr: int, data: bytes) -> None:
        """Write ``data``, allocating lines on miss (write-allocate)."""
        offset = 0
        for la in lines_covering(addr, len(data)):
            line = self._get_line(la)
            start = max(addr, la) - la
            end = min(addr + len(data), la + CACHELINE) - la
            line.write(start, data[offset:offset + (end - start)])
            offset += end - start

    # -- explicit coherence (the §V-B toolbox) --------------------------------------

    def clflush(self, addr: int) -> None:
        """Flush-and-invalidate the line containing ``addr``."""
        self.stats.clflushes += 1
        la = line_addr(addr)
        line = self._lines.pop(la, None)
        if line is not None and line.dirty:
            self.backend.mem_write(la, bytes(line.data))
            self.stats.writebacks += 1

    def clwb(self, addr: int) -> None:
        """Write back the line but keep it cached (clean)."""
        la = line_addr(addr)
        line = self._lines.get(la)
        if line is not None and line.dirty:
            self.backend.mem_write(la, bytes(line.data))
            line.dirty = False
            self.stats.writebacks += 1

    def invalidate(self, addr: int) -> None:
        """Drop the line *without* writing it back.

        This is what the driver does after a cachefill: any cached copy
        predates the device's DMA and must not survive — flushing it
        would overwrite the fresh page with stale bytes.
        """
        self.stats.invalidates += 1
        self._lines.pop(line_addr(addr), None)

    def flush_range(self, addr: int, nbytes: int) -> None:
        """clflush every line of a byte range (pre-writeback sweep)."""
        for la in lines_covering(addr, nbytes):
            self.clflush(la)

    def invalidate_range(self, addr: int, nbytes: int) -> None:
        """Invalidate every line of a byte range (post-cachefill sweep)."""
        for la in lines_covering(addr, nbytes):
            self.invalidate(la)

    def sfence(self) -> None:
        """Order prior flushes; counted for the overhead model."""
        self.stats.sfences += 1

    def drain_all(self) -> None:
        """Flush the whole cache (used by tests and recovery paths)."""
        for la in list(self._lines):
            self.clflush(la)

    # -- inspection ---------------------------------------------------------------------

    def contains(self, addr: int) -> bool:
        return line_addr(addr) in self._lines

    def is_dirty(self, addr: int) -> bool:
        line = self._lines.get(line_addr(addr))
        return bool(line and line.dirty)

    def __len__(self) -> int:
        return len(self._lines)

    # -- internals ------------------------------------------------------------------------

    def _get_line(self, la: int) -> CacheLine:
        line = self._lines.get(la)
        if line is not None:
            self.stats.hits += 1
            self._lines.move_to_end(la)
            return line
        self.stats.misses += 1
        data = bytearray(self.backend.mem_read(la, CACHELINE))
        line = CacheLine(addr=la, data=data)
        self._lines[la] = line
        if len(self._lines) > self.capacity_lines:
            self._evict_lru()
        return line

    def _evict_lru(self) -> None:
        la, line = self._lines.popitem(last=False)
        self.stats.evictions += 1
        if line.dirty:
            self.backend.mem_write(la, bytes(line.data))
            self.stats.writebacks += 1
