"""A single cacheline: 64 bytes with dirty/valid state."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import CACHELINE


@dataclass
class CacheLine:
    """One 64 B line, tagged by its aligned physical address."""

    addr: int
    data: bytearray = field(default_factory=lambda: bytearray(CACHELINE))
    dirty: bool = False

    def __post_init__(self) -> None:
        if self.addr % CACHELINE:
            raise ValueError(f"cacheline address {self.addr:#x} unaligned")
        if len(self.data) != CACHELINE:
            raise ValueError("cacheline payload must be 64 B")

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read within the line."""
        return bytes(self.data[offset:offset + nbytes])

    def write(self, offset: int, payload: bytes) -> None:
        """Write within the line and mark it dirty."""
        self.data[offset:offset + len(payload)] = payload
        self.dirty = True


def line_addr(addr: int) -> int:
    """The aligned address of the line containing ``addr``."""
    return addr - (addr % CACHELINE)


def lines_covering(addr: int, nbytes: int) -> list[int]:
    """Aligned addresses of every line an access touches."""
    first = line_addr(addr)
    last = line_addr(addr + nbytes - 1)
    return list(range(first, last + CACHELINE, CACHELINE))
