"""A hardware-thread context: loads/stores through MMU and cache.

This is the top of the host-side data path the applications use once a
DAX mapping exists: virtual address -> MMU (TLB / page walk / fault) ->
physical address -> CPU cache -> DRAM.  FIO's libpmem engine and the
STREAM validation loop both run on these cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.cache import CPUCache
from repro.cpu.mmu import MMU
from repro.units import PAGE_4K


@dataclass
class CoreStats:
    loads: int = 0
    stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0


class CPUCore:
    """One hardware thread sharing an MMU and cache with its siblings."""

    def __init__(self, core_id: int, mmu: MMU, cache: CPUCache) -> None:
        self.core_id = core_id
        self.mmu = mmu
        self.cache = cache
        self.stats = CoreStats()

    def load(self, vaddr: int, nbytes: int) -> bytes:
        """Virtual-address read, split at page boundaries."""
        out = bytearray()
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, PAGE_4K - vaddr % PAGE_4K)
            paddr = self.mmu.translate(vaddr, write=False)
            out.extend(self.cache.load(paddr, chunk))
            vaddr += chunk
            remaining -= chunk
        self.stats.loads += 1
        self.stats.bytes_loaded += nbytes
        return bytes(out)

    def store(self, vaddr: int, data: bytes) -> None:
        """Virtual-address write, split at page boundaries."""
        offset = 0
        while offset < len(data):
            chunk = min(len(data) - offset, PAGE_4K - vaddr % PAGE_4K)
            paddr = self.mmu.translate(vaddr, write=True)
            self.cache.store(paddr, data[offset:offset + chunk])
            vaddr += chunk
            offset += chunk
        self.stats.stores += 1
        self.stats.bytes_stored += len(data)

    # -- user-space persistence instructions (libpmem style) ---------------------

    def clflush_range(self, vaddr: int, nbytes: int) -> None:
        """Flush the lines of a virtual range (needs valid mappings)."""
        offset = 0
        while offset < nbytes:
            chunk = min(nbytes - offset, PAGE_4K - (vaddr + offset) % PAGE_4K)
            paddr = self.mmu.translate(vaddr + offset, write=False)
            self.cache.flush_range(paddr, chunk)
            offset += chunk

    def sfence(self) -> None:
        self.cache.sfence()
