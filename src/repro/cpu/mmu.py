"""MMU: page tables, a TLB, and the registrable fault handler.

§II-A: a DAX access "involves a page fault exception if the
corresponding virtual-to-physical mapping is not residing in the MMU
mappings"; the kernel routes the fault to the handler the device driver
registered.  This module supplies exactly that machinery: 4 KB pages, a
small LRU TLB in front of the page table, and per-range fault handlers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import KernelError
from repro.units import PAGE_4K


class PageFault(Exception):
    """Raised internally when no PTE covers a virtual address.

    Escapes to the caller only when no registered handler resolves the
    fault (a SIGSEGV, in effect).
    """

    def __init__(self, vaddr: int) -> None:
        super().__init__(f"page fault at {vaddr:#x}")
        self.vaddr = vaddr


@dataclass
class PageTableEntry:
    """One 4 KB mapping."""

    vpn: int
    pfn: int
    writable: bool = True
    dirty: bool = False
    accessed: bool = False


#: A fault handler takes the faulting vaddr and returns True if it
#: established a mapping (the access is then retried).
FaultHandler = Callable[[int], bool]


@dataclass
class MMUStats:
    tlb_hits: int = 0
    tlb_misses: int = 0
    page_walks: int = 0
    faults: int = 0
    unresolved_faults: int = 0

    @property
    def tlb_hit_rate(self) -> float:
        total = self.tlb_hits + self.tlb_misses
        return self.tlb_hits / total if total else 0.0


class MMU:
    """Per-process address translation with a TLB and DAX fault hooks."""

    def __init__(self, tlb_entries: int = 64) -> None:
        self.page_table: dict[int, PageTableEntry] = {}
        self._tlb: OrderedDict[int, PageTableEntry] = OrderedDict()
        self.tlb_entries = tlb_entries
        self._handlers: list[tuple[int, int, FaultHandler]] = []
        self.stats = MMUStats()

    # -- mapping management --------------------------------------------------------

    def map_page(self, vpn: int, pfn: int, writable: bool = True) -> None:
        """Install a PTE (driver/filesystem side)."""
        self.page_table[vpn] = PageTableEntry(vpn=vpn, pfn=pfn,
                                              writable=writable)

    def unmap_page(self, vpn: int) -> None:
        """Remove a PTE and shoot down its TLB entry."""
        self.page_table.pop(vpn, None)
        self._tlb.pop(vpn, None)

    def pte(self, vpn: int) -> PageTableEntry | None:
        return self.page_table.get(vpn)

    def register_fault_handler(self, vaddr_start: int, length: int,
                               handler: FaultHandler) -> None:
        """Register a handler for faults in [start, start+length)."""
        self._handlers.append((vaddr_start, vaddr_start + length, handler))

    # -- translation -------------------------------------------------------------------

    def translate(self, vaddr: int, write: bool = False) -> int:
        """Virtual to physical, faulting into handlers as needed."""
        vpn = vaddr // PAGE_4K
        entry = self._tlb.get(vpn)
        if entry is not None:
            self.stats.tlb_hits += 1
            self._tlb.move_to_end(vpn)
        else:
            self.stats.tlb_misses += 1
            entry = self._walk(vpn)
            if entry is None:
                entry = self._fault(vaddr)
            self._tlb_fill(vpn, entry)
        if write and not entry.writable:
            raise KernelError(f"write to read-only page at {vaddr:#x}")
        entry.accessed = True
        if write:
            entry.dirty = True
        return entry.pfn * PAGE_4K + (vaddr % PAGE_4K)

    def _walk(self, vpn: int) -> PageTableEntry | None:
        self.stats.page_walks += 1
        return self.page_table.get(vpn)

    def _fault(self, vaddr: int) -> PageTableEntry:
        """Dispatch a fault to the registered handlers (§II-A flow)."""
        self.stats.faults += 1
        for start, end, handler in self._handlers:
            if start <= vaddr < end:
                if handler(vaddr):
                    entry = self.page_table.get(vaddr // PAGE_4K)
                    if entry is None:
                        raise KernelError(
                            "fault handler claimed success but installed "
                            f"no PTE for {vaddr:#x}")
                    return entry
        self.stats.unresolved_faults += 1
        raise PageFault(vaddr)

    def _tlb_fill(self, vpn: int, entry: PageTableEntry) -> None:
        self._tlb[vpn] = entry
        if len(self._tlb) > self.tlb_entries:
            self._tlb.popitem(last=False)

    def flush_tlb(self) -> None:
        """Full TLB shootdown."""
        self._tlb.clear()

    @property
    def mapped_pages(self) -> int:
        return len(self.page_table)
