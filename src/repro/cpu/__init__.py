"""Host CPU model: caches with explicit flush semantics, MMU, cores.

The pieces of the x86 host that the NVDIMM-C software stack leans on:

* :mod:`repro.cpu.cache` — a cacheline-granularity cache with
  ``clflush`` / ``clwb`` / ``invalidate`` / ``sfence`` semantics.  The
  §V-B coherence hazards (device DMA is invisible to the coherence
  fabric) are reproduced — and fixed — at this level.
* :mod:`repro.cpu.mmu` — page tables, a TLB, and the page-fault hook
  that the DAX filesystem layer registers into (§II-A).
* :mod:`repro.cpu.core` — hardware-thread contexts issuing loads and
  stores through the MMU and cache.
"""

from repro.cpu.cache import CPUCache, MemoryBackend
from repro.cpu.cacheline import CacheLine
from repro.cpu.core import CPUCore
from repro.cpu.mmu import MMU, PageFault, PageTableEntry

__all__ = [
    "CPUCache",
    "MemoryBackend",
    "CacheLine",
    "CPUCore",
    "MMU",
    "PageFault",
    "PageTableEntry",
]
