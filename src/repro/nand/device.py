"""NAND die model: blocks, pages, Read/Program/Erase semantics.

NAND's physical rules shape everything above it and are enforced here:

* a page must be erased before it can be programmed;
* pages within a block must be programmed in order;
* erase works on whole blocks and wears them out (P/E cycles);
* blocks can be bad — from the factory or by wear-out.

Data is stored sparsely per programmed page.  Addresses within a die are
``(plane, block, page)``; flattening across dies/channels is the
controller's and FTL's business.

Each page also carries an **out-of-band spare area** (OOB): real NAND
pages are ``page_bytes + spare_bytes`` wide, and controllers stash
logical metadata in the spare so flash is self-describing after a power
cut.  The die stores whatever opaque object the caller programs
alongside the payload and hands it back on :meth:`read_oob`; the FTL
stamps ``(lpn, seq, crc)`` there (see :class:`repro.nand.ftl.OOB`).

A power cut mid-program tears the page: :meth:`program_torn` models the
half-written cells (leading bytes programmed, the rest still erased
0xFF) while keeping the *intended* OOB stamp, so mount-time recovery can
detect the tear by CRC mismatch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MediaError
from repro.nand.spec import ZNANDSpec
from repro.sim.snapshot import SnapshotMixin


class PageState(enum.Enum):
    """A page is erased, holds data, or holds stale (invalidated) data."""

    ERASED = "erased"
    PROGRAMMED = "programmed"


@dataclass(slots=True)
class BlockInfo:
    """Per-block wear and health bookkeeping."""

    erase_count: int = 0
    bad: bool = False
    next_page: int = 0    # program-in-order cursor
    read_count: int = 0   # reads since last erase (read disturb)
    aged_years: float = 0.0    # retention age of the resident data

    def __reduce__(self):
        # One entry per touched block, snapshot-hot (see OOB.__reduce__).
        return (BlockInfo, (self.erase_count, self.bad, self.next_page,
                            self.read_count, self.aged_years))


class NANDDie(SnapshotMixin):
    """One die: ``planes_per_die`` planes of ``blocks_per_plane`` blocks."""

    def __init__(self, spec: ZNANDSpec, die_index: int = 0,
                 rng_seed: int | None = None) -> None:
        spec.validate()
        self.spec = spec
        self.die_index = die_index
        # Geometry bounds and the erased-page pattern, denormalized from
        # the spec: the bounds checks run on every media operation and
        # the spec derives these through arithmetic properties.  The
        # erased singleton also means every erased read aliases one
        # immutable object instead of allocating a fresh page.
        self._planes = spec.planes_per_die
        self._blocks_per_plane = spec.blocks_per_plane
        self._pages_per_block = spec.pages_per_block
        self._erased_page = b"\xff" * spec.page_bytes
        self.blocks: dict[tuple[int, int], BlockInfo] = {}
        self._data: dict[tuple[int, int, int], bytes] = {}
        self._oob: dict[tuple[int, int, int], object] = {}
        self.reads = 0
        self.programs = 0
        self.erases = 0
        self.torn_programs = 0
        #: Armed by fault injectors: the next N program/erase operations
        #: fail with :class:`MediaError` before mutating any state, the
        #: way a worn cell fails status-check on real silicon.
        self.fail_next_programs = 0
        self.fail_next_erases = 0
        self.injected_program_failures = 0
        self.injected_erase_failures = 0
        if rng_seed is not None:
            self._seed_factory_bad_blocks(rng_seed)

    # -- fault injection ----------------------------------------------------

    def inject_program_failures(self, count: int = 1) -> None:
        """Arm the next ``count`` page programs to fail."""
        self.fail_next_programs += count

    def inject_erase_failures(self, count: int = 1) -> None:
        """Arm the next ``count`` block erases to fail."""
        self.fail_next_erases += count

    def _seed_factory_bad_blocks(self, seed: int) -> None:
        """Mark factory bad blocks pseudo-randomly (ppm from the spec)."""
        import random
        rng = random.Random(seed ^ (self.die_index * 0x9E3779B9))
        for plane in range(self.spec.planes_per_die):
            for block in range(self.spec.blocks_per_plane):
                if rng.random() < self.spec.initial_bad_block_ppm / 1e6:
                    self.block_info(plane, block).bad = True

    def block_info(self, plane: int, block: int) -> BlockInfo:
        self._check_block(plane, block)
        key = (plane, block)
        info = self.blocks.get(key)
        if info is None:
            info = BlockInfo()
            self.blocks[key] = info
        return info

    # -- operations ---------------------------------------------------------

    def read_page(self, plane: int, block: int, page: int) -> bytes:
        """Raw page read; erased pages read as all-0xFF (NAND idiom)."""
        self._check_page(plane, block, page)
        info = self.block_info(plane, block)
        if info.bad:
            raise MediaError(
                f"die {self.die_index}: read from bad block "
                f"({plane},{block})")
        self.reads += 1
        info.read_count += 1
        data = self._data.get((plane, block, page))
        if data is None:
            return self._erased_page
        return data

    def read_oob(self, plane: int, block: int, page: int) -> object | None:
        """Read a page's spare area; ``None`` if never stamped."""
        self._check_page(plane, block, page)
        return self._oob.get((plane, block, page))

    def program_page(self, plane: int, block: int, page: int,
                     data: bytes, oob: object | None = None) -> None:
        """Program a page; must target the block's next erased page."""
        self._check_page(plane, block, page)
        if len(data) != self.spec.page_bytes:
            raise MediaError(
                f"program data must be exactly {self.spec.page_bytes} B, "
                f"got {len(data)}")
        info = self.block_info(plane, block)
        if info.bad:
            raise MediaError(
                f"die {self.die_index}: program to bad block "
                f"({plane},{block})")
        if page != info.next_page:
            raise MediaError(
                f"die {self.die_index}: out-of-order program "
                f"(page {page}, expected {info.next_page}) in block "
                f"({plane},{block})")
        if info.erase_count == 0 and info.next_page == 0 and (
                (plane, block, page) in self._data):
            raise MediaError("program to non-erased page")
        if self.fail_next_programs > 0:
            self.fail_next_programs -= 1
            self.injected_program_failures += 1
            raise MediaError(
                f"die {self.die_index}: injected program failure in block "
                f"({plane},{block})")
        info.next_page += 1
        self._data[(plane, block, page)] = bytes(data)
        if oob is not None:
            self._oob[(plane, block, page)] = oob
        self.programs += 1

    def program_torn(self, plane: int, block: int, page: int,
                     data: bytes, oob: object | None = None) -> None:
        """Program a page torn by a power cut mid-operation.

        The leading half of the payload reaches the cells; the trailing
        half stays erased (0xFF).  The OOB stamp is the one the full
        program *intended* — recovery must notice the payload no longer
        matches the stamp's CRC and quarantine the page.
        """
        half = len(data) // 2
        torn = bytes(data[:half]) + b"\xff" * (len(data) - half)
        self.program_page(plane, block, page, torn, oob=oob)
        self.torn_programs += 1

    def erase_block(self, plane: int, block: int) -> None:
        """Erase a whole block, aging it; wears out at endurance limit."""
        self._check_block(plane, block)
        info = self.block_info(plane, block)
        if info.bad:
            raise MediaError(
                f"die {self.die_index}: erase of bad block "
                f"({plane},{block})")
        if self.fail_next_erases > 0:
            self.fail_next_erases -= 1
            self.injected_erase_failures += 1
            raise MediaError(
                f"die {self.die_index}: injected erase failure in block "
                f"({plane},{block})")
        for page in range(self.spec.pages_per_block):
            self._data.pop((plane, block, page), None)
            self._oob.pop((plane, block, page), None)
        info.erase_count += 1
        info.next_page = 0
        info.read_count = 0    # erase resets read disturb...
        info.aged_years = 0.0  # ...and the retention clock
        self.erases += 1
        if info.erase_count >= self.spec.endurance_pe_cycles:
            info.bad = True

    def mark_bad(self, plane: int, block: int) -> None:
        """Retire a block (grown bad block)."""
        self.block_info(plane, block).bad = True

    # -- queries -----------------------------------------------------------------

    def page_state(self, plane: int, block: int, page: int) -> PageState:
        self._check_page(plane, block, page)
        if (plane, block, page) in self._data:
            return PageState.PROGRAMMED
        return PageState.ERASED

    def is_bad(self, plane: int, block: int) -> bool:
        return self.block_info(plane, block).bad

    def good_blocks(self) -> list[tuple[int, int]]:
        """All (plane, block) pairs not marked bad."""
        out = []
        for plane in range(self.spec.planes_per_die):
            for block in range(self.spec.blocks_per_plane):
                if not self.block_info(plane, block).bad:
                    out.append((plane, block))
        return out

    # -- bounds -------------------------------------------------------------------

    def _check_block(self, plane: int, block: int) -> None:
        if not (0 <= plane < self._planes
                and 0 <= block < self._blocks_per_plane):
            raise MediaError(
                f"die {self.die_index}: block address out of range "
                f"({plane},{block})")

    def _check_page(self, plane: int, block: int, page: int) -> None:
        self._check_block(plane, block)
        if not 0 <= page < self._pages_per_block:
            raise MediaError(
                f"die {self.die_index}: page {page} out of range")
