"""ECC model over 4 KB codewords with wear-driven bit-error injection.

The NVMC performs error correction "at the granularity of 4 KB"
(§III-A).  Rather than implement a real BCH/LDPC codec bit-for-bit, the
model captures the externally visible contract:

* ``encode`` wraps a 4 KB payload with parity metadata (a checksum plus
  the correction budget);
* the raw channel can flip bits (injection is driven by a deterministic
  RNG and a raw-bit-error-rate that grows with the block's P/E count);
* ``decode`` corrects up to ``t`` flipped bits per codeword, restoring
  the exact payload, and raises
  :class:`~repro.errors.UncorrectableError` beyond that.

Because injected errors are recorded alongside the codeword, correction
is exact — what a real code guarantees within its budget — while the
failure statistics match the RBER model.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field


from repro.errors import UncorrectableError


@dataclass
class ECCStats:
    """Aggregate codec counters."""

    encoded: int = 0
    decoded: int = 0
    bits_corrected: int = 0
    uncorrectable: int = 0


@dataclass
class Codeword:
    """An encoded page: payload + parity descriptor + injected errors."""

    payload: bytes
    checksum: bytes
    flipped_bits: list[int] = field(default_factory=list)


class ECCCodec:
    """A ``t``-bit-correcting code over 4 KB payloads.

    ``t`` defaults to 72 bits per 4 KB codeword — a typical BCH budget
    for SLC-class NAND.
    """

    def __init__(self, t_bits: int = 72, payload_bytes: int = 4096,
                 seed: int = 0x5EED) -> None:
        self.t_bits = t_bits
        self.payload_bytes = payload_bytes
        self.stats = ECCStats()
        self._rng = random.Random(seed)
        #: Armed by fault injectors: the next N decodes fail
        #: uncorrectably regardless of actual flip counts (models a page
        #: whose raw errors exceed any retry's correction budget).
        self.force_uncorrectable = 0

    def inject_uncorrectable(self, count: int = 1) -> None:
        """Arm the next ``count`` decodes to fail uncorrectably."""
        self.force_uncorrectable += count

    def reseed(self, seed: int) -> None:
        """Replace the media RNG (fleet shards forked from one snapshot
        diverge here: same state, independent future error draws)."""
        self._rng = random.Random(seed)

    # -- codec -------------------------------------------------------------------

    def encode(self, payload: bytes) -> Codeword:
        """Wrap a payload in a codeword."""
        if len(payload) != self.payload_bytes:
            raise UncorrectableError(
                f"codeword payload must be {self.payload_bytes} B, "
                f"got {len(payload)}")
        self.stats.encoded += 1
        return Codeword(payload=bytes(payload),
                        checksum=self._digest(payload))

    def inject_errors(self, codeword: Codeword, rber: float) -> int:
        """Flip bits at raw bit-error-rate ``rber``; returns flips added."""
        total_bits = self.payload_bytes * 8
        # Expected flips ~ Binomial(total_bits, rber); sample cheaply.
        expected = total_bits * rber
        flips = self._sample_poisson(expected)
        for _ in range(flips):
            codeword.flipped_bits.append(self._rng.randrange(total_bits))
        return flips

    def decode(self, codeword: Codeword) -> bytes:
        """Recover the payload, correcting up to ``t`` raw bit errors."""
        self.stats.decoded += 1
        if self.force_uncorrectable > 0:
            self.force_uncorrectable -= 1
            self.stats.uncorrectable += 1
            raise UncorrectableError("injected uncorrectable codeword")
        distinct = set(codeword.flipped_bits)
        # Bits flipped an even number of times cancel out on the wire.
        odd_flips = [b for b in distinct
                     if codeword.flipped_bits.count(b) % 2 == 1]
        if len(odd_flips) > self.t_bits:
            self.stats.uncorrectable += 1
            raise UncorrectableError(
                f"{len(odd_flips)} raw bit errors exceed the "
                f"{self.t_bits}-bit correction budget")
        self.stats.bits_corrected += len(odd_flips)
        payload = codeword.payload
        if self._digest(payload) != codeword.checksum:
            self.stats.uncorrectable += 1
            raise UncorrectableError("payload does not match parity")
        return payload

    # -- RBER model -----------------------------------------------------------------

    @staticmethod
    def rber_for_wear(erase_count: int, endurance: int,
                      floor: float = 1e-8, ceiling: float = 1e-4) -> float:
        """Raw bit-error rate as a function of block wear.

        Fresh blocks sit at ``floor``; RBER grows quadratically toward
        ``ceiling`` at the endurance limit — the conventional SLC wear
        curve shape.
        """
        if endurance <= 0:
            return ceiling
        x = min(1.0, erase_count / endurance)
        return floor + (ceiling - floor) * x * x

    def _sample_poisson(self, mean: float) -> int:
        """Small-mean Poisson sampler (Knuth) for flip counts."""
        if mean <= 0:
            return 0
        if mean > 30:
            # Gaussian approximation for large means.
            value = round(self._rng.gauss(mean, mean ** 0.5))
            return max(0, value)
        limit = 2.718281828459045 ** (-mean)
        k, product = 0, 1.0
        while True:
            product *= self._rng.random()
            if product <= limit:
                return k
            k += 1

    @staticmethod
    def _digest(payload: bytes) -> bytes:
        return hashlib.blake2b(payload, digest_size=8).digest()


@dataclass(frozen=True)
class AgingParams:
    """Closed-form retention and read-disturb terms composing with wear.

    The composed RBER for a block is::

        wear      = ECCCodec.rber_for_wear(erase_count, endurance)
        retention = retention_per_year * aged_years
                    * (1 + wear_retention_boost * x**2)   # x = wear ratio
        disturb   = read_disturb_per_kread * read_count / 1000
        rber      = min(ceiling, wear + retention + disturb)

    All three terms are deterministic functions of per-block counters
    (:class:`repro.nand.device.BlockInfo`), so a fast-forward that bumps
    those counters ages the media without event-by-event simulation.
    The ``ceiling`` caps the composed rate below the uncorrectable
    threshold for a single read (t=72 over 32768 bits ≈ 2.2e-3) so old
    media fails through retries and grown bad blocks, not instant loss.
    """

    retention_per_year: float = 2e-5
    wear_retention_boost: float = 4.0
    read_disturb_per_kread: float = 5e-7
    ceiling: float = 1.5e-3

    def rber(self, erase_count: int, endurance: int, aged_years: float,
             read_count: int, floor: float = 1e-8,
             wear_ceiling: float = 1e-4) -> float:
        """Composed RBER: wear + retention + read disturb, capped."""
        wear = ECCCodec.rber_for_wear(erase_count, endurance,
                                      floor=floor, ceiling=wear_ceiling)
        x = 1.0 if endurance <= 0 else min(1.0, erase_count / endurance)
        retention = (self.retention_per_year * max(0.0, aged_years)
                     * (1.0 + self.wear_retention_boost * x * x))
        disturb = self.read_disturb_per_kread * max(0, read_count) / 1000.0
        return min(self.ceiling, wear + retention + disturb)
