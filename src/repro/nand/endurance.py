"""Endurance accounting and lifetime projection for the Z-NAND backend.

An SCM device is written like memory, not like storage: the sustained
uncached write path (~58 MB/s on the PoC, §VII-B2) programs NAND
continuously.  This module answers the question a deployment would ask:
*how long does the module live?*

    lifetime = raw_capacity * endurance / (WAF * write_rate)

with the write-amplification factor (WAF) taken from the FTL's real
counters and the wear spread measured across blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nand.ftl import FlashTranslationLayer
from repro.nand.spec import ZNANDSpec

SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class EnduranceReport:
    """Wear state of one FTL at a point in time."""

    host_programs: int
    total_programs: int
    write_amplification: float
    erases: int
    mean_erase_count: float
    max_erase_count: int
    endurance_pe_cycles: int

    @property
    def wear_spread(self) -> float:
        """max/mean erase count: 1.0 = perfect wear levelling."""
        if self.mean_erase_count == 0:
            return 1.0
        return self.max_erase_count / self.mean_erase_count

    @property
    def life_consumed(self) -> float:
        """Fraction of the worst block's endurance already used."""
        return self.max_erase_count / self.endurance_pe_cycles


@dataclass(frozen=True)
class EnduranceSnapshot:
    """Per-epoch wear/health census across *all* blocks of one module.

    Unlike :func:`report` — which reads only good blocks, the view that
    matters for remaining lifetime — the snapshot keeps retired blocks
    in the census so the wear spread a leveling strategy is judged on
    cannot improve by wearing blocks out and dropping them from the
    denominator.
    """

    blocks: int
    bad_blocks: int
    min_erase_count: int
    max_erase_count: int
    mean_erase_count: float
    erases: int
    host_programs: int
    gc_programs: int
    write_amplification: float
    grown_bad_blocks: int
    scrub_relocations: int
    mapped_pages: int
    free_blocks: int

    @property
    def wear_spread(self) -> float:
        """max/mean erase count: 1.0 = perfect wear leveling."""
        if self.mean_erase_count == 0:
            return 1.0
        return self.max_erase_count / self.mean_erase_count

    @classmethod
    def capture(cls, ftl: FlashTranslationLayer) -> "EnduranceSnapshot":
        counts = []
        bad = 0
        for die in ftl.dies:
            for plane in range(die.spec.planes_per_die):
                for block in range(die.spec.blocks_per_plane):
                    info = die.block_info(plane, block)
                    counts.append(info.erase_count)
                    if info.bad:
                        bad += 1
        mean = sum(counts) / len(counts) if counts else 0.0
        stats = ftl.stats
        return cls(
            blocks=len(counts),
            bad_blocks=bad,
            min_erase_count=min(counts) if counts else 0,
            max_erase_count=max(counts) if counts else 0,
            mean_erase_count=mean,
            erases=stats.erases,
            host_programs=stats.host_programs,
            gc_programs=stats.gc_programs,
            write_amplification=stats.write_amplification,
            grown_bad_blocks=stats.grown_bad_blocks,
            scrub_relocations=stats.scrub_relocations,
            mapped_pages=ftl.mapped_pages,
            free_blocks=ftl.free_blocks)


def report(ftl: FlashTranslationLayer) -> EnduranceReport:
    """Snapshot the FTL's wear state."""
    counts = []
    for die in ftl.dies:
        for plane, block in die.good_blocks():
            counts.append(die.block_info(plane, block).erase_count)
    mean = sum(counts) / len(counts) if counts else 0.0
    stats = ftl.stats
    return EnduranceReport(
        host_programs=stats.host_programs,
        total_programs=stats.host_programs + stats.gc_programs,
        write_amplification=stats.write_amplification,
        erases=stats.erases,
        mean_erase_count=mean,
        max_erase_count=max(counts) if counts else 0,
        endurance_pe_cycles=ftl.spec.endurance_pe_cycles)


def project_lifetime_years(spec: ZNANDSpec, raw_bytes: int,
                           write_mb_s: float,
                           waf: float = 1.0,
                           wear_spread: float = 1.0) -> float:
    """Years until the most-worn block hits the endurance limit.

    ``write_mb_s`` is the sustained host write rate; ``waf`` multiplies
    it into physical programs; ``wear_spread`` discounts the budget by
    how unevenly the levelled wear lands (1.0 = perfect).
    """
    if write_mb_s <= 0:
        return float("inf")
    budget_bytes = raw_bytes * spec.endurance_pe_cycles / wear_spread
    physical_rate = write_mb_s * 1e6 * waf
    return budget_bytes / physical_rate / SECONDS_PER_YEAR


def paper_device_lifetime(write_mb_s: float = 58.3,
                          waf: float = 1.1) -> float:
    """The PoC device at its own sustained uncached write rate.

    Written flat out at the window-limited 58.3 MB/s, the 128 GB of
    50K-cycle SLC Z-NAND lasts ~3.4 years of *continuous* writes — and
    the tRFC mechanism is itself the throttle: the device physically
    cannot be written faster than the windows allow, so the architecture
    bounds its own wear.  At a realistic 10 % write duty cycle that is
    three decades.
    """
    from repro.nand.spec import ZNAND_64GB
    from repro.units import gb
    return project_lifetime_years(ZNAND_64GB, 2 * gb(64), write_mb_s,
                                  waf=waf)
