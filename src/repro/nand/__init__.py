"""Z-NAND substrate: devices, ECC, FTL, channel controller.

The paper's backend is two 64 GB Samsung Z-NAND packages (low-latency
SLC NAND) managed by an FTL running on a Cortex-A53 core (§IV-A).  This
package models that stack:

* :mod:`repro.nand.spec` — geometry and timing of the Z-NAND parts.
* :mod:`repro.nand.device` — dies/planes/blocks/pages with Read /
  Program / Erase semantics, wear counting and bad blocks.
* :mod:`repro.nand.ecc` — the 4 KB-codeword ECC model with bit-error
  injection (the NVMC performs ECC "at the granularity of 4 KB", §III-A).
* :mod:`repro.nand.ftl` — page-mapped flash translation layer with
  wear-levelling, greedy garbage collection and bad-block management.
* :mod:`repro.nand.controller` — the channel controller that serialises
  operations per channel and exposes logical-page read/program.
"""

from repro.nand.spec import ZNANDSpec, ZNAND_64GB
from repro.nand.device import NANDDie, PageState
from repro.nand.ecc import ECCCodec, ECCStats
from repro.nand.ftl import FlashTranslationLayer
from repro.nand.controller import NANDController

__all__ = [
    "ZNANDSpec",
    "ZNAND_64GB",
    "NANDDie",
    "PageState",
    "ECCCodec",
    "ECCStats",
    "FlashTranslationLayer",
    "NANDController",
]
