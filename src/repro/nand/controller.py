"""The NAND channel controller: timing + ECC over the FTL.

The PoC has two Z-NAND channels; dies are striped across them.  The
controller converts the FTL's physical-operation lists into simulated
time (per-channel busy cursors, so the channels overlap) and applies the
ECC model on every page read — exercising the full encode / inject /
decode path with an RBER derived from the source block's wear.

Operations take and return picosecond timestamps in the same
time-cursor style as :class:`repro.ddr.controller.DDR4Controller`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (DegradedModeError, FailStopError, FTLError,
                          UncorrectableError)
from repro.health.monitor import HealthMonitor, HealthPolicy
from repro.health.retry import policy_for
from repro.nand.device import BlockInfo, NANDDie
from repro.nand.ecc import AgingParams, ECCCodec
from repro.nand.ftl import FlashTranslationLayer, FTLRecoveryStats, PhysOp
from repro.nand.spec import ZNANDSpec
from repro.sim.snapshot import SnapshotMixin


@dataclass
class NANDControllerStats:
    """Timing/ECC counters for the channel controller."""

    page_reads: int = 0
    page_programs: int = 0
    ecc_corrected_bits: int = 0
    ecc_uncorrectable: int = 0
    #: Read-retry passes (shifted read-reference voltages) that followed
    #: an uncorrectable first decode.
    read_retries: int = 0
    #: Reads that stayed uncorrectable after every retry: data loss.
    unrecovered_reads: int = 0


class NANDController(SnapshotMixin):
    """Two-channel (configurable) Z-NAND controller with FTL and ECC."""

    def __init__(self, spec: ZNANDSpec, logical_capacity_bytes: int,
                 channels: int = 2, dies_total: int | None = None,
                 seed: int = 7, firmware_overhead_ps: int = 0,
                 read_retry_limit: int = 3,
                 degraded_bad_block_limit: int = 16,
                 health: HealthMonitor | None = None) -> None:
        spec.validate()
        self.spec = spec
        self.channels = channels
        dies_total = dies_total or spec.dies * 2   # two packages on the DIMM
        self.dies = [NANDDie(spec, die_index=i, rng_seed=seed)
                     for i in range(dies_total)]
        self.ftl = FlashTranslationLayer(self.dies, logical_capacity_bytes)
        self.codec = ECCCodec(payload_bytes=spec.page_bytes, seed=seed)
        self.firmware_overhead_ps = firmware_overhead_ps
        # The channel bus is held only while data shuttles; array
        # operations occupy the die.  Z-NAND supports program suspend,
        # so reads are not blocked by an in-flight program's array time.
        self._channel_busy_until = [0] * channels
        self._die_busy_until = [0] * len(self.dies)
        self.stats = NANDControllerStats()
        #: Resilience knobs: retries per uncorrectable read (shifted
        #: read-reference voltages), and how many grown bad blocks the
        #: device tolerates before refusing further writes.
        self.read_retry_limit = read_retry_limit
        self.degraded_bad_block_limit = degraded_bad_block_limit
        #: Shared module-health ladder.  Auto-created for standalone
        #: constructions; system composition passes one monitor that
        #: driver, NVMC, controller and FTL all share.  ``read_only``
        #: is a view of it — the PR 3 bool became ladder state.
        if health is None:
            # Standalone construction: a private monitor whose bad-block
            # threshold mirrors the controller knob.
            health = HealthMonitor(policy=HealthPolicy(
                read_only_bad_blocks=degraded_bad_block_limit))
        self.health = health
        self.ftl.health = health
        #: Read-retry schedule from the taxonomy budget for
        #: :class:`~repro.errors.UncorrectableError` (back-to-back
        #: shifted-voltage re-senses; the attempt bound is what the
        #: controller knob pins).
        self.read_retry_policy = policy_for(
            UncorrectableError, max_attempts=1 + read_retry_limit,
            base_ps=0, cap_ps=0, site="nand-read")
        #: Optional composed reliability model (retention + read
        #: disturb).  ``None`` — the default — keeps RBER a pure
        #: function of wear, byte-identical to the pre-aging model.
        self.aging: AgingParams | None = None

    @property
    def read_only(self) -> bool:
        """Writes refused?  A view of the shared health ladder."""
        return self.health.read_only

    @read_only.setter
    def read_only(self, value: bool) -> None:
        # Back-compat escape hatch for tests that force degraded mode.
        if value and not self.health.read_only:
            self.health.record("nand", "remap-exhausted")

    def channel_of_die(self, die_index: int) -> int:
        """Dies are striped across channels."""
        return die_index % self.channels

    def reseed(self, seed: int) -> None:
        """Give this controller an independent media-error RNG.

        Factory bad blocks were drawn at construction from the original
        seed and stay put; only future stochastic draws (ECC bit-flip
        positions) diverge.  Fleet shards forked from one shared-prefix
        snapshot call this so N shards behave like N distinct modules.
        """
        self.codec.reseed(seed)

    # -- logical page operations -------------------------------------------------------

    def read_page(self, lpn: int, start_ps: int) -> tuple[bytes | None, int]:
        """Read a logical 4 KB page; returns (data, completion time).

        Never-written pages return ``(None, start_ps)`` — the driver
        materialises them as zeros without touching the media.
        """
        if self.health.failed:
            raise FailStopError(
                "device is fail-stop; reads refused",
                reason=self.health.reason or "fail-stop")
        data, ppa, ops = self.ftl.read_page(lpn)
        if data is None:
            return None, start_ps
        end_ps = self._account(ops, start_ps)
        assert ppa is not None
        attempts = 0
        while True:
            attempts += 1
            try:
                data = self._ecc_pass(data, ppa.die, ppa.plane, ppa.block)
                break
            except UncorrectableError:
                if not self.read_retry_policy.allows(attempts):
                    self.stats.unrecovered_reads += 1
                    # An unrecoverable read on an already-degraded
                    # module means data can no longer be trusted: the
                    # monitor escalates to fail-stop.
                    self.health.record("nand", "unrecovered-read",
                                       time_ps=end_ps)
                    raise
                # Read retry: re-sense the page with shifted read
                # reference voltages — another tR plus the transfer.
                self.stats.read_retries += 1
                self.health.record("nand", "read-retry", time_ps=end_ps)
                end_ps += self.spec.tr_ps + self.spec.transfer_ps_per_page
        self.stats.page_reads += 1
        return data, end_ps

    def program_page(self, lpn: int, data: bytes, start_ps: int) -> int:
        """Program a logical 4 KB page; returns the completion time.

        Raises :class:`DegradedModeError` once the device is read-only:
        either the FTL ran out of remap candidates mid-write, or grown
        bad blocks crossed ``degraded_bad_block_limit``.
        """
        health = self.health
        if health.failed:
            raise FailStopError(
                "device is fail-stop; all operations refused",
                reason=health.reason or "fail-stop")
        if health.read_only:
            raise DegradedModeError(
                "device is in read-only degraded mode "
                f"({self.ftl.stats.grown_bad_blocks} grown bad blocks)",
                reason=health.reason or "read-only")
        health.note_time(start_ps)
        try:
            _ppa, ops = self.ftl.write_page(lpn, data)
        except DegradedModeError:
            raise
        except FTLError as exc:
            health.record("nand", "space-exhausted")
            raise DegradedModeError(
                f"entering read-only degraded mode: {exc}",
                reason="space-exhausted") from exc
        if (self.ftl.stats.grown_bad_blocks >= self.degraded_bad_block_limit
                and not health.read_only):
            # This write landed (it was remapped), but the device stops
            # accepting new ones before the media is truly exhausted.
            health.record("nand", "bad-block-budget")
        end_ps = self._account(ops, start_ps)
        self.stats.page_programs += 1
        return end_ps

    def trim(self, lpn: int) -> None:
        self.ftl.trim(lpn)

    def preload(self, lpn: int, data: bytes) -> None:
        """Initialisation backdoor: program a page without consuming
        simulated time (models content that existed before t=0)."""
        self.ftl.write_page(lpn, data)
        self.stats.page_programs += 1

    # -- mount-time recovery -----------------------------------------------------------

    def rebuild_from_media(self,
                           health: HealthMonitor | None = None,
                           ) -> FTLRecoveryStats:
        """Cold-mount recovery: rebuild the FTL from the dies' OOB.

        Replaces ``self.ftl`` with one reconstructed from what actually
        reached flash (see
        :meth:`~repro.nand.ftl.FlashTranslationLayer.recover_from_media`)
        and re-attaches the health monitor.  The old FTL's volatile
        state — L2P, open blocks, stats — is discarded, exactly as a
        power cut discards the FTL core's SRAM.
        """
        if health is not None:
            self.health = health
        capacity = self.ftl.logical_pages * self.spec.page_bytes
        strategy = self.ftl.victim_strategy
        self.ftl, stats = FlashTranslationLayer.recover_from_media(
            self.dies, capacity)
        self.ftl.health = self.health
        self.ftl.set_victim_strategy(strategy)   # survives remounts
        return stats

    def media_bad_blocks(self) -> int:
        """Bad blocks visible on the media — the evidence a cold mount
        has for re-seeding the health ladder (factory + grown)."""
        return sum(
            1 for die in self.dies
            for plane in range(self.spec.planes_per_die)
            for block in range(self.spec.blocks_per_plane)
            if die.block_info(plane, block).bad)

    # -- timing -------------------------------------------------------------------------

    def _account(self, ops: list[PhysOp], start_ps: int) -> int:
        """Schedule ops onto dies (array time) and channels (bus time).

        * **read** — tR on the die (program-suspend lets it start even
          while a program is in flight), then the page transfer on the
          channel bus.
        * **program** — page transfer on the bus, then tPROG on the
          die; the bus is released during the array program.
        * **erase** — die-only.

        Returns the completion time of the last op in the list.
        """
        start_ps += self.firmware_overhead_ps
        latest = start_ps
        transfer = self.spec.transfer_ps_per_page
        for op in ops:
            channel = self.channel_of_die(op.die)
            if op.kind == "read":
                array_end = max(start_ps, 0) + self.spec.tr_ps
                bus_begin = max(array_end,
                                self._channel_busy_until[channel])
                end = bus_begin + transfer
                self._channel_busy_until[channel] = end
            elif op.kind == "program":
                bus_begin = max(start_ps,
                                self._channel_busy_until[channel])
                bus_end = bus_begin + transfer
                self._channel_busy_until[channel] = bus_end
                array_begin = max(bus_end, self._die_busy_until[op.die])
                end = array_begin + self.spec.tprog_ps
                self._die_busy_until[op.die] = end
            else:   # erase
                begin = max(start_ps, self._die_busy_until[op.die])
                end = begin + self.spec.tbers_ps
                self._die_busy_until[op.die] = end
            latest = max(latest, end)
        return latest

    # -- ECC ---------------------------------------------------------------------------------

    def rber_for_block(self, info: BlockInfo) -> float:
        """The block's current raw bit-error rate.

        With no :class:`AgingParams` installed this is exactly the
        wear-only curve; with one it composes wear, retention age, and
        read disturb (see :meth:`AgingParams.rber`).  Both the read path
        and the patrol scrubber price media through this one helper so
        they always agree on how decayed a block is.
        """
        endurance = self.spec.endurance_pe_cycles
        if self.aging is None:
            return ECCCodec.rber_for_wear(info.erase_count, endurance)
        return self.aging.rber(info.erase_count, endurance,
                               info.aged_years, info.read_count)

    def _ecc_pass(self, data: bytes, die: int, plane: int,
                  block: int) -> bytes:
        """Encode/inject/decode round trip at the block's current RBER."""
        rber = self.rber_for_block(self.dies[die].block_info(plane, block))
        codeword = self.codec.encode(data)
        self.codec.inject_errors(codeword, rber)
        try:
            decoded = self.codec.decode(codeword)
        except UncorrectableError:
            self.stats.ecc_uncorrectable += 1
            raise
        self.stats.ecc_corrected_bits = self.codec.stats.bits_corrected
        return decoded

    # -- capacity ------------------------------------------------------------------------------

    @property
    def logical_capacity_bytes(self) -> int:
        return self.ftl.logical_pages * self.spec.page_bytes
