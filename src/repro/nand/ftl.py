"""Flash translation layer: page-mapped L2P with GC and wear levelling.

One Cortex-A53 core of the PoC runs "the flash translation layer (FTL)
that manages the two channel Z-NAND devices" (§IV-A).  The model is a
page-mapped FTL:

* logical 4 KB pages map to physical ``(die, plane, block, page)``;
* writes append to per-die open blocks (round-robin across dies for
  channel parallelism), invalidating the old copy;
* greedy garbage collection kicks in when free blocks run low,
  relocating valid pages out of the fullest-of-stale blocks;
* allocation prefers the least-erased free block (wear levelling);
* grown bad blocks (program/erase failures) are retired and replaced;
* 120 GB of the 128 GB raw capacity is exposed (§VI) — the remainder is
  over-provisioning that keeps GC affordable.

Every public operation returns the list of physical operations it
performed so the controller can convert work into simulated time.

**Crash consistency.**  The L2P map is volatile (it lives in the FTL
core's SRAM), so every program stamps the page's spare area with an
:class:`OOB` record ``(lpn, seq, crc, kind)``: flash is self-describing
and :meth:`FlashTranslationLayer.recover_from_media` can rebuild the map
after any power cut by electing, per LPN, the stamped copy with the
highest sequence number whose payload still matches its CRC (torn pages
are quarantined).  ``trim`` is durable through the same mechanism: it
appends a *tombstone* page (``kind="trim"``) that outvotes every older
data copy, and tombstones stay GC-live so reclaiming their block cannot
resurrect stale data.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.errors import (DegradedModeError, FTLError, MediaError,
                          PowerLossInterrupt)
from repro.health.retry import budget_for
from repro.nand.device import NANDDie
from repro.nand.spec import ZNANDSpec
from repro.sim.snapshot import SnapshotMixin


@dataclass(frozen=True)
class PPA:
    """Physical page address."""

    die: int
    plane: int
    block: int
    page: int


@dataclass(frozen=True)
class PhysOp:
    """One physical NAND operation, for timing accounting."""

    kind: str      # "read" | "program" | "erase"
    die: int


@dataclass(frozen=True, slots=True)
class OOB:
    """Out-of-band (spare-area) stamp programmed alongside every page.

    ``seq`` is a module-wide monotonic program counter: among multiple
    stamped copies of one LPN, the highest ``seq`` whose payload matches
    ``crc`` wins at mount time.  ``kind`` distinguishes data pages from
    trim tombstones (a tombstone outvotes older data: the LPN reads as
    never-written after recovery).
    """

    lpn: int
    seq: int
    crc: int                  # zlib.crc32 of the full page payload
    kind: str = "data"        # "data" | "trim"

    def __reduce__(self):
        # Thousands of stamps live in a mid-run snapshot; rebuilding
        # through the constructor beats the generic slots-dataclass
        # state protocol (which walks dataclasses.fields per object).
        return (OOB, (self.lpn, self.seq, self.crc, self.kind))


@dataclass
class FTLStats:
    """Externally visible FTL counters."""

    host_reads: int = 0
    host_programs: int = 0
    gc_reads: int = 0
    gc_programs: int = 0
    erases: int = 0
    gc_invocations: int = 0
    grown_bad_blocks: int = 0
    #: Program attempts that failed and were remapped to another block.
    program_retries: int = 0
    #: Pages proactively rewritten by the patrol scrubber.
    scrub_relocations: int = 0
    #: Live pages copied out of a grown-bad block at retirement.
    rescued_pages: int = 0
    #: Durable trim tombstones appended on behalf of the host.
    trim_tombstones: int = 0
    #: Programs torn mid-operation by a power cut.
    torn_programs: int = 0

    @property
    def write_amplification(self) -> float:
        if self.host_programs == 0:
            return 1.0
        return (self.host_programs + self.gc_programs) / self.host_programs


#: Victim-selection strategies for garbage collection (see
#: :meth:`FlashTranslationLayer.set_victim_strategy`).  ``greedy`` is
#: the byte-identical default; the other two trade extra copies for a
#: tighter erase-count spread (wear leveling proper).
VICTIM_STRATEGIES: tuple[str, ...] = ("greedy", "cost_benefit", "static")


@dataclass
class _BlockMeta:
    """FTL-side view of one physical block."""

    die: int
    plane: int
    block: int
    valid: int = 0
    lpns: dict[int, int] = field(default_factory=dict)  # page -> lpn
    #: A partially-programmed block closed by recovery: its remaining
    #: erased pages are unusable (the program cursor must stay honest),
    #: so GC may reclaim it even though it never filled.
    sealed: bool = False
    #: Sequence number of the last program into this block — the
    #: cost-benefit strategy's notion of block age (0 = never written
    #: this mount, i.e. maximally cold).
    last_seq: int = 0


@dataclass
class FTLRecoveryStats:
    """What :meth:`FlashTranslationLayer.recover_from_media` found."""

    scanned_pages: int = 0      # programmed pages walked
    mapped: int = 0             # LPNs with an elected data copy
    tombstones: int = 0         # LPNs whose winner is a trim tombstone
    stale: int = 0              # intact pages outvoted by a newer seq
    torn_quarantined: int = 0   # CRC-mismatched pages (power cut mid-program)
    unstamped: int = 0          # programmed pages with no OOB stamp
    sealed_blocks: int = 0      # partial blocks closed for GC reclaim
    reopened_blocks: int = 0    # partial blocks resumed as open blocks
    max_seq: int = 0            # highest sequence number seen on media

    def to_dict(self) -> dict[str, int]:
        return {
            "scanned_pages": self.scanned_pages,
            "mapped": self.mapped,
            "tombstones": self.tombstones,
            "stale": self.stale,
            "torn_quarantined": self.torn_quarantined,
            "unstamped": self.unstamped,
            "sealed_blocks": self.sealed_blocks,
            "reopened_blocks": self.reopened_blocks,
            "max_seq": self.max_seq,
        }


class FlashTranslationLayer(SnapshotMixin):
    """Page-mapped FTL over a set of dies."""

    #: GC starts when fewer free blocks than this remain (per pool).
    GC_LOW_WATER = 4
    #: GC relocates until this many free blocks are available again.
    GC_HIGH_WATER = 8

    def __init__(self, dies: list[NANDDie],
                 logical_capacity_bytes: int) -> None:
        if not dies:
            raise FTLError("FTL needs at least one die")
        self.dies = dies
        self.spec: ZNANDSpec = dies[0].spec
        self.logical_pages = logical_capacity_bytes // self.spec.page_bytes
        self._l2p: dict[int, PPA] = {}
        #: Durable trim markers: lpn -> PPA of its live tombstone page.
        #: Tracked so GC relocates tombstones like live pages — erasing
        #: the only tombstone while an older data copy survives would
        #: resurrect the trimmed LPN at the next mount.
        self._tombstones: dict[int, PPA] = {}
        self._blocks: dict[tuple[int, int, int], _BlockMeta] = {}
        self._free: list[tuple[int, int, int]] = []
        self._open: dict[int, _BlockMeta | None] = {}
        self._next_die = 0
        #: Module-wide monotonic program counter stamped into every OOB.
        self._seq = 1
        self._zero_page = bytes(self.spec.page_bytes)
        self.stats = FTLStats()
        #: Optional observer called after every successful program:
        #: ``on_commit(lpn, crc, kind)``.  The crash-point explorer uses
        #: it as ground truth for what is durably committed.
        self.on_commit = None
        #: Installed by fault campaigns (duck-typed
        #: :class:`repro.faults.clock.FaultClock`); the FTL is timeless,
        #: so GC cuts are count-scheduled via ``tick``.
        self.fault_clock = None
        #: Shared :class:`repro.health.monitor.HealthMonitor`, installed
        #: by the owning controller.  The FTL is timeless, so its events
        #: inherit the monitor's clock.
        self.health = None
        #: Remap attempts per logical write, from the taxonomy budget
        #: for generic media failures.
        self.remap_budget = budget_for(MediaError).attempts
        #: GC victim-selection strategy (see :data:`VICTIM_STRATEGIES`).
        self.victim_strategy = "greedy"
        #: ``static`` leveling: migrate the coldest closed block once
        #: this many erases have happened (then re-arm).
        self.static_level_period = 32
        self._static_level_due = self.static_level_period
        self._discover_blocks()
        self._check_capacity()

    def set_victim_strategy(self, name: str,
                            static_period: int | None = None) -> None:
        """Select the GC victim strategy; raises on unknown names.

        ``static_period`` (erases between cold-block migrations) only
        matters for ``static``; passing it re-arms the migration timer
        relative to the current erase count.
        """
        if name not in VICTIM_STRATEGIES:
            raise FTLError(
                f"unknown victim strategy {name!r}; "
                f"expected one of {VICTIM_STRATEGIES}")
        self.victim_strategy = name
        if static_period is not None:
            if static_period < 1:
                raise FTLError("static_period must be >= 1")
            self.static_level_period = static_period
            self._static_level_due = self.stats.erases + static_period

    # -- init ---------------------------------------------------------------------

    def _discover_blocks(self) -> None:
        for die_index, die in enumerate(self.dies):
            self._open[die_index] = None
            for plane, block in die.good_blocks():
                self._free.append((die_index, plane, block))

    def _check_capacity(self) -> None:
        physical_pages = len(self._free) * self.spec.pages_per_block
        if physical_pages < self.logical_pages + (
                self.GC_HIGH_WATER * self.spec.pages_per_block):
            raise FTLError(
                "not enough physical capacity for the logical space "
                "plus over-provisioning: "
                f"{physical_pages} pages < {self.logical_pages} logical")

    # -- mount-time recovery ------------------------------------------------------

    @classmethod
    def recover_from_media(
            cls, dies: list[NANDDie], logical_capacity_bytes: int,
    ) -> tuple["FlashTranslationLayer", FTLRecoveryStats]:
        """Rebuild an FTL from what actually reached flash.

        The cold-mount path after a power cut: walk every programmed
        page of every good block, verify its payload against the OOB
        CRC (mismatch = torn by the cut: quarantine), and elect, per
        LPN, the intact copy with the highest sequence number.  A trim
        tombstone winner leaves the LPN unmapped — durably trimmed.

        Partially-programmed blocks are resumed: the emptiest one per
        die becomes the open block again; the rest are *sealed* so GC
        can reclaim them (their program cursor is mid-block, and the
        erased tail must never be silently reused without an erase).
        """
        ftl = cls(dies, logical_capacity_bytes)
        stats = FTLRecoveryStats()
        # lpn -> (seq, kind, ppa): the election scoreboard.
        best: dict[int, tuple[int, str, PPA]] = {}
        for die_index, die in enumerate(ftl.dies):
            for plane, block in die.good_blocks():
                info = die.block_info(plane, block)
                if info.next_page == 0:
                    continue   # pristine or fully erased: stays free
                key = (die_index, plane, block)
                ftl._free.remove(key)
                ftl._blocks[key] = _BlockMeta(
                    die=die_index, plane=plane, block=block)
                for page in range(info.next_page):
                    stats.scanned_pages += 1
                    oob = die.read_oob(plane, block, page)
                    if not isinstance(oob, OOB):
                        stats.unstamped += 1
                        continue
                    stats.max_seq = max(stats.max_seq, oob.seq)
                    data = die.read_page(plane, block, page)
                    if zlib.crc32(data) != oob.crc:
                        stats.torn_quarantined += 1
                        continue
                    cur = best.get(oob.lpn)
                    if cur is None or oob.seq > cur[0]:
                        best[oob.lpn] = (
                            oob.seq, oob.kind,
                            PPA(die_index, plane, block, page))
        for lpn in sorted(best):
            seq, kind, ppa = best[lpn]
            meta = ftl._blocks[(ppa.die, ppa.plane, ppa.block)]
            meta.lpns[ppa.page] = lpn
            meta.valid += 1
            if kind == "trim":
                ftl._tombstones[lpn] = ppa
                stats.tombstones += 1
            else:
                ftl._l2p[lpn] = ppa
                stats.mapped += 1
        stats.stale = (stats.scanned_pages - stats.torn_quarantined
                       - stats.unstamped - stats.mapped - stats.tombstones)
        ftl._seq = stats.max_seq + 1
        for die_index, die in enumerate(ftl.dies):
            partials = [
                meta for key, meta in ftl._blocks.items()
                if key[0] == die_index
                and die.block_info(meta.plane, meta.block).next_page
                < ftl.spec.pages_per_block]
            if not partials:
                continue
            reopen = min(partials, key=lambda m: (
                die.block_info(m.plane, m.block).next_page,
                m.plane, m.block))
            ftl._open[die_index] = reopen
            stats.reopened_blocks += 1
            for meta in partials:
                if meta is not reopen:
                    meta.sealed = True
                    stats.sealed_blocks += 1
        return ftl, stats

    # -- host API ----------------------------------------------------------------------

    def read_page(self, lpn: int) -> tuple[bytes | None, PPA | None,
                                           list[PhysOp]]:
        """Look up and read a logical page.

        Returns ``(None, None, [])`` for never-written pages (the block
        device reads them as zeros).
        """
        self._check_lpn(lpn)
        ppa = self._l2p.get(lpn)
        if ppa is None:
            return None, None, []
        die = self.dies[ppa.die]
        data = die.read_page(ppa.plane, ppa.block, ppa.page)
        self.stats.host_reads += 1
        return data, ppa, [PhysOp("read", ppa.die)]

    def write_page(self, lpn: int, data: bytes) -> tuple[PPA, list[PhysOp]]:
        """Write a logical page out-of-place; returns its new PPA."""
        self._check_lpn(lpn)
        ops: list[PhysOp] = []
        ops.extend(self._maybe_collect_garbage())
        ppa, program_ops = self._append(lpn, data, gc=False)
        ops.extend(program_ops)
        return ppa, ops

    def relocate(self, lpn: int) -> list[PhysOp]:
        """Proactively rewrite a logical page to a fresh block.

        The patrol scrubber's remap primitive: the current copy is
        read die-side (the stored payload is always recoverable there)
        and appended elsewhere, invalidating the decaying location.
        Refused with :class:`DegradedModeError` once the module is
        read-only — scrub must not consume the last healthy blocks.
        """
        self._check_lpn(lpn)
        if self.health is not None and self.health.read_only:
            raise DegradedModeError(
                f"relocation of lpn {lpn} refused; module is read-only",
                reason=self.health.reason or "read-only")
        if self._l2p.get(lpn) is None:
            return []
        ops: list[PhysOp] = []
        ops.extend(self._maybe_collect_garbage())
        # Re-fetch AFTER garbage collection: GC (or a static-leveling
        # migration) may have just relocated this very LPN and erased
        # its old block — reading the captured pre-GC address would
        # return erased flash (0xFF) and re-append it as the page's
        # content: a self-consistent, silent corruption.
        ppa = self._l2p.get(lpn)
        if ppa is None:
            return ops
        data = self.dies[ppa.die].read_page(ppa.plane, ppa.block, ppa.page)
        ops.append(PhysOp("read", ppa.die))
        _, program_ops = self._append(lpn, data, gc=True)
        ops.extend(program_ops)
        self.stats.scrub_relocations += 1
        return ops

    def trim(self, lpn: int) -> list[PhysOp]:
        """Drop the mapping for a logical page (discard), durably.

        A volatile ``pop`` would resurrect the LPN at the next mount
        (the old data copy still sits on flash with the winning seq), so
        trim appends a tombstone page whose OOB stamp outvotes every
        older copy.  Idempotent: re-trimming, or trimming a never-written
        LPN, programs nothing.
        """
        self._check_lpn(lpn)
        if lpn not in self._l2p:
            return []   # never written, or already durably tombstoned
        ops: list[PhysOp] = []
        ops.extend(self._maybe_collect_garbage())
        _, program_ops = self._append(lpn, self._zero_page, gc=False,
                                      kind="trim")
        ops.extend(program_ops)
        self.stats.trim_tombstones += 1
        return ops

    def mapping(self, lpn: int) -> PPA | None:
        """Current physical location of a logical page, if any."""
        return self._l2p.get(lpn)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def mapped_pages(self) -> int:
        return len(self._l2p)

    @property
    def tombstoned_pages(self) -> int:
        """LPNs whose live durable record is a trim tombstone."""
        return len(self._tombstones)

    # -- allocation --------------------------------------------------------------------

    def _append(self, lpn: int, data: bytes, gc: bool,
                kind: str = "data") -> tuple[PPA, list[PhysOp]]:
        ops: list[PhysOp] = []
        attempts = 0
        while True:
            attempts += 1
            if attempts > self.remap_budget:
                if self.health is not None:
                    self.health.record("ftl", "remap-exhausted")
                raise DegradedModeError(
                    f"write of lpn {lpn} failed {attempts - 1} remaps; "
                    "media exhausted", reason="remap-exhausted")
            die_index = self._pick_die()
            meta = self._open_block(die_index)
            page = self.dies[die_index].block_info(
                meta.plane, meta.block).next_page
            stamp = OOB(lpn=lpn, seq=self._seq, crc=zlib.crc32(data),
                        kind=kind)
            self._seq += 1
            if self.fault_clock is not None:
                try:
                    self.fault_clock.tick("ftl.program")
                except PowerLossInterrupt:
                    # The cut lands mid-program: the page tears — its
                    # leading bytes reach the cells under the intended
                    # OOB stamp, and the L2P never learns of it.
                    try:
                        self.dies[die_index].program_torn(
                            meta.plane, meta.block, page, data, oob=stamp)
                    except MediaError:
                        pass   # the block failed outright instead
                    else:
                        self.stats.torn_programs += 1
                        if page + 1 >= self.spec.pages_per_block:
                            self._open[die_index] = None
                    raise
            try:
                self.dies[die_index].program_page(
                    meta.plane, meta.block, page, data, oob=stamp)
            except MediaError:
                # Grown bad block: retire it and remap the write to a
                # fresh block — the paper's bad-block handling path.
                self.stats.program_retries += 1
                if self.health is not None:
                    self.health.record("ftl", "remap")
                ops.extend(self._retire(meta))
                continue
            break
        ops.append(PhysOp("program", die_index))
        if gc:
            self.stats.gc_programs += 1
        else:
            self.stats.host_programs += 1
        old = self._l2p.get(lpn)
        if old is not None:
            self._invalidate(old)
        old_tomb = self._tombstones.pop(lpn, None)
        if old_tomb is not None:
            self._invalidate(old_tomb)
        ppa = PPA(die_index, meta.plane, meta.block, page)
        if kind == "trim":
            self._l2p.pop(lpn, None)
            self._tombstones[lpn] = ppa
        else:
            self._l2p[lpn] = ppa
        meta.valid += 1
        meta.lpns[page] = lpn
        meta.last_seq = stamp.seq
        if page + 1 >= self.spec.pages_per_block:
            self._open[die_index] = None   # block is full; close it
        if self.on_commit is not None:
            self.on_commit(lpn, stamp.crc, kind)
        return ppa, ops

    def _pick_die(self) -> int:
        """Round-robin across dies, skipping dies with no space."""
        for _ in range(len(self.dies)):
            die_index = self._next_die
            self._next_die = (self._next_die + 1) % len(self.dies)
            if self._open[die_index] is not None or self._has_free(die_index):
                return die_index
        # Fall back to any die with a free block at all.
        for die_index in range(len(self.dies)):
            if self._open[die_index] is not None or self._has_free(die_index):
                return die_index
        raise FTLError("no die has free blocks; GC failed to reclaim space")

    def _has_free(self, die_index: int) -> bool:
        return any(key[0] == die_index for key in self._free)

    def _open_block(self, die_index: int) -> _BlockMeta:
        meta = self._open[die_index]
        if meta is not None:
            return meta
        candidates = [key for key in self._free if key[0] == die_index]
        if not candidates:
            raise FTLError(f"die {die_index} has no free blocks")
        # Wear levelling: least-erased candidate first.
        key = min(candidates, key=lambda k: self.dies[k[0]].block_info(
            k[1], k[2]).erase_count)
        self._free.remove(key)
        meta = _BlockMeta(die=key[0], plane=key[1], block=key[2])
        self._blocks[key] = meta
        self._open[die_index] = meta
        return meta

    def _invalidate(self, ppa: PPA) -> None:
        meta = self._blocks.get((ppa.die, ppa.plane, ppa.block))
        if meta is None:
            raise FTLError(f"invalidate of untracked block {ppa}")
        if meta.lpns.pop(ppa.page, None) is not None:
            meta.valid -= 1

    def _retire(self, meta: _BlockMeta) -> list[PhysOp]:
        """Retire a grown-bad block: rescue its live pages, fence it off.

        Bad-block management must copy surviving valid pages out
        *before* the block is marked bad (reads from bad blocks are
        refused); otherwise every earlier write that landed in the
        block becomes silent data loss the next host read trips over.
        The rescue is bounded recursion: a rescue program that fails
        retires another (distinct) block, and every ``_append`` carries
        its own remap budget.
        """
        die = self.dies[meta.die]
        survivors = [
            (lpn, die.read_page(meta.plane, meta.block, page),
             PPA(meta.die, meta.plane, meta.block, page))
            for page, lpn in sorted(meta.lpns.items())]
        die.mark_bad(meta.plane, meta.block)
        self.stats.grown_bad_blocks += 1
        if self.health is not None:
            self.health.record("ftl", "bad-block")
        if self._open.get(meta.die) is meta:
            self._open[meta.die] = None
        meta.lpns.clear()
        meta.valid = 0
        ops: list[PhysOp] = [PhysOp("read", meta.die) for _ in survivors]
        for lpn, data, old_ppa in survivors:
            if self._tombstones.get(lpn) == old_ppa:
                # A live tombstone: rewrite it, or the trim un-commits.
                _, program_ops = self._append(lpn, self._zero_page,
                                              gc=True, kind="trim")
                ops.extend(program_ops)
                self.stats.rescued_pages += 1
                continue
            if self._l2p.get(lpn) != old_ppa:
                continue   # rewritten elsewhere since the read above
            _, program_ops = self._append(lpn, data, gc=True)
            ops.extend(program_ops)
            self.stats.rescued_pages += 1
        return ops

    # -- garbage collection --------------------------------------------------------------

    def _maybe_collect_garbage(self) -> list[PhysOp]:
        if len(self._free) > self.GC_LOW_WATER:
            return self._maybe_static_level()
        self.stats.gc_invocations += 1
        ops: list[PhysOp] = []
        guard = 0
        while len(self._free) < self.GC_HIGH_WATER:
            guard += 1
            if guard > 64:
                break
            victim = self._pick_victim()
            if victim is None:
                break
            ops.extend(self._collect(victim))
        return ops

    def _maybe_static_level(self) -> list[PhysOp]:
        """``static`` leveling: periodically migrate the coldest block.

        Cold data parks in low-wear blocks forever under greedy GC (a
        fully-valid block is never a victim), so the wear spread only
        grows.  Every :attr:`static_level_period` erases — and only
        while the free pool sits above the GC trigger — the closed
        block with the lowest erase count is collected outright: its
        (cold) pages move into the current write stream and its
        low-wear block re-enters the free pool, where
        least-erased-first allocation hands it to hot data next.
        """
        if self.victim_strategy != "static":
            return []
        if self.stats.erases < self._static_level_due:
            return []
        if len(self._free) <= self.GC_LOW_WATER:
            return []   # space is tight; plain GC owns the pool
        self._static_level_due = self.stats.erases + self.static_level_period
        best_key: tuple[int, int, int] | None = None
        best: _BlockMeta | None = None
        best_wear = 0
        for key, meta in self._victim_candidates():
            if meta.valid <= 0:
                continue   # already stale; plain GC will reclaim it
            wear = self.dies[key[0]].block_info(key[1], key[2]).erase_count
            if (best_key is None or wear < best_wear
                    or (wear == best_wear and key < best_key)):
                best_key, best, best_wear = key, meta, wear
        if best is None:
            return []
        return self._collect(best)

    def _victim_candidates(self):
        """Closed, reclaimable blocks: ``(key, meta)`` pairs."""
        for key, meta in self._blocks.items():
            if meta is self._open.get(meta.die):
                continue
            if key in self._free:
                continue
            full = meta.sealed or self.dies[meta.die].block_info(
                meta.plane, meta.block).next_page >= self.spec.pages_per_block
            if not full:
                continue
            yield key, meta

    def _pick_victim(self) -> _BlockMeta | None:
        """Select the next GC victim under the configured strategy.

        * ``greedy`` (default) / ``static`` — the closed block with the
          fewest valid pages; equal-``valid`` candidates tie-break on
          the ``(die, plane, block)`` key, never on dict insertion
          order, so victim choice is independent of allocation history
          quirks and of ``PYTHONHASHSEED``.
        * ``cost_benefit`` — maximise ``age * freed / (valid + 1)``
          where ``age`` is program-counter distance since the block was
          last written: cold, mostly-stale blocks win even when a
          slightly-emptier hot block exists, which recycles low-wear
          blocks into the allocation pool (allocation prefers the
          least-erased free block).  Ties break on the key.
        """
        best_key: tuple[int, int, int] | None = None
        best: _BlockMeta | None = None
        if self.victim_strategy == "cost_benefit":
            best_score = -1.0
            for key, meta in self._victim_candidates():
                freed = self.spec.pages_per_block - meta.valid
                if freed <= 0:
                    continue   # nothing reclaimable in this block
                age = self._seq - meta.last_seq
                score = age * freed / (meta.valid + 1)
                if (best_key is None or score > best_score
                        or (score == best_score and key < best_key)):
                    best_key, best, best_score = key, meta, score
            return best
        for key, meta in self._victim_candidates():
            if (best_key is None or meta.valid < best.valid
                    or (meta.valid == best.valid and key < best_key)):
                best_key, best = key, meta
        if best is not None and best.valid >= self.spec.pages_per_block:
            return None   # nothing reclaimable
        return best

    def _collect(self, victim: _BlockMeta) -> list[PhysOp]:
        ops: list[PhysOp] = []
        die = self.dies[victim.die]
        for page, lpn in sorted(victim.lpns.items()):
            if self.fault_clock is not None:
                self.fault_clock.tick("ftl.gc")
            old_ppa = PPA(victim.die, victim.plane, victim.block, page)
            if self._tombstones.get(lpn) == old_ppa:
                # Relocate the tombstone: erasing the only durable
                # record of a trim would resurrect the LPN at mount.
                _, program_ops = self._append(lpn, self._zero_page,
                                              gc=True, kind="trim")
                ops.extend(program_ops)
                continue
            data = die.read_page(victim.plane, victim.block, page)
            ops.append(PhysOp("read", victim.die))
            self.stats.gc_reads += 1
            _, program_ops = self._append(lpn, data, gc=True)
            ops.extend(program_ops)
        victim.lpns.clear()
        victim.valid = 0
        key = (victim.die, victim.plane, victim.block)
        try:
            die.erase_block(victim.plane, victim.block)
        except MediaError:
            ops.extend(self._retire(victim))
            self._blocks.pop(key, None)
            return ops
        ops.append(PhysOp("erase", victim.die))
        self.stats.erases += 1
        self._blocks.pop(key, None)
        if die.block_info(victim.plane, victim.block).bad:
            # The erase succeeded but crossed the endurance limit: the
            # die marked the block worn out.  Never re-free a bad block
            # — that would hand allocation a block whose next program
            # is refused die-side.
            self.stats.grown_bad_blocks += 1
            if self.health is not None:
                self.health.record("ftl", "bad-block")
        else:
            self._free.append(key)
        return ops

    # -- wear-out housekeeping -------------------------------------------------------------

    def retire_worn_free_blocks(self) -> int:
        """Fence off free blocks that have consumed their endurance.

        An aging fast-forward bumps erase counts without running the
        erases, so a free block can sit past the endurance limit
        without the die ever having had the chance to mark it bad.
        Walk the free pool (sorted, for determinism), retire every worn
        block as grown-bad, and report how many were retired.  Non-free
        worn blocks are left alone — they die on their next real erase
        (see :meth:`_collect`).
        """
        worn = sorted(
            key for key in self._free
            if self.dies[key[0]].block_info(key[1], key[2]).erase_count
            >= self.spec.endurance_pe_cycles)
        for key in worn:
            self._free.remove(key)
            self.dies[key[0]].mark_bad(key[1], key[2])
            self.stats.grown_bad_blocks += 1
            if self.health is not None:
                self.health.record("ftl", "bad-block")
        return len(worn)

    # -- misc ------------------------------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise FTLError(
                f"logical page {lpn} out of range (0..{self.logical_pages})")
