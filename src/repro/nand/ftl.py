"""Flash translation layer: page-mapped L2P with GC and wear levelling.

One Cortex-A53 core of the PoC runs "the flash translation layer (FTL)
that manages the two channel Z-NAND devices" (§IV-A).  The model is a
page-mapped FTL:

* logical 4 KB pages map to physical ``(die, plane, block, page)``;
* writes append to per-die open blocks (round-robin across dies for
  channel parallelism), invalidating the old copy;
* greedy garbage collection kicks in when free blocks run low,
  relocating valid pages out of the fullest-of-stale blocks;
* allocation prefers the least-erased free block (wear levelling);
* grown bad blocks (program/erase failures) are retired and replaced;
* 120 GB of the 128 GB raw capacity is exposed (§VI) — the remainder is
  over-provisioning that keeps GC affordable.

Every public operation returns the list of physical operations it
performed so the controller can convert work into simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DegradedModeError, FTLError, MediaError
from repro.health.retry import budget_for
from repro.nand.device import NANDDie
from repro.nand.spec import ZNANDSpec


@dataclass(frozen=True)
class PPA:
    """Physical page address."""

    die: int
    plane: int
    block: int
    page: int


@dataclass(frozen=True)
class PhysOp:
    """One physical NAND operation, for timing accounting."""

    kind: str      # "read" | "program" | "erase"
    die: int


@dataclass
class FTLStats:
    """Externally visible FTL counters."""

    host_reads: int = 0
    host_programs: int = 0
    gc_reads: int = 0
    gc_programs: int = 0
    erases: int = 0
    gc_invocations: int = 0
    grown_bad_blocks: int = 0
    #: Program attempts that failed and were remapped to another block.
    program_retries: int = 0
    #: Pages proactively rewritten by the patrol scrubber.
    scrub_relocations: int = 0
    #: Live pages copied out of a grown-bad block at retirement.
    rescued_pages: int = 0

    @property
    def write_amplification(self) -> float:
        if self.host_programs == 0:
            return 1.0
        return (self.host_programs + self.gc_programs) / self.host_programs


@dataclass
class _BlockMeta:
    """FTL-side view of one physical block."""

    die: int
    plane: int
    block: int
    valid: int = 0
    lpns: dict[int, int] = field(default_factory=dict)  # page -> lpn


class FlashTranslationLayer:
    """Page-mapped FTL over a set of dies."""

    #: GC starts when fewer free blocks than this remain (per pool).
    GC_LOW_WATER = 4
    #: GC relocates until this many free blocks are available again.
    GC_HIGH_WATER = 8

    def __init__(self, dies: list[NANDDie],
                 logical_capacity_bytes: int) -> None:
        if not dies:
            raise FTLError("FTL needs at least one die")
        self.dies = dies
        self.spec: ZNANDSpec = dies[0].spec
        self.logical_pages = logical_capacity_bytes // self.spec.page_bytes
        self._l2p: dict[int, PPA] = {}
        self._blocks: dict[tuple[int, int, int], _BlockMeta] = {}
        self._free: list[tuple[int, int, int]] = []
        self._open: dict[int, _BlockMeta | None] = {}
        self._next_die = 0
        self.stats = FTLStats()
        #: Installed by fault campaigns (duck-typed
        #: :class:`repro.faults.clock.FaultClock`); the FTL is timeless,
        #: so GC cuts are count-scheduled via ``tick``.
        self.fault_clock = None
        #: Shared :class:`repro.health.monitor.HealthMonitor`, installed
        #: by the owning controller.  The FTL is timeless, so its events
        #: inherit the monitor's clock.
        self.health = None
        #: Remap attempts per logical write, from the taxonomy budget
        #: for generic media failures.
        self.remap_budget = budget_for(MediaError).attempts
        self._discover_blocks()
        self._check_capacity()

    # -- init ---------------------------------------------------------------------

    def _discover_blocks(self) -> None:
        for die_index, die in enumerate(self.dies):
            self._open[die_index] = None
            for plane, block in die.good_blocks():
                self._free.append((die_index, plane, block))

    def _check_capacity(self) -> None:
        physical_pages = len(self._free) * self.spec.pages_per_block
        if physical_pages < self.logical_pages + (
                self.GC_HIGH_WATER * self.spec.pages_per_block):
            raise FTLError(
                "not enough physical capacity for the logical space "
                "plus over-provisioning: "
                f"{physical_pages} pages < {self.logical_pages} logical")

    # -- host API ----------------------------------------------------------------------

    def read_page(self, lpn: int) -> tuple[bytes | None, PPA | None,
                                           list[PhysOp]]:
        """Look up and read a logical page.

        Returns ``(None, None, [])`` for never-written pages (the block
        device reads them as zeros).
        """
        self._check_lpn(lpn)
        ppa = self._l2p.get(lpn)
        if ppa is None:
            return None, None, []
        die = self.dies[ppa.die]
        data = die.read_page(ppa.plane, ppa.block, ppa.page)
        self.stats.host_reads += 1
        return data, ppa, [PhysOp("read", ppa.die)]

    def write_page(self, lpn: int, data: bytes) -> tuple[PPA, list[PhysOp]]:
        """Write a logical page out-of-place; returns its new PPA."""
        self._check_lpn(lpn)
        ops: list[PhysOp] = []
        ops.extend(self._maybe_collect_garbage())
        ppa, program_ops = self._append(lpn, data, gc=False)
        ops.extend(program_ops)
        return ppa, ops

    def relocate(self, lpn: int) -> list[PhysOp]:
        """Proactively rewrite a logical page to a fresh block.

        The patrol scrubber's remap primitive: the current copy is
        read die-side (the stored payload is always recoverable there)
        and appended elsewhere, invalidating the decaying location.
        Refused with :class:`DegradedModeError` once the module is
        read-only — scrub must not consume the last healthy blocks.
        """
        self._check_lpn(lpn)
        if self.health is not None and self.health.read_only:
            raise DegradedModeError(
                f"relocation of lpn {lpn} refused; module is read-only",
                reason=self.health.reason or "read-only")
        ppa = self._l2p.get(lpn)
        if ppa is None:
            return []
        ops: list[PhysOp] = []
        ops.extend(self._maybe_collect_garbage())
        data = self.dies[ppa.die].read_page(ppa.plane, ppa.block, ppa.page)
        ops.append(PhysOp("read", ppa.die))
        _, program_ops = self._append(lpn, data, gc=True)
        ops.extend(program_ops)
        self.stats.scrub_relocations += 1
        return ops

    def trim(self, lpn: int) -> None:
        """Drop the mapping for a logical page (discard)."""
        self._check_lpn(lpn)
        ppa = self._l2p.pop(lpn, None)
        if ppa is not None:
            self._invalidate(ppa)

    def mapping(self, lpn: int) -> PPA | None:
        """Current physical location of a logical page, if any."""
        return self._l2p.get(lpn)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def mapped_pages(self) -> int:
        return len(self._l2p)

    # -- allocation --------------------------------------------------------------------

    def _append(self, lpn: int, data: bytes,
                gc: bool) -> tuple[PPA, list[PhysOp]]:
        ops: list[PhysOp] = []
        attempts = 0
        while True:
            attempts += 1
            if attempts > self.remap_budget:
                if self.health is not None:
                    self.health.record("ftl", "remap-exhausted")
                raise DegradedModeError(
                    f"write of lpn {lpn} failed {attempts - 1} remaps; "
                    "media exhausted", reason="remap-exhausted")
            die_index = self._pick_die()
            meta = self._open_block(die_index)
            page = self.dies[die_index].block_info(
                meta.plane, meta.block).next_page
            try:
                self.dies[die_index].program_page(
                    meta.plane, meta.block, page, data)
            except MediaError:
                # Grown bad block: retire it and remap the write to a
                # fresh block — the paper's bad-block handling path.
                self.stats.program_retries += 1
                if self.health is not None:
                    self.health.record("ftl", "remap")
                ops.extend(self._retire(meta))
                continue
            break
        ops.append(PhysOp("program", die_index))
        if gc:
            self.stats.gc_programs += 1
        else:
            self.stats.host_programs += 1
        old = self._l2p.get(lpn)
        if old is not None:
            self._invalidate(old)
        ppa = PPA(die_index, meta.plane, meta.block, page)
        self._l2p[lpn] = ppa
        meta.valid += 1
        meta.lpns[page] = lpn
        if page + 1 >= self.spec.pages_per_block:
            self._open[die_index] = None   # block is full; close it
        return ppa, ops

    def _pick_die(self) -> int:
        """Round-robin across dies, skipping dies with no space."""
        for _ in range(len(self.dies)):
            die_index = self._next_die
            self._next_die = (self._next_die + 1) % len(self.dies)
            if self._open[die_index] is not None or self._has_free(die_index):
                return die_index
        # Fall back to any die with a free block at all.
        for die_index in range(len(self.dies)):
            if self._open[die_index] is not None or self._has_free(die_index):
                return die_index
        raise FTLError("no die has free blocks; GC failed to reclaim space")

    def _has_free(self, die_index: int) -> bool:
        return any(key[0] == die_index for key in self._free)

    def _open_block(self, die_index: int) -> _BlockMeta:
        meta = self._open[die_index]
        if meta is not None:
            return meta
        candidates = [key for key in self._free if key[0] == die_index]
        if not candidates:
            raise FTLError(f"die {die_index} has no free blocks")
        # Wear levelling: least-erased candidate first.
        key = min(candidates, key=lambda k: self.dies[k[0]].block_info(
            k[1], k[2]).erase_count)
        self._free.remove(key)
        meta = _BlockMeta(die=key[0], plane=key[1], block=key[2])
        self._blocks[key] = meta
        self._open[die_index] = meta
        return meta

    def _invalidate(self, ppa: PPA) -> None:
        meta = self._blocks.get((ppa.die, ppa.plane, ppa.block))
        if meta is None:
            raise FTLError(f"invalidate of untracked block {ppa}")
        if meta.lpns.pop(ppa.page, None) is not None:
            meta.valid -= 1

    def _retire(self, meta: _BlockMeta) -> list[PhysOp]:
        """Retire a grown-bad block: rescue its live pages, fence it off.

        Bad-block management must copy surviving valid pages out
        *before* the block is marked bad (reads from bad blocks are
        refused); otherwise every earlier write that landed in the
        block becomes silent data loss the next host read trips over.
        The rescue is bounded recursion: a rescue program that fails
        retires another (distinct) block, and every ``_append`` carries
        its own remap budget.
        """
        die = self.dies[meta.die]
        survivors = [
            (lpn, die.read_page(meta.plane, meta.block, page),
             PPA(meta.die, meta.plane, meta.block, page))
            for page, lpn in sorted(meta.lpns.items())]
        die.mark_bad(meta.plane, meta.block)
        self.stats.grown_bad_blocks += 1
        if self.health is not None:
            self.health.record("ftl", "bad-block")
        if self._open.get(meta.die) is meta:
            self._open[meta.die] = None
        meta.lpns.clear()
        meta.valid = 0
        ops: list[PhysOp] = [PhysOp("read", meta.die) for _ in survivors]
        for lpn, data, old_ppa in survivors:
            if self._l2p.get(lpn) != old_ppa:
                continue   # rewritten elsewhere since the read above
            _, program_ops = self._append(lpn, data, gc=True)
            ops.extend(program_ops)
            self.stats.rescued_pages += 1
        return ops

    # -- garbage collection --------------------------------------------------------------

    def _maybe_collect_garbage(self) -> list[PhysOp]:
        if len(self._free) > self.GC_LOW_WATER:
            return []
        self.stats.gc_invocations += 1
        ops: list[PhysOp] = []
        guard = 0
        while len(self._free) < self.GC_HIGH_WATER:
            guard += 1
            if guard > 64:
                break
            victim = self._pick_victim()
            if victim is None:
                break
            ops.extend(self._collect(victim))
        return ops

    def _pick_victim(self) -> _BlockMeta | None:
        """Greedy: the closed block with the fewest valid pages."""
        best: _BlockMeta | None = None
        for key, meta in self._blocks.items():
            if meta is self._open.get(meta.die):
                continue
            if key in self._free:
                continue
            full = self.dies[meta.die].block_info(
                meta.plane, meta.block).next_page >= self.spec.pages_per_block
            if not full:
                continue
            if best is None or meta.valid < best.valid:
                best = meta
        if best is not None and best.valid >= self.spec.pages_per_block:
            return None   # nothing reclaimable
        return best

    def _collect(self, victim: _BlockMeta) -> list[PhysOp]:
        ops: list[PhysOp] = []
        die = self.dies[victim.die]
        for page, lpn in sorted(victim.lpns.items()):
            if self.fault_clock is not None:
                self.fault_clock.tick("ftl.gc")
            data = die.read_page(victim.plane, victim.block, page)
            ops.append(PhysOp("read", victim.die))
            self.stats.gc_reads += 1
            _, program_ops = self._append(lpn, data, gc=True)
            ops.extend(program_ops)
        victim.lpns.clear()
        victim.valid = 0
        key = (victim.die, victim.plane, victim.block)
        try:
            die.erase_block(victim.plane, victim.block)
        except MediaError:
            ops.extend(self._retire(victim))
            self._blocks.pop(key, None)
            return ops
        ops.append(PhysOp("erase", victim.die))
        self.stats.erases += 1
        self._blocks.pop(key, None)
        self._free.append(key)
        return ops

    # -- misc ------------------------------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise FTLError(
                f"logical page {lpn} out of range (0..{self.logical_pages})")
