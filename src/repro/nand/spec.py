"""Geometry and timing of the Z-NAND backend.

Z-NAND is Samsung's low-latency SLC NAND ("Ultra-low latency with
Samsung Z-NAND SSD", 2017): array read time (tR) in the ~3 µs class —
an order of magnitude faster than conventional NAND — with program times
around 100 µs.

The PoC's NAND PHY runs at only 50 MHz, "a tenfold of the maximum
operating frequency supported by the Z-NAND devices" (§VII-C); the spec
keeps the PHY frequency a parameter so the ablation benches can model
the ASIC fix the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.units import gb, kb, us


@dataclass(frozen=True)
class ZNANDSpec:
    """One Z-NAND package and its interface."""

    name: str = "Z-NAND-64GB"
    capacity_bytes: int = gb(64)
    page_bytes: int = kb(4)          # data per page (ECC unit, §III-A)
    pages_per_block: int = 384
    planes_per_die: int = 2
    dies: int = 4

    tr_ps: int = us(3.0)             # array read (tR), Z-NAND class
    tprog_ps: int = us(30.0)         # page program (SLC Z-NAND class)
    tbers_ps: int = us(1000.0)       # block erase

    # The PoC's NAND PHY runs at 50 MHz, "a tenfold of the maximum
    # operating frequency supported by the Z-NAND devices" (§VII-C).
    # The FPGA-internal datapath behind the serdes is modelled 128 bits
    # wide, giving a 4 KB page transfer of ~5 us at 50 MHz; together
    # with tR this puts the PoC's page read at ~8 us, which reproduces
    # the paper's measured 8.9-tREFI writeback+cachefill pair (§VII-B2).
    phy_mhz: int = 50                # PoC PHY clock (§VII-C); ASIC: 500
    phy_bytes_per_cycle: int = 16    # 128-bit internal datapath

    endurance_pe_cycles: int = 50_000   # SLC-class endurance
    initial_bad_block_ppm: int = 2000   # factory bad blocks, parts/million

    @property
    def transfer_ps_per_page(self) -> int:
        """Bus time to shuttle one page between die and controller."""
        cycles = self.page_bytes // self.phy_bytes_per_cycle
        period_ps = round(1_000_000 / self.phy_mhz)
        return cycles * period_ps

    @property
    def read_ps(self) -> int:
        """End-to-end page read: array access + bus transfer."""
        return self.tr_ps + self.transfer_ps_per_page

    @property
    def program_ps(self) -> int:
        """End-to-end page program: bus transfer + array program."""
        return self.tprog_ps + self.transfer_ps_per_page

    @property
    def blocks_per_plane(self) -> int:
        per_die = self.capacity_bytes // self.dies
        per_plane = per_die // self.planes_per_die
        return per_plane // (self.pages_per_block * self.page_bytes)

    @property
    def total_blocks(self) -> int:
        return self.blocks_per_plane * self.planes_per_die * self.dies

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    def validate(self) -> None:
        """Raise :class:`ConfigError` on nonsense geometry."""
        if self.page_bytes <= 0 or self.pages_per_block <= 0:
            raise ConfigError("page/block geometry must be positive")
        if self.blocks_per_plane <= 0:
            raise ConfigError(
                f"{self.name}: capacity too small for geometry")
        if self.phy_mhz <= 0:
            raise ConfigError("PHY frequency must be positive")

    def with_phy_mhz(self, phy_mhz: int) -> "ZNANDSpec":
        """Copy with a different PHY clock (the §VII-C ASIC what-if)."""
        spec = replace(self, phy_mhz=phy_mhz)
        spec.validate()
        return spec


#: The paper's part: 64 GB Z-NAND, two of which sit on the DIMM.
ZNAND_64GB = ZNAND_64GB = ZNANDSpec()

#: A small geometry for fast unit tests (64 MB, same timing).
ZNAND_TINY = ZNANDSpec(name="Z-NAND-tiny", capacity_bytes=gb(0.0625),
                       pages_per_block=64, dies=2)
