"""``python -m repro soak``: the long-run health soak.

``soak [--quick] [--seed N] [--out DIR]`` composes the fault surfaces
over successive rounds, marches the module down the whole recovery
ladder, and writes a schema-pinned ``SOAK_<timestamp>.json`` report.
Exits non-zero when the soak fails its acceptance gate: any data loss,
a missing ladder edge, p99 latency past the bound, or a sanitizer
violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def cmd_soak(args: argparse.Namespace) -> int:
    from repro.health.soak import SoakRound, run_soak
    from repro.health.report import render_report, validate_report

    def progress(rnd: SoakRound) -> None:
        print(f"  [{rnd.health_before:>9} -> {rnd.health_after:<9}] "
              f"{rnd.name:<12} writes={rnd.writes} reads={rnd.reads} "
              f"refused={rnd.refused_writes} loss={rnd.data_loss}")

    mode = "quick" if args.quick else "full"
    print(f"repro soak: {mode} run, seed {args.seed}")
    result = run_soak(seed=args.seed, quick=args.quick,
                      capacity=args.capacity, p99_bound=args.p99_bound,
                      progress=progress, snapshot=not args.no_snapshot)
    timestamp = time.strftime("%Y%m%d-%H%M%S")
    payload = render_report(result, timestamp=timestamp)
    problems = validate_report(json.loads(payload))
    if problems:    # a schema bug is a tooling failure, not a soak failure
        for problem in problems:
            print(f"report schema problem: {problem}", file=sys.stderr)
        return 2
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"SOAK_{timestamp}.json"
    path.write_text(payload)
    totals = result.totals()
    print(f"wrote {path}")
    print(f"rounds={totals['rounds']} writes={totals['writes']} "
          f"reads={totals['reads']} refused={totals['refused_writes']} "
          f"data_loss={totals['data_loss']} "
          f"violations={totals['violations']}")
    print(f"edges: " + " ".join(
        f"{edge}={count}" for edge, count in sorted(result.edges.items())))
    print(f"p99: clean={result.clean_p99_ps} ps "
          f"soak={result.soak_p99_ps} ps "
          f"ratio={result.p99_ratio_x1000 / 1000:.2f}x "
          f"(bound {result.p99_bound:.0f}x)")
    if not result.ok:
        if result.data_loss:
            print(f"soak FAILED: {result.data_loss} pages lost",
                  file=sys.stderr)
        if not result.edges_ok:
            missing = [e for e, n in sorted(result.edges.items()) if n < 1]
            print(f"soak FAILED: ladder edges never exercised: {missing}",
                  file=sys.stderr)
        if not result.latency_ok:
            print("soak FAILED: p99 latency degradation "
                  f"{result.p99_ratio_x1000 / 1000:.2f}x exceeds the "
                  f"{result.p99_bound:.0f}x bound", file=sys.stderr)
        if result.violations:
            print(f"soak FAILED: {result.violations} sanitizer violations",
                  file=sys.stderr)
        return 1
    print("soak clean: zero data loss, full ladder coverage, "
          "p99 within bound, sanitizers quiet")
    return 0


def build_parser(sub_or_none: "argparse._SubParsersAction | None" = None
                 ) -> argparse.ArgumentParser:
    """Build the ``soak`` parser, standalone or under a parent CLI."""
    from repro.health.soak import DEFAULT_P99_BOUND
    if sub_or_none is None:
        parser = argparse.ArgumentParser(prog="repro soak")
    else:
        parser = sub_or_none.add_parser(
            "soak", help="long-run health soak down the recovery ladder")
    parser.add_argument("--quick", action="store_true",
                        help="smaller footprint per round")
    parser.add_argument("--seed", type=int, default=0,
                        help="soak seed (default 0)")
    parser.add_argument("--out", default="results",
                        help="directory for SOAK_<timestamp>.json")
    parser.add_argument("--capacity", type=int, default=400_000,
                        help="tracer retention bound (records)")
    parser.add_argument("--p99-bound", type=float,
                        default=DEFAULT_P99_BOUND,
                        help="max faulted/clean p99 latency ratio")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="run the fault-free twin from zero instead of "
                             "forking it from the shared prefix snapshot "
                             "(reports are byte-identical either way)")
    parser.set_defaults(fn=cmd_soak)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
