"""The long-run soak harness: composed faults down the whole ladder.

A soak is one deterministic long-horizon run that composes the
:mod:`repro.faults` fault surfaces (CP word corruption, ack drops, DMA
shortfalls, Z-NAND program failures, uncorrectable ECC) over successive
*rounds*, marching one NVDIMM-C module down the entire recovery ladder
on purpose::

    baseline    -> ok          (patrol scrub in idle refresh windows)
    cp-storm    -> retry       (>= 3 transient fault types interleaved)
    media-remap -> remap       (program failures within remap budget)
    wear-out    -> read_only   (grown bad blocks cross the budget)
    fail-stop   -> fail_stop   (unrecoverable read while degraded)

Acceptance, checked from the report alone:

* **zero data loss** — every committed page is read back intact through
  every round up to and including read-only mode (the fail-stop trigger
  deliberately sacrifices one page to an unrecoverable read; it is
  accounted in the round's notes as ``sacrificed_pages``, exactly like
  the lossy ``nand-read-uncorrectable-hard`` campaign cell, never
  hidden inside ``data_loss``);
* **full ladder coverage** — every edge of
  :data:`~repro.health.monitor.LADDER_EDGES` appears in the health
  timeline at least once;
* **bounded latency degradation** — the p99 op latency of the faulted
  rounds stays within ``p99_bound`` times a fault-free twin running the
  identical workload schedule;
* **sanitizers quiet** — the full :func:`~repro.check.sanitizer.
  default_suite` (including the scrub sanitizer) observes the run.

Determinism: the soak is a pure function of ``(seed, quick)`` — two
runs with the same seed render byte-identical reports (the CLI's
wall-clock timestamp is the only exempt field).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.check.sanitizer import default_suite
from repro.device.nvdimmc import NVDIMMCSystem
from repro.errors import FailStopError, MediaError
from repro.health.monitor import HealthPolicy
from repro.health.report import SCHEMA
from repro.nvmc.nvmc import CPFaultPort
from repro.sim.snapshot import SimSnapshot
from repro.sim.trace import Tracer, use_tracer
from repro.units import PAGE_4K, kb, mb, us

#: Device pages the soak workload touches; 2.5x the 128-slot cache so
#: evictions (and their writeback fault sites) are constant.
FOOTPRINT_PAGES = 320
FOOTPRINT_PAGES_QUICK = 192
_CACHE_BYTES = kb(512)
_DEVICE_BYTES = mb(8)

#: Grown-bad-block budget for the soak module: small enough that the
#: wear-out round reaches read-only with a handful of injected program
#: failures, large enough that the media-remap round stays below it.
_SOAK_BAD_BLOCK_BUDGET = 4

#: Default p99 bound: faulted p99 op latency may not exceed this many
#: times the fault-free twin's p99.
DEFAULT_P99_BOUND = 40.0


@dataclass
class SoakRound:
    """One round of the soak: a fault mix, a workload leg, a verify."""

    name: str
    faults: list[str] = field(default_factory=list)
    writes: int = 0
    reads: int = 0
    refused_writes: int = 0
    media_errors: int = 0
    data_loss: int = 0
    health_before: str = "ok"
    health_after: str = "ok"
    notes: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "faults": list(self.faults),
            "writes": self.writes,
            "reads": self.reads,
            "refused_writes": self.refused_writes,
            "media_errors": self.media_errors,
            "data_loss": self.data_loss,
            "health_before": self.health_before,
            "health_after": self.health_after,
            "notes": {key: self.notes[key] for key in sorted(self.notes)},
        }


@dataclass
class SoakResult:
    """Everything one soak run observed."""

    seed: int
    quick: bool
    p99_bound: float = DEFAULT_P99_BOUND
    rounds: list[SoakRound] = field(default_factory=list)
    health_timeline: list[dict] = field(default_factory=list)
    edges: dict[str, int] = field(default_factory=dict)
    clean_p50_ps: int = 0
    clean_p99_ps: int = 0
    soak_p50_ps: int = 0
    soak_p99_ps: int = 0
    samples: int = 0
    scrub: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    violations: int = 0

    @property
    def data_loss(self) -> int:
        return sum(r.data_loss for r in self.rounds)

    @property
    def p99_ratio_x1000(self) -> int:
        if self.clean_p99_ps <= 0:
            return 0
        return round(1000 * self.soak_p99_ps / self.clean_p99_ps)

    @property
    def edges_ok(self) -> bool:
        return bool(self.edges) and all(n >= 1 for n in self.edges.values())

    @property
    def latency_ok(self) -> bool:
        return self.p99_ratio_x1000 <= round(1000 * self.p99_bound)

    @property
    def ok(self) -> bool:
        return (self.data_loss == 0 and self.violations == 0
                and self.edges_ok and self.latency_ok)

    def totals(self) -> dict[str, int]:
        return {
            "rounds": len(self.rounds),
            "writes": sum(r.writes for r in self.rounds),
            "reads": sum(r.reads for r in self.rounds),
            "refused_writes": sum(r.refused_writes for r in self.rounds),
            "media_errors": sum(r.media_errors for r in self.rounds),
            "data_loss": self.data_loss,
            "violations": self.violations,
        }

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "generated_at": None,
            "seed": self.seed,
            "quick": self.quick,
            "rounds": [r.to_dict() for r in self.rounds],
            "health_timeline": list(self.health_timeline),
            "edges": {key: self.edges[key] for key in sorted(self.edges)},
            "latency": {
                "samples": self.samples,
                "clean_p50_ps": self.clean_p50_ps,
                "clean_p99_ps": self.clean_p99_ps,
                "soak_p50_ps": self.soak_p50_ps,
                "soak_p99_ps": self.soak_p99_ps,
                "p99_ratio_x1000": self.p99_ratio_x1000,
                "p99_bound_x1000": round(1000 * self.p99_bound),
            },
            "scrub": {key: self.scrub[key] for key in sorted(self.scrub)},
            "counters": {key: self.counters[key]
                         for key in sorted(self.counters)},
            "totals": self.totals(),
            "ok": self.ok,
        }


# -- workload legs (shared by the soak system and its fault-free twin) ------------


def _payload(page: int, version: int) -> bytes:
    head = page.to_bytes(4, "little") + version.to_bytes(4, "little")
    return head + bytes([(page * 137 + version * 31) % 256]) * (PAGE_4K - 8)


def _percentile(samples: list[int], fraction: float) -> int:
    if not samples:
        return 0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


class _Leg:
    """Workload-leg runner over one driver, collecting op latencies."""

    def __init__(self, driver, shadow: dict[int, bytes],
                 footprint: int) -> None:
        self.driver = driver
        self.shadow = shadow
        self.footprint = footprint
        self.latencies: list[int] = []

    def seq_write(self, t: int, version: int, rnd: SoakRound,
                  sample: bool = False) -> int:
        for page in range(self.footprint):
            data = _payload(page, version)
            try:
                end = self.driver.write_page(page, data, t)
            except FailStopError:
                rnd.refused_writes += 1
                continue
            except MediaError as exc:
                if getattr(exc, "reason", None) is not None:
                    rnd.refused_writes += 1
                else:
                    rnd.media_errors += 1
                continue
            if sample:
                self.latencies.append(max(0, end - t))
            t = end
            rnd.writes += 1
            self.shadow[page] = data
        return t

    def rand_rw(self, t: int, rng: random.Random, steps: int,
                version_base: int, rnd: SoakRound,
                sample: bool = False) -> int:
        for step in range(steps):
            if self.shadow and rng.random() < 0.3:
                page = rng.choice(sorted(self.shadow))
                try:
                    _data, end = self.driver.read_page(page, t)
                except MediaError:
                    rnd.media_errors += 1
                    continue
                rnd.reads += 1
            else:
                page = rng.randrange(self.footprint)
                data = _payload(page, version_base + step)
                try:
                    end = self.driver.write_page(page, data, t)
                except FailStopError:
                    rnd.refused_writes += 1
                    continue
                except MediaError as exc:
                    if getattr(exc, "reason", None) is not None:
                        rnd.refused_writes += 1
                    else:
                        rnd.media_errors += 1
                    continue
                rnd.writes += 1
                self.shadow[page] = data
            if sample:
                self.latencies.append(max(0, end - t))
            t = end
        return t

    def verify(self, t: int, rnd: SoakRound) -> int:
        """Read back every committed page; mismatches are data loss."""
        lost = 0
        for page in sorted(self.shadow):
            try:
                data, end = self.driver.read_page(page, t)
            except MediaError:
                lost += 1
                continue
            if data != self.shadow[page]:
                lost += 1
            t = end
            rnd.reads += 1
        rnd.data_loss += lost
        return t


# -- the soak itself ---------------------------------------------------------------


def _build_system(seed: int, tracer: Tracer) -> NVDIMMCSystem:
    system = NVDIMMCSystem(
        cache_bytes=_CACHE_BYTES, device_bytes=_DEVICE_BYTES,
        seed=seed % 100003, tracer=tracer,
        health_policy=HealthPolicy(
            read_only_bad_blocks=_SOAK_BAD_BLOCK_BUDGET))
    system.nvmc.faults = CPFaultPort()
    return system


def _run_twin(seed: int, footprint: int, steps: int,
              tracer: Tracer) -> list[int]:
    """The fault-free twin: the baseline+storm schedule, nothing armed."""
    rng = random.Random(seed)
    system = _build_system(seed, tracer)
    leg = _Leg(system.driver, {}, footprint)
    scratch = SoakRound(name="twin")
    t = round(us(1))
    t = leg.seq_write(t, 0, scratch, sample=True)
    t = leg.rand_rw(t, rng, steps, 1_000, scratch, sample=True)
    t = leg.rand_rw(t, rng, steps, 2_000, scratch, sample=True)
    return leg.latencies


def run_soak(seed: int = 0, quick: bool = False,
             capacity: int = 400_000,
             p99_bound: float = DEFAULT_P99_BOUND,
             progress: Callable[[SoakRound], None] | None = None,
             snapshot: bool = True) -> SoakResult:
    """Execute the five-round soak under a sanitized tracer.

    ``snapshot=True`` (the default) runs the shared prefix — system
    bring-up plus the sequential fill, which consumes no round RNG —
    exactly once, captures a :class:`~repro.sim.snapshot.SimSnapshot`,
    and *forks* the fault-free latency twin from the capture instead of
    re-executing the prefix on a second system.  ``snapshot=False``
    keeps the legacy run-the-twin-from-zero path; both render
    byte-identical reports (the twin's prefix is deterministic, so
    forking it and re-running it are the same simulation).
    """
    soak_seed = zlib.crc32(f"{seed}:soak".encode("ascii"))
    footprint = FOOTPRINT_PAGES_QUICK if quick else FOOTPRINT_PAGES
    steps = footprint
    scrub_windows = 32 if quick else 96
    result = SoakResult(seed=seed, quick=quick, p99_bound=p99_bound)
    tracer = Tracer(enabled=True, capacity=capacity)
    suite = default_suite(strict=False)
    if not snapshot:
        with use_tracer(tracer):
            with suite.attach(tracer):
                twin_latencies = _run_twin(soak_seed, footprint, steps,
                                           tracer)
                _run_rounds(result, soak_seed, footprint, steps,
                            scrub_windows, tracer, progress)
        result.violations = len(suite.violations)
        result.clean_p50_ps = _percentile(twin_latencies, 0.50)
        result.clean_p99_ps = _percentile(twin_latencies, 0.99)
        return result

    with use_tracer(tracer):
        with suite.attach(tracer):
            system, leg, rnd, t = _soak_prefix(soak_seed, footprint, tracer)
            snap = _capture_prefix(system, tracer, suite, leg, t)
            _run_rounds_from(result, system, leg, rnd, t, soak_seed,
                             footprint, steps, scrub_windows, progress)
    twin_latencies = _fork_twin(snap, soak_seed, steps)
    # The legacy path runs the prefix twice (once per system) under one
    # suite; here the main run and the twin fork each observed it once,
    # so the two suites together see the same record population.
    result.violations = len(suite.violations) + result.violations
    result.clean_p50_ps = _percentile(twin_latencies, 0.50)
    result.clean_p99_ps = _percentile(twin_latencies, 0.99)
    return result


def _soak_prefix(seed: int, footprint: int, tracer: Tracer,
                 ) -> tuple[NVDIMMCSystem, "_Leg", SoakRound, int]:
    """Bring-up plus the sequential fill: the RNG-free shared prefix."""
    system = _build_system(seed, tracer)
    shadow: dict[int, bytes] = {}
    leg = _Leg(system.driver, shadow, footprint)
    rnd = SoakRound(name="baseline",
                    health_before=system.health.state.label)
    t = round(us(1))
    t = leg.seq_write(t, 0, rnd, sample=True)
    return system, leg, rnd, t


def _capture_prefix(system: NVDIMMCSystem, tracer: Tracer, suite,
                    leg: "_Leg", t: int) -> SimSnapshot:
    """Snapshot the post-prefix graph (see ``explorer._capture``)."""
    nvmc = system.nvmc
    saved = (tracer.records, nvmc.operations, nvmc.fsm.history)
    tracer.records = []
    nvmc.operations = []
    nvmc.fsm.history = []
    try:
        return SimSnapshot.capture(
            {"system": system, "tracer": tracer, "suite": suite,
             "leg": leg, "t": t},
            label="soak-prefix")
    finally:
        tracer.records, nvmc.operations, nvmc.fsm.history = saved


def _fork_twin(snap: SimSnapshot, seed: int, steps: int) -> list[int]:
    """The fault-free twin, forked from the shared prefix.

    Mirrors :func:`_run_twin` past the fill: a fresh ``Random(seed)``
    (the prefix consumed none of it) drives the two mixed legs; the
    restored leg already carries the prefix latency samples.  The fork's
    suite runs its finalizers so end-of-run invariants are checked for
    the twin exactly as the legacy single-suite path did.
    """
    state = snap.restore()
    rng = random.Random(seed)
    leg = state["leg"]
    scratch = SoakRound(name="twin")
    t = state["t"]
    with use_tracer(state["tracer"]):
        t = leg.rand_rw(t, rng, steps, 1_000, scratch, sample=True)
        t = leg.rand_rw(t, rng, steps, 2_000, scratch, sample=True)
        state["suite"].detach()
    return leg.latencies


def _run_rounds(result: SoakResult, seed: int, footprint: int, steps: int,
                scrub_windows: int, tracer: Tracer,
                progress: Callable[[SoakRound], None] | None) -> None:
    system, leg, rnd, t = _soak_prefix(seed, footprint, tracer)
    _run_rounds_from(result, system, leg, rnd, t, seed, footprint, steps,
                     scrub_windows, progress)


def _run_rounds_from(result: SoakResult, system: NVDIMMCSystem,
                     leg: "_Leg", rnd: SoakRound, t: int, seed: int,
                     footprint: int, steps: int, scrub_windows: int,
                     progress: Callable[[SoakRound], None] | None) -> None:
    rng = random.Random(seed)
    monitor = system.health
    port = system.nvmc.faults
    shadow = leg.shadow
    trefi = system.spec.trefi_ps

    def close(rnd: SoakRound) -> None:
        rnd.health_after = monitor.state.label
        result.rounds.append(rnd)
        if progress is not None:
            progress(rnd)

    # Round 1 — baseline (its fill already ran as the shared prefix):
    # committed data, patrol scrub, state stays ok.
    idle_from = max(t, system.nvmc.ready_ps)
    system.scrubber.patrol(idle_from, idle_from + scrub_windows * trefi)
    t = max(idle_from + scrub_windows * trefi, system.nvmc.ready_ps)
    t = leg.rand_rw(t, rng, steps, 1_000, rnd, sample=True)
    t = leg.verify(t, rnd)
    close(rnd)

    # Round 2 — cp-storm: three transient fault surfaces interleaved
    # (CP word corruption, lost acks, DMA shortfalls) cross the
    # transient budget: ok -> retry.
    rnd = SoakRound(name="cp-storm", health_before=monitor.state.label,
                    faults=["cp-corrupt", "cp-ack-drop", "dma-partial"])
    port.corrupt_command("phase", after=1 + rng.randrange(3))
    port.corrupt_command("opcode", after=5 + rng.randrange(3))
    port.drop_ack(after=9 + rng.randrange(3))
    port.drop_ack(after=13 + rng.randrange(3))
    for _ in range(3):
        port.shorten_dma(512 * (1 + rng.randrange(6)),
                         after=rng.randrange(6))
    t = leg.rand_rw(t, rng, steps, 2_000, rnd, sample=True)
    t = leg.verify(t, rnd)
    rnd.notes = {"cp_retries": system.driver.stats.cp_retries,
                 "cp_timeouts": system.driver.stats.cp_timeouts,
                 "dma_partials": system.nvmc.dma.stats.partial_transfers}
    close(rnd)

    # Round 3 — media-remap: program failures inside the remap budget;
    # the FTL retires the blocks and remaps: retry -> remap.
    rnd = SoakRound(name="media-remap", health_before=monitor.state.label,
                    faults=["nand-program-fail"])
    for index in rng.sample(range(len(system.nand.dies)), 2):
        system.nand.dies[index].inject_program_failures(1)
    t = leg.seq_write(t, 1, rnd)
    idle_from = max(t, system.nvmc.ready_ps)
    system.scrubber.patrol(idle_from, idle_from + scrub_windows * trefi)
    t = max(idle_from + scrub_windows * trefi, system.nvmc.ready_ps)
    t = leg.verify(t, rnd)
    rnd.notes = {"program_retries": system.nand.ftl.stats.program_retries,
                 "grown_bad_blocks": system.nand.ftl.stats.grown_bad_blocks}
    close(rnd)

    # Round 4 — wear-out: more grown bad blocks cross the budget:
    # remap -> read_only.  Every committed page must survive the
    # transition and stay readable from the degraded module.
    rnd = SoakRound(name="wear-out", health_before=monitor.state.label,
                    faults=["nand-program-fail"])
    for index in rng.sample(range(len(system.nand.dies)), 2):
        system.nand.dies[index].inject_program_failures(1)
    t = leg.seq_write(t, 2, rnd)
    t = leg.verify(t, rnd)
    rnd.notes = {
        "grown_bad_blocks": system.nand.ftl.stats.grown_bad_blocks,
        "degraded_reads": system.driver.stats.degraded_reads,
        "eviction_rollbacks": system.driver.stats.eviction_rollbacks,
    }
    close(rnd)

    # Round 5 — fail-stop: one unrecoverable read while already
    # degraded: read_only -> fail_stop.  The sacrificed page is honest
    # loss-by-design (like the campaign's -hard cell), noted, not
    # hidden; afterwards every host operation must be refused.
    rnd = SoakRound(name="fail-stop", health_before=monitor.state.label,
                    faults=["nand-read-uncorrectable-hard"])
    kill_page = next(page for page in sorted(shadow)
                     if page not in system.driver.page_to_slot)
    system.nand.codec.inject_uncorrectable(1 + system.nand.read_retry_limit)
    sacrificed = 0
    try:
        _data, t = system.driver.read_page(kill_page, t)
    except MediaError:
        sacrificed = 1
    refused_reads = refused_writes = 0
    for page in sorted(shadow)[:4]:
        try:
            system.driver.read_page(page, t)
        except FailStopError:
            refused_reads += 1
        try:
            system.driver.write_page(page, _payload(page, 9_999), t)
        except FailStopError:
            refused_writes += 1
    rnd.refused_writes += refused_writes
    rnd.notes = {
        "sacrificed_pages": sacrificed,
        "refused_reads": refused_reads,
        "unrecovered_reads": system.nand.stats.unrecovered_reads,
    }
    close(rnd)

    result.health_timeline = [tr.to_dict() for tr in monitor.timeline]
    result.edges = monitor.edges_exercised()
    result.counters = dict(sorted(monitor.counters.counts.items()))
    stats = system.scrubber.stats
    result.scrub = {
        "windows_scanned": stats.windows_scanned,
        "windows_busy": stats.windows_busy,
        "windows_used": stats.windows_used,
        "dram_slots_refreshed": stats.dram_slots_refreshed,
        "nand_pages_verified": stats.nand_pages_verified,
        "uncorrectable_found": stats.uncorrectable_found,
        "relocations": stats.relocations,
        "relocation_failures": stats.relocation_failures,
    }
    soak_latencies = leg.latencies
    result.samples = len(soak_latencies)
    result.soak_p50_ps = _percentile(soak_latencies, 0.50)
    result.soak_p99_ps = _percentile(soak_latencies, 0.99)
