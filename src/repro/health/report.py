"""The schema-pinned ``SOAK_*.json`` long-run soak report.

Mirrors :mod:`repro.faults.report`: :data:`SCHEMA` names the pinned
revision, :func:`render_report` serialises with sorted keys and a
trailing newline (byte-identical for identical soak results — the
wall-clock timestamp is the *only* non-deterministic field, injected by
the caller so tests can omit it), and :func:`validate_report` checks a
parsed report against the pinned shape.

The report carries the full health-state timeline (every ladder
transition with its cause) plus per-edge coverage counts, so the
acceptance gate — every ladder edge exercised, zero data loss, bounded
p99 degradation — can be checked from the artifact alone.
"""

from __future__ import annotations

import json
from typing import Any

from repro.health.monitor import LADDER_EDGES

SCHEMA = "repro.soak/1"

_REPORT_KEYS = frozenset(
    {"schema", "generated_at", "seed", "quick", "rounds",
     "health_timeline", "edges", "latency", "scrub", "counters",
     "totals", "ok"})
_ROUND_KEYS = frozenset(
    {"name", "faults", "writes", "reads", "refused_writes",
     "media_errors", "data_loss", "health_before", "health_after",
     "notes"})
_TRANSITION_KEYS = frozenset(
    {"time_ps", "from", "to", "reason", "component"})
_LATENCY_KEYS = frozenset(
    {"samples", "clean_p50_ps", "clean_p99_ps", "soak_p50_ps",
     "soak_p99_ps", "p99_ratio_x1000", "p99_bound_x1000"})
_TOTAL_KEYS = frozenset(
    {"rounds", "writes", "reads", "refused_writes", "media_errors",
     "data_loss", "violations"})
_EDGE_KEYS = frozenset(f"{a}->{b}" for a, b in LADDER_EDGES)


def render_report(result: Any, timestamp: str | None = None) -> str:
    """Serialise a :class:`~repro.health.soak.SoakResult`.

    ``timestamp`` is stamped into ``generated_at`` verbatim; pass None
    (the default) for byte-stable output.
    """
    payload = result.to_dict()
    payload["generated_at"] = timestamp
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def validate_report(payload: Any) -> list[str]:
    """Problems with a parsed report; an empty list means valid."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}: {payload.get('schema')!r}")
    missing = _REPORT_KEYS - payload.keys()
    if missing:
        problems.append(f"missing report keys: {sorted(missing)}")
    extra = payload.keys() - _REPORT_KEYS
    if extra:
        problems.append(f"unknown report keys: {sorted(extra)}")
    rounds = payload.get("rounds")
    if not isinstance(rounds, list) or not rounds:
        problems.append("rounds must be a non-empty list")
        rounds = []
    for index, entry in enumerate(rounds):
        if not isinstance(entry, dict):
            problems.append(f"rounds[{index}] must be an object")
            continue
        if entry.keys() != _ROUND_KEYS:
            problems.append(
                f"rounds[{index}] keys {sorted(entry.keys())} != "
                f"{sorted(_ROUND_KEYS)}")
            continue
        for key in ("writes", "reads", "refused_writes", "media_errors",
                    "data_loss"):
            if not isinstance(entry[key], int) or entry[key] < 0:
                problems.append(
                    f"rounds[{index}].{key} must be a non-negative int")
    timeline = payload.get("health_timeline")
    if not isinstance(timeline, list):
        problems.append("health_timeline must be a list")
        timeline = []
    for index, entry in enumerate(timeline):
        if not isinstance(entry, dict) or entry.keys() != _TRANSITION_KEYS:
            problems.append(
                f"health_timeline[{index}] keys must be "
                f"{sorted(_TRANSITION_KEYS)}")
    edges = payload.get("edges")
    if not isinstance(edges, dict) or edges.keys() != _EDGE_KEYS:
        problems.append(f"edges keys must be {sorted(_EDGE_KEYS)}")
    else:
        for key in sorted(_EDGE_KEYS):
            if not isinstance(edges[key], int) or edges[key] < 0:
                problems.append(
                    f"edges[{key!r}] must be a non-negative int")
    latency = payload.get("latency")
    if not isinstance(latency, dict) or latency.keys() != _LATENCY_KEYS:
        problems.append(f"latency keys must be {sorted(_LATENCY_KEYS)}")
    else:
        for key in sorted(_LATENCY_KEYS):
            if not isinstance(latency[key], int) or latency[key] < 0:
                problems.append(
                    f"latency.{key} must be a non-negative int")
    scrub = payload.get("scrub")
    if not isinstance(scrub, dict):
        problems.append("scrub must be an object")
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        problems.append("counters must be an object")
    totals = payload.get("totals")
    if not isinstance(totals, dict) or totals.keys() != _TOTAL_KEYS:
        problems.append(f"totals keys must be {sorted(_TOTAL_KEYS)}")
    else:
        for key in sorted(_TOTAL_KEYS):
            if not isinstance(totals[key], int) or totals[key] < 0:
                problems.append(f"totals.{key} must be a non-negative int")
    if not isinstance(payload.get("ok"), bool):
        problems.append("ok must be a bool")
    return problems
