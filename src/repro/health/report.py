"""The schema-pinned ``SOAK_*.json`` long-run soak report.

Mirrors :mod:`repro.faults.report`: :data:`SCHEMA` names the pinned
revision, :func:`render_report` serialises with sorted keys and a
trailing newline (byte-identical for identical soak results — the
wall-clock timestamp is the *only* non-deterministic field, injected by
the caller so tests can omit it), and :func:`validate_report` checks a
parsed report against the pinned shape.

The report carries the full health-state timeline (every ladder
transition with its cause) plus per-edge coverage counts, so the
acceptance gate — every ladder edge exercised, zero data loss, bounded
p99 degradation — can be checked from the artifact alone.
"""

from __future__ import annotations

import json
from typing import Any

from repro.health.monitor import LADDER_EDGES
from repro.report import (require_bool, require_exact_keys,
                          require_nonneg_ints, require_object_list,
                          schema_id, validate_schema_report)

SCHEMA = schema_id("soak", 1)

_REPORT_KEYS = frozenset(
    {"schema", "generated_at", "seed", "quick", "rounds",
     "health_timeline", "edges", "latency", "scrub", "counters",
     "totals", "ok"})
_ROUND_KEYS = frozenset(
    {"name", "faults", "writes", "reads", "refused_writes",
     "media_errors", "data_loss", "health_before", "health_after",
     "notes"})
_TRANSITION_KEYS = frozenset(
    {"time_ps", "from", "to", "reason", "component"})
_LATENCY_KEYS = frozenset(
    {"samples", "clean_p50_ps", "clean_p99_ps", "soak_p50_ps",
     "soak_p99_ps", "p99_ratio_x1000", "p99_bound_x1000"})
_TOTAL_KEYS = frozenset(
    {"rounds", "writes", "reads", "refused_writes", "media_errors",
     "data_loss", "violations"})
_EDGE_KEYS = frozenset(f"{a}->{b}" for a, b in LADDER_EDGES)


def render_report(result: Any, timestamp: str | None = None) -> str:
    """Serialise a :class:`~repro.health.soak.SoakResult`.

    ``timestamp`` is stamped into ``generated_at`` verbatim; pass None
    (the default) for byte-stable output.
    """
    payload = result.to_dict()
    payload["generated_at"] = timestamp
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _detail(payload: dict, problems: list[str]) -> None:
    for index, entry in enumerate(require_object_list(
            problems, payload, "rounds", non_empty=True)):
        if not isinstance(entry, dict):
            problems.append(f"rounds[{index}] must be an object")
            continue
        if entry.keys() != _ROUND_KEYS:
            problems.append(
                f"rounds[{index}] keys {sorted(entry.keys())} != "
                f"{sorted(_ROUND_KEYS)}")
            continue
        require_nonneg_ints(
            problems, entry,
            ("writes", "reads", "refused_writes", "media_errors",
             "data_loss"), f"rounds[{index}].")
    for index, entry in enumerate(require_object_list(
            problems, payload, "health_timeline")):
        if not isinstance(entry, dict) or entry.keys() != _TRANSITION_KEYS:
            problems.append(
                f"health_timeline[{index}] keys must be "
                f"{sorted(_TRANSITION_KEYS)}")
    edges = payload.get("edges")
    if not isinstance(edges, dict) or edges.keys() != _EDGE_KEYS:
        problems.append(f"edges keys must be {sorted(_EDGE_KEYS)}")
    else:
        for key in sorted(_EDGE_KEYS):
            if not isinstance(edges[key], int) or edges[key] < 0:
                problems.append(
                    f"edges[{key!r}] must be a non-negative int")
    if require_exact_keys(problems, payload.get("latency"), _LATENCY_KEYS,
                          "latency"):
        require_nonneg_ints(problems, payload["latency"],
                            sorted(_LATENCY_KEYS), "latency.")
    if not isinstance(payload.get("scrub"), dict):
        problems.append("scrub must be an object")
    if not isinstance(payload.get("counters"), dict):
        problems.append("counters must be an object")
    if require_exact_keys(problems, payload.get("totals"), _TOTAL_KEYS,
                          "totals"):
        require_nonneg_ints(problems, payload["totals"],
                            sorted(_TOTAL_KEYS), "totals.")
    require_bool(problems, payload, "ok")


def validate_report(payload: Any) -> list[str]:
    """Problems with a parsed report; an empty list means valid."""
    return validate_schema_report("soak", 1, payload, _REPORT_KEYS,
                                  detail=_detail)
