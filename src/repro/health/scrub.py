"""Patrol scrub: background media maintenance in idle refresh windows.

The extended-tRFC design hands the device a guaranteed bus window behind
every REF (§IV-B) — but most windows go idle: the CP page has no pending
command, the NVMC firmware just waits.  Hassan et al.'s *Self-Managing
DRAM* shows exactly this slack being used for autonomous maintenance;
the :class:`PatrolScrubber` does the same for NVDIMM-C, walking the
DRAM cache and the Z-NAND logical space in the background so decaying
media is found *before* a host read trips over it.

Scheduling rules (asserted by the ``ScrubSanitizer`` in
:mod:`repro.check`):

* scrub runs only in windows the NVMC is **idle** for — if
  ``nvmc.ready_ps`` reaches past a window's start, a host command owns
  (or overlaps) it and the scrubber skips the whole window;
* scrub work never **escapes its window**: the shared-bus portion
  (DRAM-cache refresh reads) is budgeted against the window duration
  and the traced span stays inside ``[start_ps, end_ps)``;
* the host always wins ties: scrub occupancy is published through
  ``nvmc.ready_ps`` exactly like command work, so a later host command
  simply queues behind it — it can be delayed, never corrupted.

Per idle window the scrubber refreshes a few DRAM-cache slots (a bus
read each — the only part that needs the window) and verifies a few
Z-NAND pages: the stored payload is re-read die-side and pushed through
the full ECC encode / inject / decode pass of :mod:`repro.nand.ecc` at
the block's wear-derived RBER.  Pages that decode uncorrectable — or
that sit on blocks past the configured wear fraction — are proactively
relocated through the FTL, retiring the decaying block the way a host
write would, but off the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DegradedModeError, UncorrectableError
from repro.sim.trace import Tracer
from repro.units import PAGE_4K


@dataclass(frozen=True)
class ScrubConfig:
    """Per-window patrol effort knobs."""

    #: DRAM-cache slots refreshed per idle window (bus reads; each is
    #: also bounded by the remaining window budget).
    dram_slots_per_window: int = 1
    #: Z-NAND pages ECC-verified per idle window (die-side work).
    nand_pages_per_window: int = 1
    #: L2P probes per window while hunting for the next mapped page
    #: (bounds the Python walk on sparse mappings).
    probe_limit: int = 256
    #: Proactively relocate pages whose block has consumed this fraction
    #: of its rated P/E endurance.
    wear_relocate_fraction: float = 0.5


@dataclass
class ScrubStats:
    """Patrol progress counters."""

    windows_scanned: int = 0
    windows_busy: int = 0
    windows_used: int = 0
    dram_slots_refreshed: int = 0
    nand_pages_verified: int = 0
    uncorrectable_found: int = 0
    relocations: int = 0
    relocation_failures: int = 0


class PatrolScrubber:
    """Background patrol over one NVDIMM-C module's media.

    Driven explicitly by the harness (``patrol(from_ps, until_ps)``)
    whenever the host is known idle — the model is synchronous, so
    "background" means "between host operations", which is also when
    the real firmware's idle loop would run.
    """

    def __init__(self, nvmc, driver=None, monitor=None,
                 config: ScrubConfig | None = None,
                 tracer: Tracer | None = None) -> None:
        self.nvmc = nvmc
        self.driver = driver
        self.monitor = monitor
        self.config = config if config is not None else ScrubConfig()
        self.tracer = tracer if tracer is not None else nvmc.tracer
        self.timeline = nvmc.timeline
        self.nand = nvmc.nand
        self.stats = ScrubStats()
        self._nand_cursor = 0
        self._slot_cursor = 0
        # One DRAM-cache refresh read: activate + CAS latency + the
        # page's burst train (same arithmetic as the iMC's host path).
        spec = self.timeline.spec
        bursts = -(-PAGE_4K // spec.burst_bytes)
        self._dram_refresh_ps = (spec.trcd_ps + spec.tcl_ps
                                 + bursts * spec.tccd_ps)

    # -- the patrol loop -------------------------------------------------------

    def patrol(self, from_ps: int, until_ps: int) -> int:
        """Scrub every idle window fully inside ``[from_ps, until_ps)``.

        Returns the number of windows in which work was done.  Windows
        the NVMC is busy for are skipped whole — the host owns them.
        """
        used = 0
        t = max(0, from_ps)
        while True:
            window = self.timeline.next_window(t)
            if window.end_ps > until_ps:
                break
            self.stats.windows_scanned += 1
            if self.nvmc.ready_ps > window.start_ps:
                self.stats.windows_busy += 1
            elif self._scrub_window(window):
                used += 1
            t = window.end_ps
        if self.monitor is not None:
            self.monitor.note_time(min(until_ps, t))
        return used

    # -- one window ------------------------------------------------------------

    def _scrub_window(self, window) -> bool:
        budget_ps = window.duration_ps
        bus_ps = 0

        # DRAM-cache leg: refresh-read occupied slots (bus time).
        slots = 0
        while (slots < self.config.dram_slots_per_window
               and bus_ps + self._dram_refresh_ps <= budget_ps):
            slot = self._next_cache_slot()
            if slot is None:
                break
            self.nvmc.dram.peek(slot * PAGE_4K, PAGE_4K)
            bus_ps += self._dram_refresh_ps
            slots += 1
        self.stats.dram_slots_refreshed += slots

        # Z-NAND leg: die-side ECC verification (no shared-bus time;
        # the array read + channel transfer occupy the NVMC instead).
        verified = relocated = 0
        device_end_ps = window.start_ps + bus_ps
        for _ in range(self.config.nand_pages_per_window):
            lpn = self._next_mapped_lpn()
            if lpn is None:
                break
            outcome = self._verify_page(lpn)
            if outcome is None:
                break
            spec = self.nand.spec
            device_end_ps += spec.tr_ps + spec.transfer_ps_per_page
            verified += 1
            relocated += outcome
        self.stats.nand_pages_verified += verified
        self.stats.relocations += relocated

        if not slots and not verified:
            return False
        self.stats.windows_used += 1
        # Publish occupancy the same way command work does, so host
        # commands queue behind in-flight scrub instead of colliding.
        busy_end_ps = max(window.start_ps + bus_ps, device_end_ps)
        if busy_end_ps > self.nvmc.ready_ps:
            self.nvmc.ready_ps = busy_end_ps
        if self.tracer.enabled:
            self.tracer.emit(
                window.start_ps, "health.scrub", "patrol window",
                owner=self.nvmc.trace_owner, window=window.index,
                win_start=window.start_ps, win_end=window.end_ps,
                start_ps=window.start_ps,
                end_ps=window.start_ps + bus_ps,
                slots=slots, pages=verified, relocated=relocated)
        if self.monitor is not None:
            self.monitor.note_time(window.end_ps)
        return True

    # -- cursors ---------------------------------------------------------------

    def _next_cache_slot(self) -> int | None:
        """Next occupied DRAM-cache slot at or after the cursor."""
        driver = self.driver
        if driver is None or not driver.slot_to_page:
            return None
        occupied = sorted(driver.slot_to_page)
        for slot in occupied:
            if slot >= self._slot_cursor:
                break
        else:
            slot = occupied[0]   # wrap
        self._slot_cursor = slot + 1
        return slot

    def _next_mapped_lpn(self) -> int | None:
        """Next mapped logical page at or after the cursor (bounded
        probe so sparse mappings don't cost a full L2P walk)."""
        ftl = self.nand.ftl
        total = ftl.logical_pages
        if total == 0 or ftl.mapped_pages == 0:
            return None
        cursor = self._nand_cursor
        for _ in range(min(self.config.probe_limit, total)):
            lpn = cursor % total
            cursor += 1
            if ftl.mapping(lpn) is not None:
                self._nand_cursor = cursor % total
                return lpn
        self._nand_cursor = cursor % total
        return None

    # -- verification ----------------------------------------------------------

    def _verify_page(self, lpn: int) -> int | None:
        """ECC-verify one mapped page; relocate it if it is decaying.

        Returns the number of relocations performed (0 or 1), or
        ``None`` if the device refused further scrub writes (read-only
        or fail-stop) — the patrol then stops relocating but keeps
        verifying on later calls.
        """
        ftl = self.nand.ftl
        ppa = ftl.mapping(lpn)
        if ppa is None:
            return 0
        die = ftl.dies[ppa.die]
        data = die.read_page(ppa.plane, ppa.block, ppa.page)
        info = die.block_info(ppa.plane, ppa.block)
        wear = info.erase_count
        spec = self.nand.spec
        # Price the block through the controller's one RBER helper so
        # patrol and the host read path always agree on media decay
        # (wear-only by default; +retention +read-disturb when an
        # AgingParams model is installed).
        rber = self.nand.rber_for_block(info)
        codec = self.nand.codec
        codeword = codec.encode(data)
        codec.inject_errors(codeword, rber)
        decayed = False
        try:
            codec.decode(codeword)
        except UncorrectableError:
            # The stored charge is drifting; the payload itself is still
            # recoverable die-side, so rewrite it somewhere healthy.
            self.stats.uncorrectable_found += 1
            decayed = True
        if not decayed and wear >= (self.config.wear_relocate_fraction
                                    * spec.endurance_pe_cycles):
            decayed = True
        if not decayed:
            return 0
        try:
            ftl.relocate(lpn)
        except DegradedModeError:
            self.stats.relocation_failures += 1
            return None
        if self.monitor is not None:
            self.monitor.record("scrub", "scrub-relocate")
        return 1
