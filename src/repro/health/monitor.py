"""The health monitor: rolling error budgets driving a recovery ladder.

PR 3 left the stack reacting to each fault in isolation: the driver
retried, the FTL remapped, the NAND controller flipped a private
``read_only`` bool.  The :class:`HealthMonitor` replaces that implicit
state with one explicit, traced state machine shared by every layer —
the in-system reliability state Patel et al. argue DRAM systems should
expose, scheduled maintenance-style the way Hassan et al.'s
self-managing DRAM does.

The ladder::

    ok -> retry -> remap -> read_only -> fail_stop

* **ok** — no resilience mechanism active beyond background scrub.
* **retry** — transient-fault recovery (CP re-issues, ack timeouts,
  DMA shortfall continuations, ECC read retries) crossed its rolling
  budget: the device is coping, but something is wrong.  Decays back
  to ``ok`` after a quiet interval.
* **remap** — media faults consumed remap capacity (FTL program
  retries, retired blocks).  Also decays when the media goes quiet.
* **read_only** — writes are refused (:class:`~repro.errors.
  DegradedModeError` with a machine-readable ``reason``): the grown
  bad-block budget is exhausted, or the FTL ran out of remap
  candidates.  Sticky — only module replacement clears it.
* **fail_stop** — data can no longer be trusted (an unrecoverable read
  while already degraded): every host operation is refused with
  :class:`~repro.errors.FailStopError`.  Sticky.

Transitions are traced (``health.state`` records) and appended to
:attr:`HealthMonitor.timeline`, which the soak report serialises; the
``repro soak`` acceptance gate requires every ladder edge to appear
there at least once.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.sim.snapshot import SnapshotMixin
from repro.sim.trace import Tracer, default_tracer, next_owner
from repro.units import ms


class HealthState(enum.IntEnum):
    """Rungs of the recovery ladder, in escalation order."""

    OK = 0
    RETRY = 1
    REMAP = 2
    READ_ONLY = 3
    FAIL_STOP = 4

    @property
    def label(self) -> str:
        """Lowercase report-facing name (``read_only`` etc.)."""
        return self.name.lower()


#: The ladder's edges, in order, as ``(from, to)`` label pairs.  The
#: soak acceptance gate requires one exercised transition per edge.
LADDER_EDGES: tuple[tuple[str, str], ...] = tuple(
    (a.label, b.label)
    for a, b in zip(tuple(HealthState), tuple(HealthState)[1:]))


#: Event kinds that count against the *transient* (retry) budget.
TRANSIENT_KINDS = frozenset(
    {"cp-retry", "cp-timeout", "dma-partial", "read-retry"})
#: Event kinds that count against the *media* (remap) budget.
MEDIA_KINDS = frozenset({"remap", "bad-block"})


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds of the ladder's escalation rules."""

    #: Rolling-budget horizon: events older than this no longer count.
    window_ps: int = round(ms(50))
    #: Transient-recovery events within the window that enter ``retry``.
    retry_threshold: int = 3
    #: Media remap events within the window that enter ``remap``.
    remap_threshold: int = 2
    #: Grown bad blocks (lifetime) that enter ``read_only``.
    read_only_bad_blocks: int = 16
    #: Unrecovered reads while degraded that enter ``fail_stop``.
    fail_stop_unrecovered: int = 1
    #: Quiet time after which ``retry``/``remap`` decay back to ``ok``.
    decay_ps: int = round(ms(100))


@dataclass(frozen=True)
class HealthTransition:
    """One traced ladder transition."""

    time_ps: int
    from_state: str
    to_state: str
    reason: str
    component: str

    def to_dict(self) -> dict:
        return {"time_ps": self.time_ps, "from": self.from_state,
                "to": self.to_state, "reason": self.reason,
                "component": self.component}


@dataclass
class HealthCounters:
    """Lifetime event totals, by kind."""

    counts: dict[str, int] = field(default_factory=dict)

    def bump(self, kind: str) -> int:
        total = self.counts.get(kind, 0) + 1
        self.counts[kind] = total
        return total

    def get(self, kind: str) -> int:
        return self.counts.get(kind, 0)


class HealthMonitor(SnapshotMixin):
    """Shared, traced health state for one NVDIMM-C module.

    One instance spans the whole stack: the nvdc driver, the NVMC, the
    NAND controller and the FTL all feed :meth:`record`; the ladder
    state they read back (:attr:`state`, :attr:`read_only`,
    :attr:`failed`) is the single source of truth for degraded-mode
    decisions.  The monitor survives remount — health is a property of
    the module, not of one driver instance.
    """

    def __init__(self, policy: HealthPolicy | None = None,
                 tracer: Tracer | None = None,
                 name: str = "health") -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        self.tracer = tracer if tracer is not None else default_tracer()
        self.trace_owner = next_owner(name)
        self.state = HealthState.OK
        #: Machine-readable reason for the current (non-ok) state.
        self.reason = ""
        self.timeline: list[HealthTransition] = []
        self.counters = HealthCounters()
        #: Most recent simulated time any layer reported; timeless
        #: layers (the FTL) inherit it for their events.
        self.clock_ps = 0
        self._transient: deque[int] = deque()
        self._media: deque[int] = deque()
        self._last_event_ps = -1

    # -- feeding --------------------------------------------------------------

    def note_time(self, time_ps: int) -> None:
        """Advance the monitor's clock (monotonic max)."""
        if time_ps > self.clock_ps:
            self.clock_ps = time_ps

    def record(self, component: str, kind: str,
               time_ps: int | None = None, detail: str = "") -> None:
        """One health-relevant event from a stack layer.

        ``time_ps=None`` (timeless layers) stamps the event with the
        monitor's clock.  Escalation rules run immediately, so the
        ladder transition lands at the event that caused it.
        """
        t = self.clock_ps if time_ps is None else time_ps
        self.note_time(t)
        self._last_event_ps = max(self._last_event_ps, t)
        self.counters.bump(kind)
        horizon = t - self.policy.window_ps
        if kind in TRANSIENT_KINDS:
            rolling = self._roll(self._transient, t, horizon)
            if (rolling >= self.policy.retry_threshold
                    and self.state < HealthState.RETRY):
                self._transition(HealthState.RETRY, t,
                                 f"{kind}-budget:{rolling}", component)
        elif kind in MEDIA_KINDS:
            rolling = self._roll(self._media, t, horizon)
            if (rolling >= self.policy.remap_threshold
                    and self.state < HealthState.REMAP):
                self._transition(HealthState.REMAP, t,
                                 f"{kind}-budget:{rolling}", component)
            if (kind == "bad-block"
                    and self.counters.get("bad-block")
                    >= self.policy.read_only_bad_blocks
                    and self.state < HealthState.READ_ONLY):
                self._transition(HealthState.READ_ONLY, t,
                                 "bad-block-budget", component)
        elif kind in ("remap-exhausted", "space-exhausted",
                      "bad-block-budget"):
            if self.state < HealthState.READ_ONLY:
                self._transition(HealthState.READ_ONLY, t, kind, component)
        elif kind == "unrecovered-read":
            if (self.state >= HealthState.READ_ONLY
                    and self.counters.get("unrecovered-read")
                    >= self.policy.fail_stop_unrecovered
                    and self.state < HealthState.FAIL_STOP):
                self._transition(HealthState.FAIL_STOP, t,
                                 "unrecoverable-read-degraded", component)

    def reseed(self, counts: dict[str, int], time_ps: int = 0,
               component: str = "recovery") -> None:
        """Re-seed the ladder from media evidence after a cold mount.

        A power cut wipes the live monitor with the rest of the
        module's volatile state; what survives is what the media can
        testify to — bad blocks visible on the dies, torn pages the
        mount quarantined.  The lifetime counters are rebuilt from
        those totals and the *sticky* rungs re-derived: crossing the
        bad-block budget re-enters ``read_only``.  Rolling (windowed)
        rungs are not re-entered — their transient evidence died with
        the power.
        """
        self.note_time(time_ps)
        for kind in sorted(counts):
            total = counts[kind]
            if total > 0:
                self.counters.counts[kind] = self.counters.get(kind) + total
        if (self.counters.get("bad-block")
                >= self.policy.read_only_bad_blocks
                and self.state < HealthState.READ_ONLY):
            self._transition(HealthState.READ_ONLY, time_ps,
                             "bad-block-budget", component)

    def maybe_relax(self, now_ps: int) -> None:
        """Decay ``retry``/``remap`` back to ``ok`` after quiet time.

        Called opportunistically from success paths; sticky states
        (``read_only``, ``fail_stop``) never decay — the media damage
        they reflect does not heal.
        """
        if self.state not in (HealthState.RETRY, HealthState.REMAP):
            return
        if now_ps - self._last_event_ps >= self.policy.decay_ps:
            self._transition(HealthState.OK, now_ps, "quiet-decay",
                             "monitor")

    # -- reading --------------------------------------------------------------

    @property
    def read_only(self) -> bool:
        """Writes must be refused (``read_only`` or worse)."""
        return self.state >= HealthState.READ_ONLY

    @property
    def failed(self) -> bool:
        """All host I/O must be refused."""
        return self.state is HealthState.FAIL_STOP

    def edges_exercised(self) -> dict[str, int]:
        """Ladder-edge coverage counts (``"ok->retry"`` style keys)."""
        coverage = {f"{a}->{b}": 0 for a, b in LADDER_EDGES}
        for transition in self.timeline:
            key = f"{transition.from_state}->{transition.to_state}"
            if key in coverage:
                coverage[key] += 1
        return coverage

    # -- internals ------------------------------------------------------------

    def _roll(self, window: deque, t: int, horizon: int) -> int:
        window.append(t)
        while window and window[0] < horizon:
            window.popleft()
        return len(window)

    def _transition(self, to: HealthState, time_ps: int, reason: str,
                    component: str) -> None:
        t = max(0, time_ps)
        transition = HealthTransition(
            time_ps=t, from_state=self.state.label, to_state=to.label,
            reason=reason, component=component)
        self.timeline.append(transition)
        if self.tracer.enabled:
            self.tracer.emit(t, "health.state",
                             f"{transition.from_state} -> "
                             f"{transition.to_state} ({reason})",
                             owner=self.trace_owner,
                             from_state=transition.from_state,
                             to_state=transition.to_state,
                             reason=reason, component=component)
        self.state = to
        self.reason = "" if to is HealthState.OK else reason
