"""Runtime health: retry policies, the recovery ladder, patrol scrub.

PR 3 (``repro.faults``) proved each fault is survivable *in isolation*;
this package makes the stack degrade gracefully under *sustained*
faults.  Four pieces:

* :mod:`repro.health.retry` — a reusable, deterministic
  :class:`~repro.health.retry.RetryPolicy` (capped exponential backoff,
  seed-derived jitter, budgets keyed to the :mod:`repro.errors`
  taxonomy) that replaces every ad-hoc retry loop in the stack;
* :mod:`repro.health.monitor` — the
  :class:`~repro.health.monitor.HealthMonitor`, a traced state machine
  over rolling error budgets that drives the explicit recovery ladder
  ``ok -> retry -> remap -> read_only -> fail_stop``;
* :mod:`repro.health.scrub` — the
  :class:`~repro.health.scrub.PatrolScrubber`, a background agent that
  spends idle refresh-window bandwidth verifying media ECC and
  proactively relocating decaying pages;
* :mod:`repro.health.soak` — the ``repro soak`` harness: composed
  fault campaigns over a long-lived system, verified against a
  fault-free twin and reported in a schema-pinned ``SOAK_*.json``.
"""

from repro.health.monitor import (HealthMonitor, HealthPolicy, HealthState,
                                  HealthTransition, LADDER_EDGES)
from repro.health.retry import RetryBudget, RetryPolicy, budget_for, \
    policy_for
from repro.health.scrub import PatrolScrubber, ScrubConfig, ScrubStats

__all__ = [
    "HealthMonitor", "HealthPolicy", "HealthState", "HealthTransition",
    "LADDER_EDGES", "RetryBudget", "RetryPolicy", "budget_for",
    "policy_for", "PatrolScrubber", "ScrubConfig", "ScrubStats",
]
