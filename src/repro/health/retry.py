"""Deterministic retry/timeout/backoff policies.

Every resilience loop in the stack — the driver's CP re-issue (§IV-C),
the NAND read-retry ladder (shifted read-reference voltages), the FTL's
program-remap budget — used to carry its own ad-hoc attempt counter and
delay arithmetic.  :class:`RetryPolicy` centralises the shape all of
them share:

* a bounded **attempt budget** (``max_attempts`` including the first
  try);
* **capped exponential backoff** between attempts, naturally measured
  in refresh windows — the tREFI beat is the device's only clock, so a
  backoff of "wait two more windows" is the physically meaningful unit
  (:meth:`RetryPolicy.from_windows`);
* **deterministic, seed-derived jitter**: the jitter of attempt *k* at
  site *s* is a pure function of ``(seed, s, k)`` (CRC32, no ambient
  RNG), so identical seeds replay identical schedules — the property
  the fault campaigns' byte-identical reports rest on.

Monotonicity is guaranteed by construction: the jitter fraction is
capped at ``multiplier - 1``, so the jittered value of attempt *k*
never exceeds the un-jittered value of attempt *k + 1*, and the cap is
applied with ``min`` — a non-decreasing map.  Hypothesis tests pin all
three properties (determinism, monotonicity, cap) in
``tests/test_health_retry.py``.

Per-site budgets are drawn from the :mod:`repro.errors` taxonomy:
:func:`budget_for` resolves an error class (or instance) to the
:class:`RetryBudget` of its most specific registered ancestor, so a
caller retrying ``CPTimeoutError`` and one retrying a bare
``MediaError`` get the budgets their failure domains deserve without
hard-coding attempt counts at every site.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

from repro.errors import (ConfigError, CPProtocolError, CPTimeoutError,
                          MediaError, ReproError, UncorrectableError)

#: Scale of the CRC-derived jitter fraction (maps to [0, 1)).
_JITTER_SCALE = float(1 << 32)


def jitter_fraction(seed: int, site: str, attempt: int) -> float:
    """The deterministic jitter draw for ``(seed, site, attempt)``.

    A pure function in [0, 1): CRC32 over the identifying triple.  No
    process state, no ambient RNG — replaying a seed replays the draw.
    """
    word = zlib.crc32(f"{seed}:{site}:{attempt}".encode("utf-8"))
    return word / _JITTER_SCALE


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded, deterministic retry schedule.

    ``max_attempts`` counts the first try: a policy with
    ``max_attempts=4`` performs at most three re-issues.  The backoff
    before re-issue *k* (1-based) is::

        min(cap_ps, base_ps * multiplier**(k-1) * (1 + jitter * j_k))

    with ``j_k = jitter_fraction(seed, site, k)``.
    """

    max_attempts: int
    base_ps: int
    cap_ps: int
    multiplier: float = 2.0
    #: Jitter amplitude as a fraction of the deterministic backoff;
    #: must not exceed ``multiplier - 1`` or the schedule could dip.
    jitter: float = 0.0
    seed: int = 0
    site: str = ""

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_ps < 0:
            raise ConfigError(f"base_ps must be >= 0: {self.base_ps}")
        if self.cap_ps < self.base_ps:
            raise ConfigError(
                f"cap_ps {self.cap_ps} below base_ps {self.base_ps}")
        if self.multiplier < 1.0:
            raise ConfigError(
                f"multiplier must be >= 1: {self.multiplier}")
        if not 0.0 <= self.jitter <= self.multiplier - 1.0:
            raise ConfigError(
                f"jitter {self.jitter} outside [0, multiplier-1]; a "
                "larger amplitude would break schedule monotonicity")

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_windows(cls, trefi_ps: int, max_attempts: int,
                     base_windows: float, cap_windows: float,
                     **kwargs) -> "RetryPolicy":
        """A policy whose backoff is measured in refresh windows.

        The tREFI beat is the device's native clock: the CP area is
        polled once per window, so "back off two windows" is the unit a
        device-side retry actually experiences.
        """
        return cls(max_attempts=max_attempts,
                   base_ps=round(base_windows * trefi_ps),
                   cap_ps=round(cap_windows * trefi_ps), **kwargs)

    def derive(self, **overrides) -> "RetryPolicy":
        """Copy with some fields replaced (site/seed specialisation)."""
        return replace(self, **overrides)

    # -- the schedule ---------------------------------------------------------

    def allows(self, attempts_made: int) -> bool:
        """May another attempt be made after ``attempts_made`` tries?"""
        return attempts_made < self.max_attempts

    def backoff_ps(self, attempt: int, site: str | None = None) -> int:
        """Backoff before re-issue ``attempt`` (1-based), in ps."""
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1: {attempt}")
        raw = self.base_ps * self.multiplier ** (attempt - 1)
        j = jitter_fraction(self.seed, self.site if site is None else site,
                            attempt)
        return min(self.cap_ps, round(raw * (1.0 + self.jitter * j)))

    def schedule(self, site: str | None = None) -> tuple[int, ...]:
        """Every backoff of the policy, in order (len max_attempts-1)."""
        return tuple(self.backoff_ps(k, site=site)
                     for k in range(1, self.max_attempts))

    def total_budget_ps(self, site: str | None = None) -> int:
        """Worst-case time spent backing off before giving up."""
        return sum(self.schedule(site=site))


@dataclass(frozen=True)
class RetryBudget:
    """Default retry shape for one failure domain of the error taxonomy.

    Backoffs are in refresh windows (the device's native unit); sites
    whose retries are back-to-back by nature (shifted-voltage read
    retries, FTL remaps to a fresh block) carry a zero backoff and use
    the budget purely as an attempt bound.
    """

    attempts: int
    base_windows: float = 0.0
    cap_windows: float = 0.0
    multiplier: float = 2.0
    jitter: float = 0.0


#: Budgets keyed by stable error code (:mod:`repro.errors` decades).
#: Resolution walks the MRO, so the most specific registered ancestor
#: of an error class wins.
BUDGETS: dict[str, RetryBudget] = {
    # CP exchange timeouts: the §VII-B2 worst-case writeback+cachefill
    # pair is ~9 windows; the first timeout waits well past it and the
    # exponential ladder caps at ~8x that (jittered to decorrelate
    # repeated storms).
    CPTimeoutError.code: RetryBudget(attempts=4, base_windows=13.0,
                                     cap_windows=104.0, jitter=0.25),
    # Other CP protocol failures (DECODE_ERROR acks): re-issue promptly;
    # the device already told us it is alive.
    CPProtocolError.code: RetryBudget(attempts=4, base_windows=0.0,
                                      cap_windows=0.0),
    # Uncorrectable ECC: shifted read-reference retries are issued
    # back-to-back (the re-sense time is modelled by the caller).
    UncorrectableError.code: RetryBudget(attempts=4),
    # Generic media failures (grown bad blocks): the FTL's remap budget.
    MediaError.code: RetryBudget(attempts=8),
}


def budget_for(error: ReproError | type[ReproError]) -> RetryBudget:
    """The budget of an error's most specific registered ancestor."""
    cls = error if isinstance(error, type) else type(error)
    for ancestor in cls.__mro__:
        code = getattr(ancestor, "code", None)
        if code is not None and code in BUDGETS:
            return BUDGETS[code]
    raise ConfigError(
        f"no retry budget registered for {cls.__name__} "
        f"(code {getattr(cls, 'code', '?')})")


def policy_for(error: ReproError | type[ReproError], *,
               trefi_ps: int = 0, seed: int = 0, site: str = "",
               max_attempts: int | None = None,
               base_ps: int | None = None,
               cap_ps: int | None = None) -> RetryPolicy:
    """Build the :class:`RetryPolicy` an error class deserves.

    The taxonomy budget supplies defaults; callers override what their
    calibration pins (e.g. the driver's ``cp_max_retries`` and
    ``cp_timeout_ps``).  ``trefi_ps`` converts window-denominated
    budgets to picoseconds; it may be 0 only for zero-backoff budgets.
    """
    budget = budget_for(error)
    if base_ps is None:
        base_ps = round(budget.base_windows * trefi_ps)
    if cap_ps is None:
        cap_ps = max(base_ps, round(budget.cap_windows * trefi_ps))
    return RetryPolicy(
        max_attempts=budget.attempts if max_attempts is None
        else max_attempts,
        base_ps=base_ps, cap_ps=cap_ps,
        multiplier=budget.multiplier, jitter=budget.jitter,
        seed=seed, site=site)
