"""Extension — the operating costs of the window mechanism.

Two costs the paper leaves implicit, quantified:

* **Refresh power** — device windows are bought with REF commands;
  watts scale linearly with the rate, so the watt-per-MiB/s of window
  bandwidth is a constant of the design.
* **Endurance** — the same windows throttle NAND programs: at the
  PoC's 58.3 MB/s uncached-write ceiling the 128 GB SLC Z-NAND wears
  out only after ~3.4 years of *continuous* writes (decades at real
  duty cycles).  The mechanism bounds its own wear.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.ddr.power import power_sweep
from repro.ddr.spec import NVDIMMC_1600
from repro.nand.endurance import paper_device_lifetime, \
    project_lifetime_years
from repro.nand.spec import ZNAND_64GB
from repro.units import gb


def run() -> ExperimentRecord:
    record = ExperimentRecord(
        "power_endurance", "Watts and wear of the tREFI knob")

    rows = power_sweep(NVDIMMC_1600)
    base = rows[0]
    quad = rows[2]
    record.add("refresh power @ tREFI", "W", None, base.power_w)
    record.add("refresh power @ tREFI4", "W", None, quad.power_w)
    record.add("power ratio tREFI4/tREFI", "x", 4.0,
               quad.power_w / base.power_w)
    record.add("watts per MiB/s of window bandwidth", "W", None,
               base.power_w / base.device_window_mib_s)

    life = paper_device_lifetime()
    record.add("continuous-write lifetime @ 58.3 MB/s", "years", None,
               life)
    duty10 = project_lifetime_years(ZNAND_64GB, 2 * gb(64),
                                    58.3 * 0.10, waf=1.1)
    record.add("lifetime at 10% write duty", "years", None, duty10)
    # Faster refresh doubles the write ceiling and halves the lifetime:
    ceiling2 = project_lifetime_years(ZNAND_64GB, 2 * gb(64),
                                      2 * 58.3, waf=1.1)
    record.add("lifetime at the tREFI2 write ceiling", "years", None,
               ceiling2)
    record.note("the window mechanism throttles its own wear: the NAND "
                "cannot be written faster than refreshes allow")
    return record


def render() -> str:
    rows = []
    for point in power_sweep(NVDIMMC_1600):
        # The sustained uncached *write* ceiling scales with the
        # refresh rate from the PoC's measured 58.3 MB/s (8-window
        # writeback+cachefill pairs, §VII-B2).
        write_ceiling = 58.3 * (7.8 / point.trefi_us)
        life = project_lifetime_years(ZNAND_64GB, 2 * gb(64),
                                      write_ceiling, waf=1.1)
        rows.append([f"{point.trefi_us}", f"{point.power_w:.2f}",
                     f"{point.device_window_mib_s:.0f}",
                     f"{write_ceiling:.0f}", f"{life:.1f}"])
    return render_table(
        ["tREFI (us)", "refresh W", "window MiB/s",
         "write ceiling MB/s", "years @ ceiling"], rows)
