"""Fig. 7 — sequential write bandwidth of a large file copy.

Paper series: ~518 MB/s (SSD-limited) while free slots last, then a
sustained ~68 MB/s once every 4 KB write needs a writeback+cachefill
pair.  The experiment reports the peak, the floor, and where the cliff
falls relative to the cache size.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_series
from repro.experiments.common import build_cached_nvdc
from repro.units import mb
from repro.workloads.filecopy import FileCopyResult, run_file_copy

#: Scaled geometry: cache ~7.3 MB of slots, file 1.33x the slot area —
#: the paper's 20 GB file vs 15 GB of slots.
CACHE_MB = 8
FILE_MB = 20


def run() -> tuple[ExperimentRecord, FileCopyResult]:
    system = build_cached_nvdc(cache_mb=CACHE_MB, device_mb=64)
    series = run_file_copy(system, file_bytes=mb(FILE_MB), buckets=40)
    record = ExperimentRecord("fig7", "File copy throughput over progress")
    record.add("peak (Cached) bandwidth", "MB/s", 518, series.peak_mb_s)
    record.add("sustained (Uncached) floor", "MB/s", 68,
               series.floor_mb_s)
    slots_gb = system.region.layout.slots_bytes / 2**30
    cliff_gb = _cliff_position(series)
    record.add("cliff position / slot area", "ratio", 1.0,
               cliff_gb / slots_gb if slots_gb else 0.0)
    record.note(f"scaled run: {CACHE_MB} MB cache module, "
                f"{FILE_MB} MB file (paper: 16 GB / 20 GB)")
    return record, series


def _cliff_position(series: FileCopyResult) -> float:
    """Progress point where bandwidth first drops below half the peak."""
    half = series.peak_mb_s / 2
    for gb, bw in zip(series.copied_gb, series.bandwidth_mb_s):
        if bw < half:
            return gb
    return series.copied_gb[-1] if series.copied_gb else 0.0


def render(series: FileCopyResult) -> str:
    return render_series("Fig. 7: file copy",
                         [f"{gb*1024:.1f}" for gb in series.copied_gb],
                         series.bandwidth_mb_s,
                         x_label="copied_MiB", y_label="MB/s")
