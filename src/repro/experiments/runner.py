"""Run every experiment and regenerate the EXPERIMENTS.md report.

Experiments are independent and deterministic, so ``run_all`` can fan
them out over worker processes (``jobs > 1``); records are merged back
in declaration order, which makes the exported ``results.json`` /
``results.csv`` byte-identical between serial and parallel executions.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.analysis.results import ExperimentRecord
from repro.util import resolve_jobs  # noqa: F401  (re-export: long-time home)
from repro.experiments import (ablations, arbitration_compare,
                               channel_isolation, dax_motivation,
                               design_space, fig7_filecopy, fig8_randrw,
                               fig9_threads, fig10_granularity, fig11_tpch,
                               fig12_td, fig13_trefi, mixed_integrity,
                               power_endurance, protocol_crosscheck,
                               table1_config, table2_benchmarks,
                               thermal_study, validation_refresh,
                               variants_compare)


def _first(value):
    """Unwrap (record, extras...) returns."""
    if isinstance(value, tuple):
        return value[0]
    return value


#: experiment id -> zero-arg callable returning an ExperimentRecord
#: (possibly inside a tuple with rendering payload).
ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentRecord]] = {
    "table1": lambda: _first(table1_config.run()),
    "table2": lambda: _first(table2_benchmarks.run()),
    "validation": lambda: _first(validation_refresh.run()),
    "fig7": lambda: _first(fig7_filecopy.run()),
    "fig8": lambda: _first(fig8_randrw.run()),
    "fig9": lambda: _first(fig9_threads.run()),
    "fig10": lambda: _first(fig10_granularity.run()),
    "fig11": lambda: _first(fig11_tpch.run()),
    "fig12": lambda: _first(fig12_td.run()),
    "fig13": lambda: _first(fig13_trefi.run()),
    "mixed": lambda: _first(mixed_integrity.run()),
    "ablations": lambda: _first(ablations.run()),
    "design_space": lambda: _first(design_space.run()),
    "arbitration": lambda: _first(arbitration_compare.run()),
    "variants": lambda: _first(variants_compare.run()),
    "thermal": lambda: _first(thermal_study.run()),
    "crosscheck": lambda: _first(protocol_crosscheck.run()),
    "isolation": lambda: _first(channel_isolation.run()),
    "power_endurance": lambda: _first(power_endurance.run()),
    "dax": lambda: _first(dax_motivation.run()),
}


def _run_one(exp_id: str) -> ExperimentRecord:
    """Worker entry point: run one experiment by id (picklable)."""
    return ALL_EXPERIMENTS[exp_id]()


def run_all(only: list[str] | None = None,
            verbose: bool = True,
            jobs: int | str | None = 1) -> list[ExperimentRecord]:
    """Execute experiments (all, or the ids in ``only``).

    ``jobs`` > 1 fans experiments out over a process pool (they are
    independent and deterministic); records come back in declaration
    order regardless of completion order, so serial and parallel runs
    produce identical output.  Unknown ids in ``only`` raise
    :class:`ValueError` naming the valid ids.
    """
    if only is not None:
        unknown = sorted(set(only) - set(ALL_EXPERIMENTS))
        if unknown:
            raise ValueError(
                f"unknown experiment ids: {unknown}; "
                f"valid ids: {sorted(ALL_EXPERIMENTS)}")
    ids = [exp_id for exp_id in ALL_EXPERIMENTS
           if only is None or exp_id in only]
    jobs = min(resolve_jobs(jobs), max(1, len(ids)))

    records = []
    if jobs == 1:
        for exp_id in ids:
            started = time.time()
            record = ALL_EXPERIMENTS[exp_id]()
            if verbose:
                print(record)
                print(f"  [{time.time() - started:.1f}s]\n")
            records.append(record)
        return records

    from concurrent.futures import ProcessPoolExecutor
    started = time.time()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {exp_id: pool.submit(_run_one, exp_id) for exp_id in ids}
        # Collect in declaration order, not completion order.
        for exp_id in ids:
            record = futures[exp_id].result()
            if verbose:
                print(record)
                print()
            records.append(record)
    if verbose:
        print(f"  [{len(ids)} experiments on {jobs} workers in "
              f"{time.time() - started:.1f}s]\n")
    return records


def to_markdown(records: list[ExperimentRecord]) -> str:
    """EXPERIMENTS.md body: paper vs measured for every artefact."""
    import math
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Regenerate with `python -m repro.experiments.runner` (or",
        "`pytest benchmarks/`).  `x` columns are measured/paper ratios;",
        "absolute numbers come from the calibrated simulator, shapes are",
        "predictions (see DESIGN.md §5 for the fidelity argument).",
        "",
        "## Summary",
        "",
        "| experiment | paper-anchored points | worst deviation |",
        "|---|---|---|",
    ]
    for record in records:
        anchored = sum(1 for c in record.comparisons
                       if c.paper not in (None, 0))
        worst = record.worst_ratio_error()
        deviation = (f"{(math.exp(worst) - 1) * 100:.0f} %"
                     if anchored else "—")
        lines.append(f"| {record.experiment_id} — {record.title} | "
                     f"{anchored} | {deviation} |")
    lines.append("")
    for record in records:
        lines.append(f"## {record.experiment_id} — {record.title}")
        lines.append("")
        lines.append("| metric | unit | paper | measured | ratio |")
        lines.append("|---|---|---|---|---|")
        for c in record.comparisons:
            paper = "—" if c.paper is None else f"{c.paper:g}"
            ratio = "—" if c.ratio is None else f"{c.ratio:.2f}"
            lines.append(f"| {c.label} | {c.unit} | {paper} | "
                         f"{c.measured:.4g} | {ratio} |")
        for note in record.notes:
            lines.append(f"\n*{note}*")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Run all experiments and regenerate the report files")
    parser.add_argument("--jobs", default="1",
                        help="worker processes: an integer or 'auto' "
                             "(one per CPU); default 1 (serial)")
    args = parser.parse_args(argv)
    records = run_all(jobs=args.jobs)
    path = "EXPERIMENTS.md"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_markdown(records))
    from repro.analysis.export import to_csv, to_json
    with open("results.csv", "w", encoding="utf-8") as handle:
        handle.write(to_csv(records))
    with open("results.json", "w", encoding="utf-8") as handle:
        handle.write(to_json(records))
    print(f"wrote {path} (+ results.csv, results.json) with "
          f"{len(records)} experiment records")


if __name__ == "__main__":
    main()
