"""Fig. 13 — host-side Cached bandwidth vs refresh rate.

The other side of the tREFI trade: a faster refresh rate gives the
device more windows (Fig. 12) but steals host channel time.  Paper
points (4 KB random reads on cached pages):

    tREFI (7.8 us)  -> 1835 MB/s
    tREFI2 (3.9 us) -> 1691 MB/s  (-8 %)
    tREFI4 (1.95 us)-> 1530 MB/s  (-17 %)
    16 threads @ tREFI4 -> 3690 MB/s (the "balanced SCM" trade-off)
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_series
from repro.experiments.common import build_cached_nvdc
from repro.units import kb, mb, us
from repro.workloads.fio import FIOJob, FIORunner

POINTS = ((7.8, 1835), (3.9, 1691), (1.95, 1530))


def run(nops: int = 1500) -> tuple[ExperimentRecord,
                                   list[tuple[float, float]]]:
    record = ExperimentRecord("fig13", "Host bandwidth vs tREFI")
    series = []
    base_bw = None
    for trefi_us, paper in POINTS:
        system = build_cached_nvdc(trefi_ps=us(trefi_us))
        result = FIORunner(system).run(
            FIOJob(rw="randread", bs=kb(4), size=mb(32), nops=nops))
        series.append((trefi_us, result.bandwidth_mb_s))
        record.add(f"tREFI = {trefi_us} us", "MB/s", paper,
                   result.bandwidth_mb_s)
        if base_bw is None:
            base_bw = result.bandwidth_mb_s
    drop4 = 1 - series[-1][1] / base_bw
    record.add("tREFI4 degradation", "%", 17, drop4 * 100)

    system = build_cached_nvdc(trefi_ps=us(1.95))
    result16 = FIORunner(system).run(
        FIOJob(rw="randread", bs=kb(4), size=mb(32), numjobs=16,
               nops=max(400, nops // 2)))
    record.add("16 threads @ tREFI4", "MB/s", 3690,
               result16.bandwidth_mb_s)
    record.note("together with Fig. 12: tREFI4 buys the device 914 MB/s "
                "while the host keeps >80 % of its cached bandwidth")
    return record, series


def render(series: list[tuple[float, float]]) -> str:
    return render_series("Fig. 13: cached bandwidth vs tREFI",
                         [f"{t}us" for t, _ in series],
                         [bw for _, bw in series],
                         x_label="tREFI", y_label="MB/s")
