"""§VII-B5 — mixed-load data-integrity run.

"Five hundreds of user workload can be executed concurrently on our
device without any data corruption."  The reproduction runs the
concurrent-user benchmark through the full data path (CPU cache with
explicit coherence, CP protocol, FTL, Z-NAND) and asserts zero
validation failures — and, as a negative control, shows that removing
the §V-B coherence bracket *does* corrupt.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.device.nvdimmc import NVDIMMCSystem
from repro.units import mb
from repro.workloads.mixed_load import run_mixed_load


def run(users: int = 500, transactions_per_user: int = 3
        ) -> ExperimentRecord:
    record = ExperimentRecord("mixed", "Mixed-load integrity (500 users)")
    system = NVDIMMCSystem(cache_bytes=mb(4), device_bytes=mb(64),
                           with_cpu_cache=True)
    result = run_mixed_load(system, users=users,
                            transactions_per_user=transactions_per_user,
                            pages_per_user=3)
    record.add("concurrent users", "count", 500, float(users))
    record.add("validation failures", "count", 0,
               float(result.validation_failures))
    record.add("transactions executed", "count", None,
               float(result.transactions))
    record.add("pages surviving eviction round-trips", "count", None,
               float(result.final_sweep_pages))
    record.add("cache evictions during run", "count", None,
               float(system.driver.stats.evictions))

    broken = NVDIMMCSystem(cache_bytes=mb(1), device_bytes=mb(32),
                           with_cpu_cache=True, conservative_dirty=False)
    broken.driver.skip_coherence = True
    bad = run_mixed_load(broken, users=60, transactions_per_user=6,
                         pages_per_user=10)
    record.add("failures without the §V-B bracket (want > 0)", "count",
               None, float(bad.validation_failures))
    record.note("negative control omits clflush/sfence + invalidation; "
                "corruption appears exactly as §V-B predicts")
    return record
