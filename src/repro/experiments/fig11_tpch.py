"""Fig. 11 — TPC-H query times on HANA, normalised to the baseline,
plus the §VII-B5 LRU hit-rate study.

Paper anchors: Q1 is 3.3x slower (scan, compute-bound), Q20 is 78x
slower (many small accesses thrashing the LRC cache); the in-house
simulation reports LRU hit rates of 78.7-99.3 % as the cache grows from
1 to 16 GB.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_series, render_table
from repro.workloads.tpch import (TPCHResult, run_all_queries,
                                  simulate_hit_rate)

#: 100 GB database at 1/1024 scale, in 4 KB pages.
DB_PAGES = 25_600
#: 1 GB of cache at the same scale, in 4 KB pages.
PAGES_PER_GB = 256

CACHE_SWEEP_GB = (1, 2, 4, 8, 16)


def run() -> tuple[ExperimentRecord, list[TPCHResult],
                   list[tuple[int, float]]]:
    results = run_all_queries(DB_PAGES, 16 * PAGES_PER_GB, policy="lrc")
    record = ExperimentRecord("fig11", "TPC-H on HANA (LRC device)")
    by_name = {r.name: r for r in results}
    record.add("Q1 slowdown", "x", 3.3, by_name["Q1"].slowdown)
    record.add("Q20 slowdown", "x", 78, by_name["Q20"].slowdown)
    worst = max(results, key=lambda r: r.slowdown)
    record.add("worst query is Q20", "bool", 1.0,
               1.0 if worst.name == "Q20" else 0.0)
    geo = 1.0
    for r in results:
        geo *= r.slowdown
    record.add("geomean slowdown", "x", None, geo ** (1 / len(results)))

    hit_curve = [(gb, simulate_hit_rate(gb * PAGES_PER_GB, DB_PAGES,
                                        policy="lru"))
                 for gb in CACHE_SWEEP_GB]
    record.add("LRU hit rate @ 1 GB", "%", 78.7, hit_curve[0][1] * 100)
    record.add("LRU hit rate @ 16 GB", "%", 99.3, hit_curve[-1][1] * 100)
    record.note("query traces are synthetic, anchored on the two "
                "text-documented queries (see workloads/tpch.py)")
    return record, results, hit_curve


def render(results: list[TPCHResult],
           hit_curve: list[tuple[int, float]]) -> str:
    table = render_table(
        ["query", "slowdown_x", "lrc_hit_rate"],
        [[r.name, f"{r.slowdown:.1f}", f"{r.hit_rate:.2f}"]
         for r in results])
    curve = render_series("LRU hit rate vs cache size",
                          [f"{gb}GB" for gb, _ in hit_curve],
                          [hr * 100 for _, hr in hit_curve],
                          x_label="cache", y_label="hit_%")
    return table + "\n\n" + curve
