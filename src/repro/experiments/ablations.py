"""§VII-C ablations — the paper's improvement roadmap, quantified.

The discussion section lists five fixes for the PoC's Uncached
performance; each is a switch in this codebase, so the what-ifs the
authors could only argue for can be measured:

1. eliminating the CPU-controlled data paths (ASIC FSM: zero firmware
   lag);
2. multiple CP commands in flight (approximated by the merged command —
   the PoC's mailbox depth stays 1 but two operations share its
   poll/ack round trips);
3. 8 KB per refresh window (feasibility + margin from the DMA model);
4. merging writeback+cachefill into one command;
5. faster Z-NAND PHY (500 MHz instead of the PoC's 50 MHz).

Plus the §IV-B eviction-policy study (LRC vs LRU vs CLOCK) and precise
vs conservative dirty tracking.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.ddr.imc import RefreshTimeline
from repro.ddr.spec import NVDIMMC_1600
from repro.experiments.common import asic_firmware, build_uncached_nvdc
from repro.nvmc.dma import DMAEngine
from repro.units import PAGE_4K, kb
from repro.workloads.tpch import run_all_queries


def _uncached_bandwidth(nops: int = 80, **system_kwargs) -> float:
    """Steady-state uncached 4 KB read bandwidth of a configuration."""
    system, first_page, t = build_uncached_nvdc(extra_pages=nops + 8,
                                                **system_kwargs)
    start = t
    for i in range(nops):
        t = system.op((first_page + i) * PAGE_4K, kb(4), False, t)
    return nops * kb(4) / 1e6 / ((t - start) / 1e12)


def run() -> ExperimentRecord:
    record = ExperimentRecord("ablations", "§VII-C roadmap, quantified")

    poc = _uncached_bandwidth()
    record.add("PoC uncached baseline", "MB/s", 57.3, poc)

    asic = _uncached_bandwidth(firmware=asic_firmware())
    record.add("(1) ASIC FSM (no firmware lag)", "MB/s", None, asic)

    fast_phy = _uncached_bandwidth(firmware=asic_firmware(),
                                   nand_phy_mhz=500)
    record.add("(1+5) ASIC + 500 MHz PHY", "MB/s", None, fast_phy)

    merged = _uncached_bandwidth(firmware=asic_firmware(),
                                 nand_phy_mhz=500,
                                 use_merged_commands=True)
    record.add("(1+4+5) + merged WB/fill command", "MB/s", None, merged)

    precise = _uncached_bandwidth(firmware=asic_firmware(),
                                  nand_phy_mhz=500,
                                  conservative_dirty=False)
    record.add("(1+5) + precise dirty tracking", "MB/s", None, precise)

    record.add("roadmap speedup over PoC", "x", None, merged / poc)

    # (2): CP queue depth > 1 — the pipelined-NVMC model.
    from repro.nvmc.pipeline import queue_depth_sweep
    for depth, bw in queue_depth_sweep(depths=(1, 2, 4),
                                       firmware_step_ps=0):
        record.add(f"(2) pipelined NVMC, CP depth {depth}", "MB/s",
                   None, bw)
    record.add("(2) depth-2 ceiling (2 windows/miss)", "MB/s", None,
               PAGE_4K / 1e6 / (2 * 7.8e-6))

    # (3): 8 KB per window — time feasibility from the DMA model.
    timeline = RefreshTimeline(NVDIMMC_1600)
    window = timeline.window(0)
    dma8 = DMAEngine(NVDIMMC_1600, window_bytes=kb(8))
    need = dma8.transfer_time_ps(kb(8))
    record.add("(3) 8 KB transfer time in 900 ns window", "ns", None,
               need / 1000)
    record.add("(3) 8 KB fits the window", "bool", 1.0,
               1.0 if dma8.fits_in_window(kb(8), window) else 0.0)

    # Eviction-policy study on TPC-H (geomean slowdown per policy).
    for policy in ("lrc", "lru", "clock"):
        results = run_all_queries(25_600, 4_096, policy=policy)
        geo = 1.0
        for r in results:
            geo *= r.slowdown
        record.add(f"TPC-H geomean slowdown [{policy}]", "x", None,
                   geo ** (1 / len(results)))
    record.note("LRU/CLOCK beating LRC confirms the §IV-B / §VII-B5 "
                "diagnosis that LRC thrash drives the Fig. 11 outliers")
    return record
