"""§II-B extension — what module temperature does to NVDIMM-C.

Above 85°C JEDEC halves tREFI.  For a normal DIMM that is pure
overhead; for NVDIMM-C it *doubles the device windows* — the same knob
Fig. 12/13 sweep deliberately, now driven by temperature.  The study
quantifies both sides at a cool (40°C) and a hot (90°C) operating
point.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.ddr.imc import RefreshTimeline
from repro.ddr.spec import NVDIMMC_1600
from repro.ddr.thermal import operating_point, trefi_for_temperature
from repro.perf.model import HostCostModel
from repro.units import kb


def _host_bw(temp_c: float) -> float:
    trefi = trefi_for_temperature(temp_c)
    spec = NVDIMMC_1600.with_trefi(trefi)
    model = HostCostModel(RefreshTimeline(spec), "nvdc")
    return model.cached_bandwidth_mb_s(kb(4), is_write=False)


def run() -> ExperimentRecord:
    record = ExperimentRecord("thermal", "Temperature vs the tREFI trade")
    cool = operating_point(40)
    hot = operating_point(90)
    record.add("device ceiling @ 40C", "MiB/s", 500.8,
               cool.device_ceiling_mb_s)
    record.add("device ceiling @ 90C", "MiB/s", 1001.6,
               hot.device_ceiling_mb_s)
    cool_host = _host_bw(40)
    hot_host = _host_bw(90)
    record.add("host cached bw @ 40C", "MB/s", 1835, cool_host)
    record.add("host cached bw @ 90C (tREFI2)", "MB/s", 1691, hot_host)
    record.add("host cost of running hot (paper: 8%)", "%", None,
               (1 - hot_host / cool_host) * 100)
    record.note("a hot NVDIMM-C is a faster SCM: thermal throttling "
                "doubles the device windows for the Fig. 13 tREFI2 "
                "price (~8 % of host bandwidth)")
    return record


def render() -> str:
    rows = []
    for temp in (40, 85, 86, 90, 95):
        point = operating_point(temp)
        rows.append([f"{temp}C", f"{point.trefi_ps / 1e6:.1f}",
                     f"{point.device_ceiling_mb_s:.0f}",
                     f"{_host_bw(temp):.0f}"])
    return render_table(
        ["temp", "tREFI (us)", "device MiB/s", "host MB/s"], rows)
