"""Fig. 8 — 4 KB random reads/writes, one thread, iodepth 1.

Six bars: {Baseline, NVDC-Cached, NVDC-Uncached} x {read, write}, each
as KIOPS and MB/s.  Paper values:

    Baseline       R 646 K / 2606 MB/s    W 576 K / 2360 MB/s
    NVDC-Cached    R 448 K / 1835 MB/s    W 438 K / 1796 MB/s
    NVDC-Uncached  R 13 K  / 57.3 MB/s    W 14.2 K / 58.3 MB/s
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.experiments.common import (build_cached_nvdc, build_pmem,
                                      build_uncached_nvdc)
from repro.units import PAGE_4K, kb, mb
from repro.workloads.fio import FIOJob, FIORunner

PAPER = {
    ("baseline", False): (646, 2606),
    ("baseline", True): (576, 2360),
    ("cached", False): (448, 1835),
    ("cached", True): (438, 1796),
    ("uncached", False): (13.9, 57.3),
    ("uncached", True): (14.2, 58.3),
}


@dataclass
class Fig8Row:
    config: str
    is_write: bool
    kiops: float
    mb_s: float


def _cached_job(is_write: bool, nops: int) -> FIOJob:
    return FIOJob(name="fig8", rw="randwrite" if is_write else "randread",
                  bs=kb(4), size=mb(32), numjobs=1, nops=nops)


def run(nops: int = 2000, uncached_ops: int = 120
        ) -> tuple[ExperimentRecord, list[Fig8Row]]:
    rows: list[Fig8Row] = []
    for is_write in (False, True):
        result = FIORunner(build_pmem()).run(_cached_job(is_write, nops))
        rows.append(Fig8Row("baseline", is_write, result.kiops,
                            result.bandwidth_mb_s))
    for is_write in (False, True):
        result = FIORunner(build_cached_nvdc()).run(
            _cached_job(is_write, nops))
        rows.append(Fig8Row("cached", is_write, result.kiops,
                            result.bandwidth_mb_s))
    for is_write in (False, True):
        rows.append(_uncached_point(is_write, uncached_ops))

    record = ExperimentRecord("fig8", "4 KB random R/W, single thread")
    for row in rows:
        paper_kiops, paper_mb = PAPER[(row.config, row.is_write)]
        op = "write" if row.is_write else "read"
        record.add(f"{row.config} {op}", "KIOPS", paper_kiops, row.kiops)
        record.add(f"{row.config} {op}", "MB/s", paper_mb, row.mb_s)
    record.note("uncached misses pay a full writeback+cachefill pair "
                "(the PoC has no dirty tracking through DAX mappings)")
    return record, rows


def _uncached_point(is_write: bool, nops: int) -> Fig8Row:
    system, first_page, t = build_uncached_nvdc(extra_pages=nops + 8)
    start = t
    for i in range(nops):
        t = system.op((first_page + i) * PAGE_4K, kb(4), is_write, t)
    span = t - start
    kiops = nops / (span / 1e12) / 1e3
    mb_s = nops * kb(4) / 1e6 / (span / 1e12)
    return Fig8Row("uncached", is_write, kiops, mb_s)


def render(rows: list[Fig8Row]) -> str:
    table_rows = []
    for row in rows:
        op = "W" if row.is_write else "R"
        paper_kiops, paper_mb = PAPER[(row.config, row.is_write)]
        table_rows.append([f"{row.config} {op}", f"{row.kiops:.1f}",
                           paper_kiops, f"{row.mb_s:.1f}", paper_mb])
    return render_table(
        ["config", "KIOPS", "paper", "MB/s", "paper"], table_rows)
