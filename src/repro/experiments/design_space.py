"""§III-A / Fig. 1 — the design-space argument, computed.

Why DRAM-as-frontend?  Because an NVMC-as-frontend device must answer a
READ within tRCD + tCL of the ACTIVATE — 26.64 ns at stock DDR4-2400 —
and even with every 5-bit Skylake timing register maxed out (31 clocks
each) the budget only stretches to ~51.6 ns.  This module evaluates
each NVM technology against that budget, reproducing the paper's
conclusion: only STT-MRAM could sit on the bus directly (and its 2019
density, 1 Gb, is too small for SCM), so every dense medium needs the
DRAM-as-frontend architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.ddr.spec import DDR4Spec, GRADE_2400, SpeedGrade
from repro.units import ns, us


@dataclass(frozen=True)
class MediaTechnology:
    """One candidate NVM, with its §III-A characteristics."""

    name: str
    read_latency_ps: int        # array read latency
    density_gbit: float         # max single-die density, 2019
    source: str


#: The §III-A technology survey (public figures the paper cites).
TECHNOLOGIES = [
    MediaTechnology("STT-MRAM", ns(35), 1, "IEDM'19 [14,15]: 1 Gb parts"),
    MediaTechnology("PRAM/3DX", ns(300), 128, "hundreds of ns class [5]"),
    MediaTechnology("ReRAM", ns(1000), 32, "us-class as SCM arrays"),
    MediaTechnology("Z-NAND", us(3), 512, "tens of us device-level [17]"),
    MediaTechnology("NAND (TLC)", us(60), 1024, "tens of thousands of ns"),
]

#: Minimum density for a useful SCM DIMM (the paper: 1 Gb STT-MRAM is
#: "still insufficient"); 8 Gb matches commodity DRAM per-die density.
SCM_MIN_DENSITY_GBIT = 8


def stock_budget_ps(spec: DDR4Spec) -> int:
    """READ response budget on an unmodified controller: tRCD + tCL."""
    return spec.read_latency_ps


def max_programmable_budget_ps(grade: SpeedGrade) -> int:
    """Budget with the 5-bit Skylake timing registers maxed (31 clocks
    each for tRCD and tCL, §III-A)."""
    return 2 * 31 * grade.clock_ps


def run() -> ExperimentRecord:
    record = ExperimentRecord(
        "design_space", "§III-A: who can live at the frontend?")
    spec = DDR4Spec(grade=GRADE_2400)
    stock = stock_budget_ps(spec)
    maxed = max_programmable_budget_ps(GRADE_2400)
    record.add("stock READ budget (DDR4-2400)", "ns", 26.64, stock / 1000)
    record.add("maxed 5-bit registers budget", "ns", 51.615, maxed / 1000)

    frontend_capable = []
    for tech in TECHNOLOGIES:
        fits = tech.read_latency_ps <= maxed
        if fits:
            frontend_capable.append(tech)
        record.add(f"{tech.name} fits frontend", "bool",
                   1.0 if tech.name == "STT-MRAM" else 0.0,
                   1.0 if fits else 0.0)
    dense_enough = [t for t in frontend_capable
                    if t.density_gbit >= SCM_MIN_DENSITY_GBIT]
    record.add("frontend-capable AND SCM-dense", "count", 0,
               float(len(dense_enough)))
    record.note("paper's conclusion: nothing is both fast enough for "
                "the synchronous frontend and dense enough for SCM -> "
                "DRAM-as-frontend (Fig. 1b) is forced")
    return record


def render() -> str:
    spec = DDR4Spec(grade=GRADE_2400)
    stock = stock_budget_ps(spec)
    maxed = max_programmable_budget_ps(GRADE_2400)
    rows = []
    for tech in TECHNOLOGIES:
        verdict = ("frontend OK" if tech.read_latency_ps <= maxed
                   else "needs DRAM frontend")
        if (tech.read_latency_ps <= maxed
                and tech.density_gbit < SCM_MIN_DENSITY_GBIT):
            verdict += " (but too small for SCM)"
        rows.append([tech.name, f"{tech.read_latency_ps / 1000:g}",
                     f"{tech.density_gbit:g}", verdict])
    header = (f"READ budget: stock {stock / 1000:.2f} ns, "
              f"maxed registers {maxed / 1000:.2f} ns\n")
    return header + render_table(
        ["media", "read (ns)", "density (Gb)", "verdict"], rows)
