"""§II-A extension — why DAX: page-cache path vs direct access.

The paper's background section argues that traditional mmap turns every
byte access into 4 KB block I/O through the page cache.  This
experiment measures both paths over the same pmem-class device:

* **page-cache mmap** — first touch pays the block layer + a 4 KB copy,
  data exists twice, fsync writes blocks back;
* **DAX** — loads/stores hit the device's memory directly.
"""

from __future__ import annotations

import random

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.device.nvdimmc import PmemSystem
from repro.kernel.pagecache import PageCache
from repro.units import PAGE_4K, mb


def run(nops: int = 2000, footprint_mb: int = 8,
        seed: int = 3) -> ExperimentRecord:
    record = ExperimentRecord("dax", "DAX vs page-cache mmap (§II-A)")
    rng = random.Random(seed)
    pages = footprint_mb * 256
    offsets = [rng.randrange(pages) * PAGE_4K + rng.randrange(0, 4032)
               for _ in range(nops)]

    # Page-cache path (cold cache, cache smaller than the footprint so
    # some misses persist beyond the first touch).
    pc_system = PmemSystem(device_bytes=mb(32))
    cache = PageCache(pc_system.driver, capacity_pages=pages // 2)
    t = 0
    for offset in offsets:
        _, t = cache.read(offset, 64, t)
    pc_total = t
    pc_per_op = pc_total / nops / 1e6

    # DAX path: same accesses as loads via the DAX system.
    dax_system = PmemSystem(device_bytes=mb(32))
    t = 0
    for offset in offsets:
        t = dax_system.op(offset, 64, False, t)
    dax_per_op = t / nops / 1e6

    record.add("page-cache 64 B read (mean)", "us", None, pc_per_op)
    record.add("DAX 64 B read (mean)", "us", None, dax_per_op)
    record.add("DAX advantage", "x", None, pc_per_op / dax_per_op)
    record.add("page-cache bytes copied per byte read", "x", None,
               cache.stats.bytes_copied / (nops * 64))
    record.add("page-cache miss rate", "%", None,
               (1 - cache.stats.hit_rate) * 100)
    record.note("every page-cache miss moves a full 4 KB block for a "
                "64 B read — the §II-A argument for device_access")
    return record


def render() -> str:
    record = run(nops=800)
    rows = [[c.label, f"{c.measured:.3g} {c.unit}"]
            for c in record.comparisons]
    return render_table(["metric", "value"], rows)
