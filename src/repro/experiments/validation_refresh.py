"""§VII-A — refresh-detection accuracy and serialisation validation.

The paper could not quantify detector accuracy analytically and relied
on aging: STREAM on all cores over the DRAM-cache area, device transfers
behind every REFRESH, result comparison each iteration — "the result
comparison did not report any inconsistency and no system fault like
memory errors occurred."

The reproduction runs the same aging loop on the command-accurate bus
and reports: data mismatches (must be 0), bus collisions (must be 0),
detector confusion counts (must be 0), and — as a *negative control* —
the same loop with the tRFC rule disabled, which must corrupt the
channel immediately.  An additional noise sweep quantifies how much
electrical margin the detector has before accuracy degrades, the
analysis the paper says it could not do on silicon.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.ddr.commands import CommandKind, encode
from repro.errors import ProtocolError
from repro.nvmc.refresh_detector import RefreshDetector
from repro.workloads.stream_bench import run_stream_validation


def run(iterations: int = 3) -> ExperimentRecord:
    record = ExperimentRecord(
        "validation", "Refresh detection / serialisation aging test")

    clean = run_stream_validation(iterations=iterations)
    record.add("data mismatches", "count", 0, clean.mismatches)
    record.add("bus collisions", "count", 0, clean.collisions)
    record.add("detector false positives", "count", 0,
               clean.false_positives)
    record.add("detector false negatives", "count", 0,
               clean.false_negatives)
    record.add("refreshes exercised", "count", None,
               clean.refreshes_detected)
    record.add("device bytes under tRFC", "bytes", None,
               clean.device_bytes_moved)

    # Negative control: break the rule, expect trouble.
    try:
        rogue = run_stream_validation(iterations=1,
                                      respect_windows=False)
        rogue_failures = rogue.collisions + rogue.mismatches
    except ProtocolError:
        rogue_failures = 1    # an illegal command is a failure too
    record.add("rogue-mode failures (want > 0)", "count", None,
               float(rogue_failures))
    record.note("rogue mode drives the bus right after REF, as an "
                "unserialised design would")
    return record


def noise_sweep(bers=(0.0, 1e-6, 1e-4, 1e-3, 1e-2, 5e-2),
                commands: int = 20_000,
                refresh_every: int = 16) -> list[tuple[float, float]]:
    """Detector accuracy vs per-sample bit-flip rate (model-only study).

    Returns (ber, accuracy) pairs over a realistic command mix.
    """
    out = []
    mix = [CommandKind.ACT, CommandKind.RD, CommandKind.WR,
           CommandKind.PRE, CommandKind.NOP]
    for ber in bers:
        detector = RefreshDetector(noise_ber=ber, seed=13)
        for i in range(commands):
            if i % refresh_every == 0:
                kind = CommandKind.REF
            else:
                kind = mix[i % len(mix)]
            detector.observe(i, encode(kind))
        out.append((ber, detector.accuracy))
    return out
