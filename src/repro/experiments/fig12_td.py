"""Fig. 12 — the hypothetical device: Uncached bandwidth vs media tD.

Paper points (4 KB random reads, one thread, CP depth 1):

    tD = 0        -> 1503 MB/s   (driver software only)
    tD = 7.8 us   ->  451 MB/s   (media as slow as one tREFI)
    tD = 3.9 us   ->  681 MB/s
    tD = 1.85 us  ->  914 MB/s   (STT-MRAM/PRAM class: viable SCM)

The conclusion the paper draws — NVM media with a 4 KB latency of
1.85 us or less makes the architecture a balanced SCM — appears here as
the measured bandwidth at that point staying above ~900 MB/s, i.e. half
the Cached bandwidth.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_series
from repro.device.hypothetical import HypotheticalSystem
from repro.units import us

PAPER_POINTS = {0.0: 1503, 1.85: 914, 3.9: 681, 7.8: 451}


def run() -> tuple[ExperimentRecord, list[tuple[float, float]]]:
    series = []
    record = ExperimentRecord("fig12", "Hypothetical device vs tD")
    for td_us in (0.0, 1.85, 3.9, 7.8):
        system = HypotheticalSystem(td_ps=us(td_us))
        bw = system.uncached_bandwidth_mb_s()
        series.append((td_us, bw))
        record.add(f"tD = {td_us} us", "MB/s", PAPER_POINTS[td_us], bw)
    at_185 = dict(series)[1.85]
    record.add("SCM-viability point (tD<=1.85us)", "MB/s", 914, at_185)
    record.note("miss latency model: 2.72 us + 0.83 * tD, fitted to the "
                "paper's four points (see device/hypothetical.py)")
    return record, series


def render(series: list[tuple[float, float]]) -> str:
    return render_series("Fig. 12: Uncached bandwidth vs tD",
                         [f"{td}us" for td, _ in series],
                         [bw for _, bw in series],
                         x_label="tD", y_label="MB/s")
