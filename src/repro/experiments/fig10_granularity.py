"""Fig. 10 — access-granularity sweep, one thread (Cached vs Baseline).

Paper anchors: NVDC-Cached does 2147 KIOPS at 128 B reads — 1.15x the
baseline — and reaches ~3050 MB/s at 64 KB; there is a visible
bandwidth jump between 1 KB and 4 KB blocks (the driver manages
mappings at 4 KB granularity, so sub-page blocks amortise nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.experiments.common import build_cached_nvdc, build_pmem
from repro.units import kb, mb
from repro.workloads.fio import FIOJob, FIORunner

BLOCK_SIZES = (128, 256, 512, 1024, kb(4), kb(16), kb(64))


@dataclass
class Fig10Series:
    config: str
    bs: list[int] = field(default_factory=list)
    kiops: list[float] = field(default_factory=list)
    mb_s: list[float] = field(default_factory=list)

    def at(self, bs: int) -> tuple[float, float]:
        index = self.bs.index(bs)
        return self.kiops[index], self.mb_s[index]


def run(nops: int = 1500) -> tuple[ExperimentRecord, list[Fig10Series]]:
    series = []
    for config, builder in (("baseline", build_pmem),
                            ("cached", build_cached_nvdc)):
        s = Fig10Series(config)
        for bs in BLOCK_SIZES:
            job = FIOJob(rw="randread", bs=bs, size=mb(32), numjobs=1,
                         nops=nops)
            result = FIORunner(builder()).run(job)
            s.bs.append(bs)
            s.kiops.append(result.kiops)
            s.mb_s.append(result.bandwidth_mb_s)
        series.append(s)
    baseline, cached = series

    record = ExperimentRecord("fig10", "Access-granularity sweep")
    record.add("cached 128 B reads", "KIOPS", 2147, cached.at(128)[0])
    record.add("cached/baseline at 128 B", "x", 1.15,
               cached.at(128)[0] / baseline.at(128)[0])
    record.add("cached 64 KB bandwidth", "MB/s", 3050,
               cached.at(kb(64))[1])
    jump = cached.at(kb(4))[1] / cached.at(1024)[1]
    record.add("4 KB / 1 KB bandwidth jump", "x", None, jump)
    record.note("crossover: NVDC-Cached wins below ~1 KB, the baseline "
                "wins at 4 KB+ — the Fig. 10 inversion")
    return record, series


def render(series: list[Fig10Series]) -> str:
    rows = []
    for s in series:
        rows.append([f"{s.config} KIOPS"]
                    + [f"{v:.0f}" for v in s.kiops])
        rows.append([f"{s.config} MB/s"]
                    + [f"{v:.0f}" for v in s.mb_s])
    labels = [f"{bs}B" if bs < 1024 else f"{bs // 1024}K"
              for bs in BLOCK_SIZES]
    return render_table(["series"] + labels, rows)
