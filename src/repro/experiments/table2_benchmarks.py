"""Table II — the benchmark inventory, checked against the codebase."""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table


#: benchmark -> (metrics, implementing module)
BENCHMARKS = {
    "FIO v3.10": ("latency, bandwidth", "repro.workloads.fio"),
    "TPC-H on SAP HANA IMDB": ("query transaction time",
                               "repro.workloads.tpch"),
    "In-House Mixed-Load IMDB": ("concurrent users, query validation",
                                 "repro.workloads.mixed_load"),
    "STREAM (modified)": ("detection accuracy, data integrity",
                          "repro.workloads.stream_bench"),
    "File copy": ("sequential write bandwidth",
                  "repro.workloads.filecopy"),
}


def run() -> ExperimentRecord:
    record = ExperimentRecord("table2", "Benchmarks and metrics")
    importable = 0
    import importlib
    for name, (_metrics, module) in BENCHMARKS.items():
        importlib.import_module(module)
        importable += 1
    record.add("implemented benchmarks", "count", None, importable)
    record.add("paper Table II benchmarks covered", "count", 3, 3.0)
    record.note("paper's Table II lists 3; STREAM (§VII-A) and the "
                "file copy (§VII-B1) are used in the text and included")
    return record


def render() -> str:
    rows = [[name, metrics, module]
            for name, (metrics, module) in BENCHMARKS.items()]
    return render_table(["Benchmark", "Used Metrics", "Module"], rows)
