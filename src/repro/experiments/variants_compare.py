"""§VIII extension — the NVDIMM family, compared in numbers.

Reproduces the argument of the paper's introduction and related-work
section: among NVDIMM-N/F/P and NVDIMM-C, only NVDIMM-C combines SCM
capacity, byte-addressability, persistence and an *unmodified* memory
controller — and its power-failure energy window is bounded by the
cache size, not the device size (unlike NVDIMM-N).
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.device.variants import (all_variants,
                                   compatible_and_byte_addressable_and_dense,
                                   nvdimm_c, nvdimm_n)
from repro.units import gb


def run() -> ExperimentRecord:
    record = ExperimentRecord("variants", "JEDEC NVDIMM family comparison")
    winners = compatible_and_byte_addressable_and_dense()
    record.add("variants meeting all SCM criteria", "count", 1.0,
               float(len(winners)))
    record.add("the winner is NVDIMM-C", "bool", 1.0,
               1.0 if winners and winners[0].name == "NVDIMM-C" else 0.0)

    n = nvdimm_n()
    c = nvdimm_c()
    record.add("NVDIMM-N hold-up window (16 GB DRAM)", "s", None,
               n.backup_energy_window_s)
    record.add("NVDIMM-C hold-up window (16 GB cache)", "s", None,
               c.backup_energy_window_s)
    record.add("capacity ratio C/N at equal DRAM", "x", 7.5,
               c.capacity_bytes / n.capacity_bytes)
    record.note("NVDIMM-C buys 7.5x the capacity of NVDIMM-N for the "
                "same DRAM and the same hold-up energy class")
    return record


def render() -> str:
    rows = []
    for v in all_variants():
        rows.append([
            v.name,
            "yes" if v.byte_addressable else "no",
            "yes" if v.persistent else "no",
            "stock" if not v.needs_new_imc else "new iMC",
            f"{v.capacity_bytes / gb(1):.0f} GiB",
            f"{v.hit_latency_us:g}",
            "-" if v.miss_latency_us is None else f"{v.miss_latency_us:g}",
            f"{v.backup_energy_window_s:.1f}",
        ])
    return render_table(
        ["variant", "byte-addr", "persist", "iMC", "capacity",
         "hit (us)", "miss (us)", "hold-up (s)"], rows)
