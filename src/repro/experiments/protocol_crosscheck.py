"""Cross-validation: command-accurate layer vs transaction-level layer.

The reproduction runs on two model fidelities (DESIGN.md §5): the
command-accurate DDR4 stack validates the *mechanism*, the
transaction-level stack produces the *numbers*.  This experiment checks
that they agree where they overlap — if they diverge, one of them is
wrong:

1. **Device window bandwidth** — the protocol agent moves real 4 KB
   pages through real windows on the real bus; its sustained bandwidth
   must match the window arithmetic the transaction NVMC schedules by
   (one page per tREFI -> the §V-A 500.8 MiB/s ceiling).
2. **Window occupancy** — the time the agent's transfers actually spend
   inside windows must match the DMA engine's transfer-time model.
3. **Host blackout** — the measured stall of a host read that arrives
   during a refresh must equal the programmed tRFC the timeline
   arithmetic assumes.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.ddr.bus import SharedBus
from repro.ddr.device import DRAMDevice
from repro.ddr.imc import IntegratedMemoryController
from repro.ddr.spec import NVDIMMC_1600
from repro.nvmc.agent import NVMCProtocolAgent
from repro.nvmc.dma import DMAEngine
from repro.sim import Engine
from repro.units import PAGE_4K, mb, us

SPEC = NVDIMMC_1600


def run(pages: int = 120) -> ExperimentRecord:
    record = ExperimentRecord(
        "crosscheck", "Command-accurate vs transaction-level agreement")

    engine = Engine()
    device = DRAMDevice(SPEC, capacity_bytes=mb(64))
    bus = SharedBus(SPEC, device, raise_on_collision=True)
    imc = IntegratedMemoryController(engine, SPEC, bus)
    agent = NVMCProtocolAgent(SPEC, bus)
    imc.start_refresh_process()

    # 1) sustained device bandwidth through real windows.
    transfers = [agent.queue_write(i * PAGE_4K, bytes([i % 256]) * PAGE_4K)
                 for i in range(pages)]
    engine.run(until=us(7.8) * (pages + 4))
    assert all(t.done for t in transfers), "agent failed to drain"
    first = imc.timeline.window_containing(transfers[0].completed_ps)
    span_ps = transfers[-1].completed_ps - first.start_ps
    measured_mib_s = (pages - 1) * PAGE_4K / 2**20 / (span_ps / 1e12)
    predicted_mib_s = PAGE_4K / 2**20 / (SPEC.trefi_ps / 1e12)
    record.add("protocol device bandwidth", "MiB/s", None,
               measured_mib_s)
    record.add("timeline-arithmetic prediction", "MiB/s", 500.8,
               predicted_mib_s)
    record.add("protocol / arithmetic agreement", "ratio", 1.0,
               measured_mib_s / predicted_mib_s)

    # 2) per-transfer occupancy vs the DMA timing model.
    dma = DMAEngine(SPEC)
    predicted_occupancy = dma.transfer_time_ps(PAGE_4K)
    occupancies = []
    for t in transfers[1:]:
        window = imc.timeline.window_containing(t.completed_ps)
        occupancies.append(t.completed_ps - window.start_ps)
    mean_occupancy = sum(occupancies) / len(occupancies)
    record.add("measured window occupancy", "ns", None,
               mean_occupancy / 1000)
    record.add("DMA-model occupancy", "ns", None,
               predicted_occupancy / 1000)
    record.add("occupancy agreement", "ratio", 1.0,
               mean_occupancy / predicted_occupancy)

    # 3) host blackout: a read arriving just after REF resumes exactly
    # at REF + programmed tRFC.
    ref = imc.timeline.refresh_time(imc.refreshes_issued + 2)
    _, end = imc.host_read(mb(32), 64, ref + 1)
    stall = end - (ref + 1)
    predicted_stall = SPEC.trfc_ps + SPEC.trcd_ps + SPEC.tcl_ps \
        + SPEC.burst_time_ps
    record.add("host stall through refresh", "ns", None, stall / 1000)
    record.add("stall agreement", "ratio", 1.0, stall / predicted_stall)

    record.note("any disagreement >5 % here means the fast models no "
                "longer describe the protocol they abstract")
    return record
