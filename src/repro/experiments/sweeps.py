"""Parameter-sweep utilities and the design-choice sweep grids.

A :class:`Sweep` evaluates a function over the cross product of two
axes and renders the grid — the workhorse behind the "what should this
knob be?" questions DESIGN.md calls out:

* cache size x eviction policy  -> TPC-H hit rate (the §VII-B5 grid);
* tREFI x NVM latency           -> device/host operating map;
* window bytes x CP queue depth -> uncached-bandwidth ceiling map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.tables import render_table


@dataclass
class Sweep:
    """A 2-D parameter sweep with memoised results."""

    name: str
    row_label: str
    col_label: str
    rows: Sequence
    cols: Sequence
    fn: Callable      # fn(row_value, col_value) -> float
    unit: str = ""
    _grid: list[list[float]] | None = field(default=None, repr=False)

    def run(self) -> list[list[float]]:
        """Evaluate the full grid (cached)."""
        if self._grid is None:
            self._grid = [[float(self.fn(r, c)) for c in self.cols]
                          for r in self.rows]
        return self._grid

    def at(self, row, col) -> float:
        grid = self.run()
        return grid[list(self.rows).index(row)][list(self.cols).index(col)]

    def best_cell(self) -> tuple:
        """(row, col, value) of the maximum."""
        grid = self.run()
        best = None
        for i, row in enumerate(self.rows):
            for j, col in enumerate(self.cols):
                if best is None or grid[i][j] > best[2]:
                    best = (row, col, grid[i][j])
        return best

    def render(self) -> str:
        grid = self.run()
        header = [f"{self.row_label}\\{self.col_label}"] + [
            str(c) for c in self.cols]
        rows = [[str(r)] + [f"{v:.1f}" for v in row]
                for r, row in zip(self.rows, grid)]
        title = f"# {self.name}" + (f" ({self.unit})" if self.unit else "")
        return title + "\n" + render_table(header, rows)


# -- the concrete design-choice sweeps ---------------------------------------------


def cache_policy_sweep(db_pages: int = 25_600) -> Sweep:
    """TPC-H hit rate over cache size x eviction policy (§VII-B5)."""
    from repro.workloads.tpch import simulate_hit_rate

    return Sweep(
        name="TPC-H hit rate", row_label="cache",
        col_label="policy",
        rows=("1GB", "2GB", "4GB", "8GB", "16GB"),
        cols=("lrc", "lru", "clock"),
        fn=lambda row, col: 100 * simulate_hit_rate(
            int(row[:-2]) * 256, db_pages, policy=col),
        unit="%")


def operating_map_sweep() -> Sweep:
    """Device-side bandwidth over tREFI x media tD (Figs. 12+13)."""
    from repro.device.hypothetical import HypotheticalSystem
    from repro.units import us

    def device_bw(trefi_us: float, td_us: float) -> float:
        # At a faster refresh rate the per-window waits shrink
        # proportionally (the Fig. 12 experiment matches rate to tD).
        scale = trefi_us / 7.8
        system = HypotheticalSystem(td_ps=round(us(td_us * scale)))
        return system.uncached_bandwidth_mb_s()

    return Sweep(
        name="uncached bandwidth", row_label="tREFI_us",
        col_label="tD_us",
        rows=(7.8, 3.9, 1.95),
        cols=(0.0, 1.85, 3.9, 7.8),
        fn=device_bw, unit="MB/s")


def window_depth_sweep() -> Sweep:
    """Pipelined uncached bandwidth over window bytes x CP depth."""
    from repro.ddr.imc import RefreshTimeline
    from repro.ddr.spec import NVDIMMC_1600
    from repro.nand.spec import ZNAND_64GB
    from repro.nvmc.pipeline import PipelinedNVMC
    from repro.units import kb

    timeline = RefreshTimeline(NVDIMMC_1600)

    def bw(window_kb: int, depth: int) -> float:
        model = PipelinedNVMC(timeline, ZNAND_64GB, queue_depth=depth,
                              window_bytes=kb(window_kb))
        return model.run_uncached(120).bandwidth_mb_s

    return Sweep(
        name="pipelined uncached bandwidth", row_label="window_kb",
        col_label="depth", rows=(4, 8), cols=(1, 2, 4, 8),
        fn=bw, unit="MB/s")
