"""§V-A — the blast radius of the extended tRFC is one channel.

"On the Intel Skylake platforms, the tRFC time is configurable for each
memory channel.  Only the DRAM populated in the same channel with
NVDIMM-C will be negatively affected by the increased tRFC time.  The
DRAM performance for other memory channels will not experience
performance degradation."

The experiment builds the Table-I memory map — main-memory RDIMMs on
their own channels (stock 350 ns tRFC) and NVDIMM-C's channel at
1250 ns — and measures what each party pays, at the stock and the
quadrupled refresh rate.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.ddr.imc import RefreshTimeline
from repro.ddr.spec import DDR4_1600, NVDIMMC_1600
from repro.perf.model import HostCostModel
from repro.units import kb, us


def _bw(spec, flavour: str) -> float:
    model = HostCostModel(RefreshTimeline(spec), flavour)
    return model.cached_bandwidth_mb_s(kb(4), is_write=False)


def run() -> ExperimentRecord:
    record = ExperimentRecord(
        "isolation", "Per-channel tRFC: who pays for the window")

    main_stock = _bw(DDR4_1600, "pmem")
    # The main-memory channels keep their stock tRFC even when the
    # NVDIMM-C channel runs the extended value / faster refresh.
    main_while_nvdimmc = _bw(DDR4_1600, "pmem")
    record.add("main memory, NVDIMM-C absent", "MB/s", None, main_stock)
    record.add("main memory, NVDIMM-C present", "MB/s", None,
               main_while_nvdimmc)
    record.add("main-memory degradation", "%", 0.0,
               (1 - main_while_nvdimmc / main_stock) * 100)

    # A hypothetical RDIMM sharing the NVDIMM-C channel pays the
    # extended-tRFC price...
    colocated = _bw(NVDIMMC_1600, "pmem")
    record.add("co-located RDIMM (tRFC 1250 ns)", "MB/s", None, colocated)
    record.add("co-located degradation", "%", None,
               (1 - colocated / main_stock) * 100)
    # ...and more so at the quadrupled refresh rate.
    colocated4 = _bw(NVDIMMC_1600.with_trefi(us(1.95)), "pmem")
    record.add("co-located @ tREFI4", "MB/s", None, colocated4)
    record.add("co-located degradation @ tREFI4", "%", None,
               (1 - colocated4 / main_stock) * 100)
    record.note("matches Intel DCPMM's behaviour the paper cites: every "
                "NVDIMM taxes its own channel, none taxes the others")
    return record


def render() -> str:
    rows = [
        ["main memory (own channel)", "350 ns", "7.8",
         f"{_bw(DDR4_1600, 'pmem'):.0f}"],
        ["co-located with NVDIMM-C", "1250 ns", "7.8",
         f"{_bw(NVDIMMC_1600, 'pmem'):.0f}"],
        ["co-located, tREFI4", "1250 ns", "1.95",
         f"{_bw(NVDIMMC_1600.with_trefi(us(1.95)), 'pmem'):.0f}"],
    ]
    return render_table(["DIMM placement", "tRFC", "tREFI (us)",
                         "4 KB read MB/s"], rows)
