"""Table I — test system configuration, rendered from the live objects.

Not a measurement: the table is regenerated from the same configuration
objects every experiment runs on, so a drift between "what we claim"
and "what we simulate" is impossible.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.ddr.spec import DDR4_1600, NVDIMMC_1600
from repro.kernel.memmap import paper_region
from repro.nand.spec import ZNAND_64GB
from repro.units import format_size, gb, ns, to_ns, us


def run() -> ExperimentRecord:
    record = ExperimentRecord("table1", "Test system configuration")
    record.add("main memory tRFC", "ns", 350, to_ns(DDR4_1600.trfc_ps))
    record.add("NVDIMM-C channel tRFC", "ns", 1250,
               to_ns(NVDIMMC_1600.trfc_ps))
    record.add("tREFI", "us", 7.8, NVDIMMC_1600.trefi_ps / us(1))
    record.add("device window", "ns", 900, to_ns(NVDIMMC_1600.extra_trfc_ps))
    region = paper_region()
    record.add("cache slot area", "GiB", 15,
               region.layout.slots_bytes / gb(1))
    record.add("Z-NAND raw capacity", "GiB", 128,
               2 * ZNAND_64GB.capacity_bytes / gb(1))
    record.note("data rate limited to 1600 Mbps by the PoC board height")
    return record


def render() -> str:
    """The Table I text block."""
    region = paper_region()
    rows = [
        ["CPU", "Intel Xeon Platinum 8168 (modelled: 24-thread host)"],
        ["Main Memory", "2 x 128 GB DDR4 RDIMM @1600, tRFC 350 ns"],
        ["Baseline (/dev/pmem0)", "128 GB DDR4 RDIMM @1600 (XFS-dax)"],
        ["NVDIMM-C (/dev/nvdc0)",
         "128 GB module: 16 GB DRAM cache + 2 x 64 GB Z-NAND, "
         "tRFC 1250 ns (XFS-dax)"],
        ["Reserved region",
         f"{format_size(region.size_bytes)} "
         f"({region.num_slots} cache slots)"],
        ["Kernel parameter",
         region.kernel_parameter(region.base_paddr or 1 << 32,
                                 region.size_bytes)],
        ["Storage", "PM863 SATA SSD, seq read/write 520/475 MB/s"],
    ]
    return render_table(["Hardware", "Description"], rows)
