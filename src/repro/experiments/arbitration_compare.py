"""§VIII extension — arbitration schemes compared quantitatively.

Includes the paper's own §V-A ceiling arithmetic (500.8 MB/s per 4 KB
window at stock tREFI, 1001.6 at tREFI2) as anchors, then contrasts the
tRFC scheme against the related-work alternatives on device bandwidth,
host impact, capacity efficiency and progress guarantees.
"""

from __future__ import annotations

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.ddr.spec import NVDIMMC_1600
from repro.device.arbitration import TRFCScheme, compare
from repro.units import us


def run() -> ExperimentRecord:
    record = ExperimentRecord(
        "arbitration", "Arbitration schemes for the shared bus")

    stock = TRFCScheme()
    record.add("tRFC device ceiling @ tREFI", "MB/s", 500.8,
               stock.device_ceiling_mb_s())
    doubled = TRFCScheme(NVDIMMC_1600.with_trefi(us(3.9)))
    record.add("tRFC device ceiling @ tREFI2", "MB/s", 1001.6,
               doubled.device_ceiling_mb_s())

    profiles = compare()
    by_name = {p.name: p for p in profiles}
    trfc = by_name["tRFC windows (NVDIMM-C)"]
    dummy = by_name["dummy-access (Netlist)"]
    preempt = by_name["priority-preempt (LPDDR3 storage)"]

    record.add("tRFC capacity efficiency", "frac", 1.0,
               trfc.capacity_efficiency)
    record.add("dummy-access capacity efficiency", "frac", 0.5,
               dummy.capacity_efficiency)
    record.add("schemes with guaranteed device progress", "count", 1.0,
               float(sum(p.guaranteed_device_progress for p in profiles)))
    record.add("preempt ceiling at 90% host load", "MB/s", None,
               preempt.device_ceiling_mb_s)
    record.note("only the tRFC scheme keeps full capacity AND a "
                "progress guarantee — the §VIII argument, in numbers")
    return record


def render() -> str:
    rows = []
    for p in compare():
        rows.append([p.name, f"{p.device_ceiling_mb_s:.0f}",
                     f"{p.host_bandwidth_share:.2f}",
                     f"{p.capacity_efficiency:.2f}",
                     "yes" if p.guaranteed_device_progress else "no"])
    return render_table(
        ["scheme", "device MB/s", "host share", "capacity", "progress"],
        rows)
