"""Shared builders for the experiment modules.

All experiments run at a reduced capacity scale (ratios preserved; no
timing constant depends on absolute capacity — see
``repro.device.nvdimmc`` for the argument), with two standard sizes:

* **standard** — 64 MB cache / 128 MB footprint systems for the cached
  FIO experiments (1/256 of the paper's 16 GB cache);
* **small** — ~2 MB cache systems for the uncached experiments, where
  the cache must first be *filled* miss by miss.
"""

from __future__ import annotations

from repro.device.nvdimmc import NVDIMMCSystem, PmemSystem
from repro.nvmc.fsm import FirmwareModel
from repro.units import PAGE_4K, mb

#: Capacity scale of the standard experiment systems vs Table I.
STANDARD_SCALE = 256


def build_pmem(device_mb: int = 128, trefi_ps: int | None = None
               ) -> PmemSystem:
    """The /dev/pmem0 baseline at experiment scale."""
    return PmemSystem(device_bytes=mb(device_mb), trefi_ps=trefi_ps)


def build_cached_nvdc(cache_mb: int = 64, device_mb: int = 128,
                      trefi_ps: int | None = None, **kwargs
                      ) -> NVDIMMCSystem:
    """NVDIMM-C sized so the FIO footprint fits the cache (Cached)."""
    return NVDIMMCSystem(cache_bytes=mb(cache_mb),
                         device_bytes=mb(device_mb),
                         trefi_ps=trefi_ps, **kwargs)


def build_uncached_nvdc(cache_mb: int = 2, device_mb: int = 32,
                        extra_pages: int = 2048, fill: bool = True,
                        **kwargs) -> tuple[NVDIMMCSystem, int, int]:
    """NVDIMM-C with a pre-filled cache for Uncached measurements.

    Returns ``(system, first_uncached_page, fill_end_ps)``.  The pages
    beyond the cache are preloaded into Z-NAND (the FIO file was
    preconditioned), so every measured miss pays real media time.
    """
    system = NVDIMMCSystem(cache_bytes=mb(cache_mb),
                           device_bytes=mb(device_mb), **kwargs)
    nslots = system.region.num_slots
    payload = b"\x5c" * PAGE_4K
    for page in range(nslots, nslots + extra_pages):
        system.nand.preload(page, payload)
    t = 0
    if fill:
        for page in range(nslots):
            _, t = system.driver.fault(page, t, for_write=True)
    return system, nslots, t


def asic_firmware() -> FirmwareModel:
    """The §VII-C ASIC what-if: hardware FSM, zero software lag."""
    return FirmwareModel(step_ps=0)
