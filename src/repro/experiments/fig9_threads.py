"""Fig. 9 — 4 KB random R/W with thread count 1..16 (iodepth = threads).

Paper shape: the baseline scales to 2123 KIOPS / 8694 MB/s by 8
threads; NVDC-Cached reads peak at 1060 K / 4341 MB/s (8 threads) and
writes at 1127 K / 4615 MB/s (16); Uncached saturates by 4 threads
around 24.3 KIOPS / 99.7 MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.results import ExperimentRecord
from repro.analysis.tables import render_table
from repro.experiments.common import (build_cached_nvdc, build_pmem,
                                      build_uncached_nvdc)
from repro.units import PAGE_4K, kb, mb
from repro.workloads.fio import FIOJob, FIORunner

THREADS = (1, 2, 4, 8, 16)


@dataclass
class Fig9Series:
    config: str
    is_write: bool
    threads: list[int] = field(default_factory=list)
    mb_s: list[float] = field(default_factory=list)

    @property
    def peak(self) -> float:
        return max(self.mb_s)


def run(nops: int = 800, uncached_ops: int = 100
        ) -> tuple[ExperimentRecord, list[Fig9Series]]:
    series: list[Fig9Series] = []
    for config, builder in (("baseline", build_pmem),
                            ("cached", build_cached_nvdc)):
        for is_write in (False, True):
            s = Fig9Series(config, is_write)
            for n in THREADS:
                job = FIOJob(rw="randwrite" if is_write else "randread",
                             bs=kb(4), size=mb(32), numjobs=n,
                             iodepth=n, nops=nops)
                result = FIORunner(builder()).run(job)
                s.threads.append(n)
                s.mb_s.append(result.bandwidth_mb_s)
            series.append(s)
    series.append(_uncached_series(False, uncached_ops))

    record = ExperimentRecord("fig9", "Thread-count sweep")
    by_key = {(s.config, s.is_write): s for s in series}
    record.add("baseline read peak", "MB/s", 8694,
               by_key[("baseline", False)].peak)
    record.add("cached read peak", "MB/s", 4341,
               by_key[("cached", False)].peak)
    record.add("cached write peak", "MB/s", 4615,
               by_key[("cached", True)].peak)
    record.add("uncached read peak", "MB/s", 99.7,
               by_key[("uncached", False)].peak)
    uncached = by_key[("uncached", False)]
    record.add("uncached saturation threads (paper: 4)", "threads",
               None, _saturation_point(uncached))
    record.note("uncached scaling is limited by the CP queue depth of "
                "1: the device pipeline fills with very few threads")
    return record, series


def _uncached_series(is_write: bool, nops: int) -> Fig9Series:
    s = Fig9Series("uncached", is_write)
    for n in THREADS:
        system, first_page, t = build_uncached_nvdc(extra_pages=nops + 8)
        cursors = [t] * n
        for i in range(nops):
            k = min(range(n), key=lambda j: cursors[j])
            cursors[k] = system.op((first_page + i) * PAGE_4K, kb(4),
                                   is_write, cursors[k])
        span = max(cursors) - t
        s.threads.append(n)
        s.mb_s.append(nops * kb(4) / 1e6 / (span / 1e12))
    return s


def _saturation_point(series: Fig9Series) -> int:
    """First thread count within 5 % of the peak."""
    peak = series.peak
    for n, bw in zip(series.threads, series.mb_s):
        if bw >= 0.95 * peak:
            return n
    return series.threads[-1]


def render(series: list[Fig9Series]) -> str:
    rows = []
    for s in series:
        op = "W" if s.is_write else "R"
        rows.append([f"{s.config} {op}"]
                    + [f"{bw:.0f}" for bw in s.mb_s])
    return render_table(["config"] + [f"{n}T" for n in THREADS], rows)
