"""Experiment modules: one per table/figure of the paper's evaluation.

Each module exposes a ``run()`` returning an
:class:`~repro.analysis.results.ExperimentRecord` with paper-vs-measured
comparisons, plus the raw series for rendering.  ``repro.experiments.
runner`` executes everything and regenerates EXPERIMENTS.md.

| module                | paper artefact                               |
|-----------------------|----------------------------------------------|
| table1_config         | Table I  — test system configuration         |
| table2_benchmarks     | Table II — benchmarks and metrics            |
| validation_refresh    | §VII-A   — refresh-detection aging test      |
| fig7_filecopy         | Fig. 7   — file-copy throughput              |
| fig8_randrw           | Fig. 8   — 4 KB random R/W, 1 thread         |
| fig9_threads          | Fig. 9   — thread-count sweep                |
| fig10_granularity     | Fig. 10  — access-granularity sweep          |
| fig11_tpch            | Fig. 11  — TPC-H on HANA + LRU hit study     |
| fig12_td              | Fig. 12  — hypothetical device vs tD         |
| fig13_trefi           | Fig. 13  — host bandwidth vs tREFI           |
| mixed_integrity       | §VII-B5  — mixed-load data validation        |
| ablations             | §VII-C   — future-work what-ifs (extensions) |
| design_space          | §III-A   — frontend-feasibility calculator   |
| arbitration_compare   | §VIII    — arbitration schemes compared      |
| variants_compare      | §VIII    — JEDEC NVDIMM family compared      |
| thermal_study         | §II-B    — temperature vs the tREFI trade    |
| protocol_crosscheck   | model cross-validation (protocol vs fast)    |
| channel_isolation     | §V-A     — per-channel tRFC blast radius     |
| power_endurance       | refresh watts + NAND wear of the mechanism   |
| dax_motivation        | §II-A    — DAX vs page-cache mmap            |
| sweeps                | 2-D design-choice grids (library, no runner) |
"""

from repro.experiments import (ablations, arbitration_compare,
                               channel_isolation, dax_motivation,
                               design_space, fig7_filecopy, fig8_randrw,
                               fig9_threads, fig10_granularity, fig11_tpch,
                               fig12_td, fig13_trefi, mixed_integrity,
                               power_endurance, protocol_crosscheck,
                               table1_config,
                               table2_benchmarks, thermal_study,
                               validation_refresh, variants_compare)
from repro.experiments.runner import ALL_EXPERIMENTS, run_all

__all__ = [
    "ablations",
    "arbitration_compare",
    "design_space",
    "thermal_study",
    "protocol_crosscheck",
    "channel_isolation",
    "power_endurance",
    "dax_motivation",
    "variants_compare",
    "fig7_filecopy",
    "fig8_randrw",
    "fig9_threads",
    "fig10_granularity",
    "fig11_tpch",
    "fig12_td",
    "fig13_trefi",
    "mixed_integrity",
    "table1_config",
    "table2_benchmarks",
    "validation_refresh",
    "ALL_EXPERIMENTS",
    "run_all",
]
