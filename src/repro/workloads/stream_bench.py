"""The §VII-A validation workload: STREAM with per-iteration checking.

"We ran the STREAM benchmark intensively on all the CPU cores for the
DRAM cache area.  The STREAM benchmark was modified to compare the
results with the reference data every iteration.  The refresh detector
is always enabled such that the FPGA accesses behind the tRFC time
happen every REFRESH command."

The reproduction runs STREAM's four kernels (copy / scale / add /
triad) through the host iMC on the *command-accurate* shared bus, while
the NVMC protocol agent performs a 4 KB transfer in every refresh
window.  Every kernel iteration is verified against a NumPy reference;
any bus collision raises, any corruption is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ddr.bus import SharedBus
from repro.ddr.device import DRAMDevice
from repro.ddr.imc import IntegratedMemoryController
from repro.ddr.spec import DDR4Spec, NVDIMMC_1600
from repro.nvmc.agent import NVMCProtocolAgent
from repro.sim import Engine
from repro.units import PAGE_4K, us


@dataclass
class StreamResult:
    """Outcome of one aging run."""

    iterations: int = 0
    kernels_checked: int = 0
    mismatches: int = 0
    collisions: int = 0
    refreshes_detected: int = 0
    device_bytes_moved: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def clean(self) -> bool:
        return self.mismatches == 0 and self.collisions == 0


def run_stream_validation(iterations: int = 3,
                          array_elems: int = 256,
                          spec: DDR4Spec = NVDIMMC_1600,
                          respect_windows: bool = True,
                          agent_pages: int = 64,
                          seed: int = 42) -> StreamResult:
    """Run the modified STREAM aging test on the protocol-level stack.

    Three arrays a/b/c of ``array_elems`` float64s live in the DRAM
    cache; the host iMC moves every element through real DDR4 command
    sequences while the agent writes/reads scratch pages during refresh
    windows.  Everything is checked against a NumPy reference.
    """
    rng = np.random.default_rng(seed)
    engine = Engine()
    device = DRAMDevice(spec, capacity_bytes=64 * 1024 * 1024)
    bus = SharedBus(spec, device,
                    raise_on_collision=respect_windows)
    imc = IntegratedMemoryController(engine, spec, bus)
    agent = NVMCProtocolAgent(spec, bus, respect_windows=respect_windows)
    imc.start_refresh_process()

    result = StreamResult()
    elem = 8
    stride = array_elems * elem
    base_a, base_b, base_c = 0, stride, 2 * stride
    scratch_base = 16 * stride

    # Initialise a and b via the host path.
    a_ref = rng.random(array_elems)
    b_ref = rng.random(array_elems)
    c_ref = np.zeros(array_elems)
    t = us(1)
    t = imc.host_write(base_a, a_ref.tobytes(), t)
    t = imc.host_write(base_b, b_ref.tobytes(), t)
    t = imc.host_write(base_c, c_ref.tobytes(), t)

    def host_rw_array(base: int, values: np.ndarray, start: int) -> int:
        return imc.host_write(base, values.tobytes(), start)

    def host_read_array(base: int, start: int) -> tuple[np.ndarray, int]:
        data, end = imc.host_read(base, stride, start)
        return np.frombuffer(data, dtype=np.float64).copy(), end

    scalar = 3.0
    scratch = {}
    for iteration in range(iterations):
        # Keep the device side busy: one 4 KB page per refresh window.
        for i in range(agent_pages // max(1, iterations)):
            page = (iteration * 131 + i) % 64
            payload = bytes([(iteration + page) % 256]) * PAGE_4K
            agent.queue_write(scratch_base + page * PAGE_4K, payload)
            scratch[page] = payload

        # copy: c = a
        values, t = host_read_array(base_a, t + us(1))
        t = host_rw_array(base_c, values, t)
        c_ref = a_ref.copy()
        # scale: b = scalar * c
        values, t = host_read_array(base_c, t + us(1))
        t = host_rw_array(base_b, scalar * values, t)
        b_ref = scalar * c_ref
        # add: c = a + b
        va, t = host_read_array(base_a, t + us(1))
        vb, t = host_read_array(base_b, t + us(1))
        t = host_rw_array(base_c, va + vb, t)
        c_ref = a_ref + b_ref
        # triad: a = b + scalar * c
        vb, t = host_read_array(base_b, t + us(1))
        vc, t = host_read_array(base_c, t + us(1))
        t = host_rw_array(base_a, vb + scalar * vc, t)
        a_ref = b_ref + scalar * c_ref

        # Per-iteration verification against the references.
        engine.run(until=t)
        for base, ref in ((base_a, a_ref), (base_b, b_ref), (base_c, c_ref)):
            readback, t = host_read_array(base, t + us(1))
            result.kernels_checked += 1
            if not np.array_equal(readback, ref):
                result.mismatches += 1
        result.iterations += 1

    # Drain remaining agent work, then audit its scratch pages too.
    engine.run(until=t + us(2000))
    for page, payload in scratch.items():
        if device.peek(scratch_base + page * PAGE_4K, PAGE_4K) != payload:
            result.mismatches += 1

    result.collisions = bus.collision_count
    result.refreshes_detected = len(agent.detector.detections)
    result.device_bytes_moved = agent.stats.bytes_written
    result.false_positives = agent.detector.false_positives
    result.false_negatives = agent.detector.false_negatives
    return result
