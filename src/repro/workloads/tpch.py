"""Synthetic TPC-H SF-100 traces on a HANA-like engine model (Fig. 11).

We cannot run SAP HANA; what shapes Fig. 11 is each query's *page
access behaviour* against the 16 GB DRAM cache of a 100 GB database:

* Q1 is "a sequential table scan, so with increase in bandwidth of the
  device this query can become compute-bound" — large sequential reads
  plus heavy compute, giving the smallest slowdown (3.3x);
* Q20 "results in many small accesses" [Kandaswamy & Knighten, IPDS'00]
  over a footprint larger than the cache, and under the PoC's LRC
  eviction it thrashes (78x);
* the remaining queries are parameterised from the same I/O-phase
  characterisation study: mixes of scans over the big tables
  (lineitem/orders) and skewed index-ish lookups.

The per-query parameters are **synthetic** (documented here and in
DESIGN.md): they are tuned so that the two text-anchored queries land
on the paper's numbers and the rest fall in the plausible middle.  The
LRU hit-rate study of §VII-B5 (78.7-99.3 % from 1 to 16 GB) runs the
same traces through the same eviction policies.

Query execution time is computed with the cache-simulation + cost-model
split the paper's own in-house simulation used: the trace runs through
a slot cache with the chosen policy (hits/misses counted), and time is
``compute + hits * hit_cost + misses * miss_cost``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.kernel.eviction import make_policy
from repro.perf.calibration import CalibrationConstants, DEFAULT_CALIBRATION
from repro.units import PAGE_4K, us


@dataclass(frozen=True)
class QuerySpec:
    """Access-behaviour parameters of one TPC-H query (synthetic)."""

    name: str
    footprint_frac: float      # fraction of the database touched
    accesses_per_page: float   # trace length / footprint pages
    pattern: str               # "seq" | "rand" | "zipf"
    zipf_hot_frac: float = 0.2     # hot fraction for "zipf"
    zipf_hot_prob: float = 0.8     # probability of hitting the hot set
    access_bytes: int = PAGE_4K
    compute_us_per_access: float = 0.0


#: The 22 queries.  Q1 and Q20 are calibrated against the paper's text;
#: the others follow the IPDS'00 characterisation qualitatively
#: (scan-heavy early queries, lookup-heavy late ones).
TPCH_QUERIES: dict[str, QuerySpec] = {
    "Q1": QuerySpec("Q1", 0.70, 1.0, "seq", compute_us_per_access=29.3),
    "Q2": QuerySpec("Q2", 0.05, 3.0, "zipf", compute_us_per_access=2.0),
    "Q3": QuerySpec("Q3", 0.45, 1.2, "seq", compute_us_per_access=6.0),
    "Q4": QuerySpec("Q4", 0.30, 1.5, "zipf", compute_us_per_access=4.0),
    "Q5": QuerySpec("Q5", 0.40, 1.3, "zipf", compute_us_per_access=5.0),
    "Q6": QuerySpec("Q6", 0.60, 1.0, "seq", compute_us_per_access=8.0),
    "Q7": QuerySpec("Q7", 0.35, 1.4, "zipf", compute_us_per_access=4.0),
    "Q8": QuerySpec("Q8", 0.30, 1.6, "zipf", compute_us_per_access=3.5),
    "Q9": QuerySpec("Q9", 0.55, 1.5, "zipf", compute_us_per_access=3.0),
    "Q10": QuerySpec("Q10", 0.35, 1.3, "zipf", compute_us_per_access=4.0),
    "Q11": QuerySpec("Q11", 0.08, 2.5, "zipf", compute_us_per_access=2.0),
    "Q12": QuerySpec("Q12", 0.40, 1.1, "seq", compute_us_per_access=5.0),
    "Q13": QuerySpec("Q13", 0.25, 1.5, "zipf", compute_us_per_access=5.0),
    "Q14": QuerySpec("Q14", 0.30, 1.2, "seq", compute_us_per_access=4.0),
    "Q15": QuerySpec("Q15", 0.30, 1.4, "seq", compute_us_per_access=4.0),
    "Q16": QuerySpec("Q16", 0.10, 2.0, "zipf", compute_us_per_access=2.5),
    "Q17": QuerySpec("Q17", 0.45, 2.0, "rand", access_bytes=1024,
                     compute_us_per_access=1.0),
    "Q18": QuerySpec("Q18", 0.50, 1.6, "zipf", compute_us_per_access=2.5),
    "Q19": QuerySpec("Q19", 0.35, 1.5, "zipf", compute_us_per_access=3.0),
    "Q20": QuerySpec("Q20", 0.80, 3.0, "rand", access_bytes=512,
                     compute_us_per_access=0.10),
    "Q21": QuerySpec("Q21", 0.55, 1.8, "zipf", compute_us_per_access=2.0),
    "Q22": QuerySpec("Q22", 0.12, 2.0, "zipf", compute_us_per_access=2.0),
}


#: Parameters of the §VII-B5 hit-rate study traces.  The paper's
#: in-house simulation traced *HANA's* accesses to the device, which
#: concentrate on a hot main-store subset far more than raw query page
#: touches do: all queries share the big base tables, and HANA touches
#: the compressed hot columns overwhelmingly often.  The hot region is
#: ~12 % of SF-100 (≈12 GB — inside the 16 GB cache, which is why the
#: paper's LRU curve saturates at 99.3 %), with a strong skew inside.
HOT_DB_FRAC = 0.12
HOT_SKEW = 12.0
HOT_WEIGHT = 0.99


def _hot_page(rng: random.Random, db_pages: int) -> int:
    """A skewed draw from the database-wide hot region."""
    hot_pages = max(1, int(db_pages * HOT_DB_FRAC))
    return int(hot_pages * rng.random() ** HOT_SKEW)


def generate_query_trace(spec: QuerySpec, db_pages: int,
                         max_accesses: int = 60_000,
                         seed: int = 7,
                         hot_weight: float = 0.0) -> list[int]:
    """Page-number trace for one query over a ``db_pages`` database.

    With ``hot_weight = 0`` (the Fig. 11 configuration) accesses follow
    the query's own pattern over its footprint — raw page touches.
    With ``hot_weight > 0`` (the hit-rate-study configuration) that
    fraction of accesses goes to the shared skewed hot region instead,
    modelling HANA's main-store locality.  Query footprints are
    anchored deterministically (the same "tables" across runs and cache
    sizes).  Trace length scales with the footprint but is capped so a
    full 22-query run stays fast at any scale.
    """
    # CRC32, not hash(): str hashing is randomised per process
    # (PYTHONHASHSEED), which made traces differ between processes and
    # broke serial-vs-parallel runner equivalence.
    name_key = zlib.crc32(spec.name.encode("utf-8"))
    rng = random.Random(seed ^ name_key)
    footprint = max(16, int(db_pages * spec.footprint_frac))
    # Deterministic anchor: queries over the same table ranges overlap.
    base = (name_key % 7) * max(1, (db_pages - footprint) // 7)
    length = min(max_accesses, int(footprint * spec.accesses_per_page))
    trace: list[int] = []
    seq_cursor = 0
    for _ in range(length):
        if hot_weight and rng.random() < hot_weight:
            trace.append(_hot_page(rng, db_pages))
            continue
        if spec.pattern == "seq":
            trace.append(base + seq_cursor % footprint)
            seq_cursor += 1
        elif spec.pattern == "rand":
            trace.append(base + rng.randrange(footprint))
        elif spec.pattern == "zipf":
            hot_pages = max(1, int(footprint * spec.zipf_hot_frac))
            if rng.random() < spec.zipf_hot_prob:
                trace.append(base + rng.randrange(hot_pages))
            else:
                trace.append(base + rng.randrange(footprint))
        else:
            raise ValueError(f"unknown pattern {spec.pattern!r}")
    return trace


class _SlotCache:
    """Counting-only cache simulation (policy + membership)."""

    def __init__(self, capacity_pages: int, policy_name: str) -> None:
        self.capacity = capacity_pages
        self.policy = make_policy(policy_name)
        self.members: set[int] = set()
        self.hits = 0
        self.misses = 0

    def access(self, page: int) -> bool:
        if page in self.members:
            self.hits += 1
            self.policy.on_access(page)
            return True
        self.misses += 1
        if len(self.members) >= self.capacity:
            victim = self.policy.pick_victim()
            self.members.remove(victim)
        self.policy.on_cached(page)
        self.members.add(page)
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class TPCHResult:
    """One query's outcome on one device configuration."""

    name: str
    time_nvdc_s: float
    time_pmem_s: float
    hit_rate: float

    @property
    def slowdown(self) -> float:
        """Execution time normalised to the baseline (Fig. 11 y-axis)."""
        return self.time_nvdc_s / self.time_pmem_s


def run_query(spec: QuerySpec, db_pages: int, cache_pages: int,
              policy: str = "lrc", seed: int = 7,
              calibration: CalibrationConstants = DEFAULT_CALIBRATION,
              miss_pair_us: float = 70.2) -> TPCHResult:
    """Execute one query on NVDIMM-C (cache sim + cost model) and on
    the pmem baseline."""
    trace = generate_query_trace(spec, db_pages, seed=seed)
    cache = _SlotCache(cache_pages, policy)
    for page in trace:
        cache.access(page)
    bs = spec.access_bytes
    # Host-side per-access costs from the same calibrated model the FIO
    # experiments use (single-thread; queries here are single-stream).
    from repro.ddr.imc import RefreshTimeline
    from repro.ddr.spec import DDR4_1600, NVDIMMC_1600
    from repro.perf.model import HostCostModel
    nvdc_model = HostCostModel(RefreshTimeline(NVDIMMC_1600), "nvdc",
                               calibration)
    pmem_model = HostCostModel(RefreshTimeline(DDR4_1600), "pmem",
                               calibration)
    hit_ps = nvdc_model.cached_cost(bs, False).total_ps
    pmem_ps = pmem_model.cached_cost(bs, False).total_ps
    miss_ps = us(miss_pair_us) + hit_ps
    compute_ps = us(spec.compute_us_per_access) * len(trace)
    time_nvdc = (cache.hits * hit_ps + cache.misses * miss_ps
                 + compute_ps) / 1e12
    time_pmem = (len(trace) * pmem_ps + compute_ps) / 1e12
    return TPCHResult(name=spec.name, time_nvdc_s=time_nvdc,
                      time_pmem_s=time_pmem, hit_rate=cache.hit_rate)


def run_all_queries(db_pages: int, cache_pages: int, policy: str = "lrc",
                    seed: int = 7) -> list[TPCHResult]:
    """Fig. 11: all 22 queries, in order."""
    return [run_query(TPCH_QUERIES[f"Q{i}"], db_pages, cache_pages,
                      policy=policy, seed=seed)
            for i in range(1, 23)]


def simulate_hit_rate(cache_pages: int, db_pages: int,
                      policy: str = "lru", seed: int = 7) -> float:
    """The §VII-B5 in-house study: aggregate hit rate of the TPC-H
    trace mix under a policy at a given cache size."""
    cache = _SlotCache(cache_pages, policy)
    for i in range(1, 23):
        spec = TPCH_QUERIES[f"Q{i}"]
        for page in generate_query_trace(spec, db_pages,
                                         max_accesses=20_000, seed=seed,
                                         hot_weight=HOT_WEIGHT):
            cache.access(page)
    return cache.hit_rate
