"""Workload generators and runners (Table II of the paper).

* :mod:`repro.workloads.fio` — a FIO-v3.10-like job engine (rw pattern,
  block size, numjobs/iodepth, libpmem-style DAX access) used for all
  the synthetic experiments of §VII-B.
* :mod:`repro.workloads.filecopy` — the §VII-B1 file-copy workload
  (SSD source at a fixed sequential rate -> /dev/nvdc0).
* :mod:`repro.workloads.stream_bench` — the modified STREAM loop of
  §VII-A that validates refresh-detection / bus-serialisation accuracy
  against reference data.
* :mod:`repro.workloads.tpch` — synthetic TPC-H SF-100 page-access
  traces on a HANA-like in-memory engine model (§VII-B5).
* :mod:`repro.workloads.mixed_load` — the SAP-style concurrent-user
  benchmark with per-transaction data validation (§VII-B5).
"""

from repro.workloads.fio import FIOJob, FIOResult, FIORunner
from repro.workloads.filecopy import FileCopyResult, run_file_copy
from repro.workloads.mixed_load import MixedLoadResult, run_mixed_load
from repro.workloads.stream_bench import StreamResult, run_stream_validation
from repro.workloads.tpch import (QuerySpec, TPCH_QUERIES, TPCHResult,
                                  generate_query_trace, run_query,
                                  simulate_hit_rate)

__all__ = [
    "FIOJob",
    "FIOResult",
    "FIORunner",
    "FileCopyResult",
    "run_file_copy",
    "MixedLoadResult",
    "run_mixed_load",
    "StreamResult",
    "run_stream_validation",
    "QuerySpec",
    "TPCH_QUERIES",
    "TPCHResult",
    "generate_query_trace",
    "run_query",
    "simulate_hit_rate",
]
