"""The §VII-B1 file-copy workload (Fig. 7).

"We copied a 20 GB file from the SSD storage to our block device ...
and measured the real-time bandwidth."  The SSD source is a constant
sequential-read rate (520 MB/s, Table I), so the *Cached* phase is
SSD-limited at ~518 MB/s; once the written bytes exceed the free cache
slots, every 4 KB write needs a writeback+cachefill pair and bandwidth
collapses to the Uncached floor (~68 MB/s in the paper).

The copy goes through the block layer (write_page) exactly as ``cp``
through the page cache would, and the runner samples bandwidth per
progress bucket to produce the Fig. 7 time series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.nvdimmc import NVDIMMCSystem
from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.units import PAGE_4K, bandwidth_mb_s


@dataclass
class FileCopyResult:
    """Fig. 7 series: bandwidth per progress bucket."""

    copied_gb: list[float] = field(default_factory=list)
    bandwidth_mb_s: list[float] = field(default_factory=list)

    @property
    def peak_mb_s(self) -> float:
        return max(self.bandwidth_mb_s) if self.bandwidth_mb_s else 0.0

    @property
    def floor_mb_s(self) -> float:
        return min(self.bandwidth_mb_s) if self.bandwidth_mb_s else 0.0

    def bandwidth_at_gb(self, copied_gb: float) -> float:
        """Bandwidth of the bucket containing a progress point."""
        for gb, bw in zip(self.copied_gb, self.bandwidth_mb_s):
            if gb >= copied_gb:
                return bw
        return self.bandwidth_mb_s[-1]


def run_file_copy(system: NVDIMMCSystem, file_bytes: int,
                  buckets: int = 40,
                  ssd_read_mb_s: float | None = None) -> FileCopyResult:
    """Copy ``file_bytes`` from the modelled SSD onto the device.

    Writes land page by page: the SSD feeds data at its sequential-read
    rate, and each page write completes at
    ``max(ssd_ready, device_ready)`` — whichever side is the
    bottleneck.
    """
    ssd_rate = ssd_read_mb_s or DEFAULT_CALIBRATION.ssd_seq_read_mb_s
    ssd_ps_per_page = round(PAGE_4K / (ssd_rate * 1e6) * 1e12)
    pages = file_bytes // PAGE_4K
    bucket_pages = max(1, pages // buckets)
    result = FileCopyResult()
    t = 0
    bucket_start_ps = 0
    payload = b"\xc7" * PAGE_4K
    for page in range(pages):
        ssd_ready = (page + 1) * ssd_ps_per_page
        t = system.driver.write_page(page, payload, max(t, ssd_ready))
        # Account the host-side write cost of moving the page.
        t += system.cost_model.cached_cost(PAGE_4K, True).total_ps
        if (page + 1) % bucket_pages == 0:
            span = t - bucket_start_ps
            result.copied_gb.append((page + 1) * PAGE_4K / 2**30)
            result.bandwidth_mb_s.append(
                bandwidth_mb_s(bucket_pages * PAGE_4K, span))
            bucket_start_ps = t
    return result
