"""The SAP-style mixed-load benchmark with data validation (§VII-B5).

"We also run a mixed-load benchmark ... to evaluate the data integrity
of the memory device.  This benchmark always performs data validation
whenever a series of transactions are completed.  In this experiment,
we observed that five hundreds of user workload can be executed
concurrently on our device without any data corruption."

Each simulated user runs read-modify-write transactions over its own
row set plus a shared hot set; every page carries a self-describing
record (user, sequence number, checksum) that is validated on every
read and once more in a final full sweep.  The data moves through the
*real* stack — CPU cache with explicit coherence, nvdc driver, CP
protocol, Z-NAND — so any bookkeeping or coherence bug surfaces as a
validation failure, exactly what the benchmark exists to catch.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.device.nvdimmc import NVDIMMCSystem
from repro.units import PAGE_4K


def _make_record(user: int, seq: int, page: int) -> bytes:
    """A 4 KB page payload with an embedded integrity header."""
    header = user.to_bytes(4, "little") + seq.to_bytes(4, "little") + \
        page.to_bytes(4, "little")
    digest = hashlib.blake2b(header, digest_size=8).digest()
    body = (header + digest)
    return body + bytes(PAGE_4K - len(body))


def _check_record(data: bytes, page: int) -> bool:
    """Validate a page previously written by :func:`_make_record`."""
    header, digest = data[:12], data[12:20]
    if hashlib.blake2b(header, digest_size=8).digest() != digest:
        return False
    return int.from_bytes(header[8:12], "little") == page


@dataclass
class MixedLoadResult:
    """Outcome of one mixed-load run."""

    users: int
    transactions: int
    reads: int = 0
    writes: int = 0
    validation_failures: int = 0
    final_sweep_pages: int = 0
    span_ps: int = 0

    @property
    def clean(self) -> bool:
        return self.validation_failures == 0

    @property
    def transactions_per_second(self) -> float:
        if self.span_ps <= 0:
            return 0.0
        return self.transactions / (self.span_ps / 1e12)


def run_mixed_load(system: NVDIMMCSystem, users: int = 50,
                   transactions_per_user: int = 10,
                   pages_per_user: int = 4, seed: int = 11
                   ) -> MixedLoadResult:
    """Run the concurrent-user benchmark on a built system.

    Users interleave by simulated time (earliest-cursor-first).  A
    transaction reads one of the user's pages (validating it if ever
    written), rewrites it with a bumped sequence number, and touches a
    page from the shared hot set.
    """
    rng = random.Random(seed)
    driver = system.driver
    dram = system.dram
    total_txns = users * transactions_per_user
    result = MixedLoadResult(users=users, transactions=total_txns)
    hot_pages = list(range(users * pages_per_user,
                           users * pages_per_user + 8))
    cursors = [0] * users
    seqs: dict[int, int] = {}
    written: dict[int, int] = {}   # page -> writing user
    remaining = [transactions_per_user] * users

    def page_rw(page: int, user: int, now: int, *, write: bool) -> int:
        """One page access through the full data + timing path."""
        slot = driver.lookup(page)
        if slot is None:
            slot, now = driver.fault(page, now, write)
        paddr = system.region.slot_paddr(slot)
        cache = system.cpu_cache
        if write:
            seq = seqs.get(page, 0) + 1
            seqs[page] = seq
            record = _make_record(user, seq, page)
            if cache is not None:
                cache.store(paddr, record)
            else:
                dram.poke(paddr, record)
            driver.mark_write(page)
            written[page] = user
            result.writes += 1
            now = system.op(page * PAGE_4K, PAGE_4K, True, now)
        else:
            data = (cache.load(paddr, PAGE_4K) if cache is not None
                    else dram.peek(paddr, PAGE_4K))
            if page in written and not _check_record(data, page):
                result.validation_failures += 1
            result.reads += 1
            now = system.op(page * PAGE_4K, PAGE_4K, False, now)
        return now

    while any(remaining):
        user = min((u for u in range(users) if remaining[u]),
                   key=lambda u: cursors[u])
        now = cursors[user]
        own_page = user * pages_per_user + rng.randrange(pages_per_user)
        now = page_rw(own_page, user, now, write=False)
        now = page_rw(own_page, user, now, write=True)
        now = page_rw(rng.choice(hot_pages), user, now, write=False)
        cursors[user] = now
        remaining[user] -= 1

    # Final sweep: every written page must validate, including those
    # that were evicted to Z-NAND and must come back intact.
    for page in sorted(written):
        slot = driver.lookup(page)
        if slot is None:
            slot, _ = driver.fault(page, max(cursors), False)
        paddr = system.region.slot_paddr(slot)
        data = (system.cpu_cache.load(paddr, PAGE_4K)
                if system.cpu_cache is not None
                else dram.peek(paddr, PAGE_4K))
        if not _check_record(data, page):
            result.validation_failures += 1
        result.final_sweep_pages += 1
    result.span_ps = max(cursors)
    return result
