"""Generic access traces: record, save/load, replay.

A trace is a list of :class:`Access` records — the portable currency
between workload generators, the cache simulators, and the DAX systems.
Traces serialise to a compact text format (one access per line) so
experiments can be archived and replayed bit-exactly.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ConfigError
from repro.units import PAGE_4K


@dataclass(frozen=True)
class Access:
    """One access: byte offset, length, direction."""

    offset: int
    nbytes: int
    is_write: bool

    def pages(self) -> range:
        """Device pages the access touches."""
        first = self.offset // PAGE_4K
        last = (self.offset + self.nbytes - 1) // PAGE_4K
        return range(first, last + 1)


class AccessTrace:
    """An ordered sequence of accesses with (de)serialisation."""

    def __init__(self, accesses: Iterable[Access] = ()) -> None:
        self.accesses: list[Access] = list(accesses)

    def append(self, offset: int, nbytes: int, is_write: bool) -> None:
        if nbytes <= 0 or offset < 0:
            raise ConfigError(
                f"bad access: offset={offset}, nbytes={nbytes}")
        self.accesses.append(Access(offset, nbytes, is_write))

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[Access]:
        return iter(self.accesses)

    @property
    def bytes_total(self) -> int:
        return sum(a.nbytes for a in self.accesses)

    @property
    def write_fraction(self) -> float:
        if not self.accesses:
            return 0.0
        return sum(a.is_write for a in self.accesses) / len(self.accesses)

    def footprint_pages(self) -> int:
        """Distinct 4 KB pages the trace touches."""
        pages: set[int] = set()
        for access in self.accesses:
            pages.update(access.pages())
        return len(pages)

    # -- serialisation ----------------------------------------------------------

    def dumps(self) -> str:
        """One access per line: ``R|W offset nbytes``."""
        out = io.StringIO()
        for access in self.accesses:
            kind = "W" if access.is_write else "R"
            out.write(f"{kind} {access.offset} {access.nbytes}\n")
        return out.getvalue()

    @classmethod
    def loads(cls, text: str) -> "AccessTrace":
        trace = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("R", "W"):
                raise ConfigError(f"bad trace line {lineno}: {line!r}")
            trace.append(int(parts[1]), int(parts[2]), parts[0] == "W")
        return trace

    # -- replay -------------------------------------------------------------------

    def replay(self, system, start_ps: int = 0) -> int:
        """Drive the trace through a DAX system; returns the end time."""
        t = max(start_ps, getattr(system, "now_floor_ps", 0))
        for access in self.accesses:
            t = system.op(access.offset, access.nbytes, access.is_write, t)
        return t
