"""FIO job-file (INI) parsing.

Real FIO experiments are described by job files; supporting the format
makes the paper's methodology reproducible verbatim.  The §VII-B2 run,
as FIO would see it::

    [global]
    ioengine=libpmem
    bs=4k
    iodepth=1

    [randread-cached]
    rw=randread
    size=32m
    numjobs=1

Supported keys: rw, bs, size, numjobs, iodepth, rwmixread, nops, seed.
Sizes accept FIO suffixes (k/m/g, binary).  ``ioengine`` is validated
(only the DAX-style engines make sense here) but has no further effect,
exactly like the paper's fixed ``libpmem`` engine.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.workloads.fio import FIOJob

_SUPPORTED_ENGINES = ("libpmem", "dev-dax", "mmap")


def parse_size(text: str) -> int:
    """FIO size syntax: plain bytes or k/m/g suffix (binary)."""
    text = text.strip().lower()
    multipliers = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    if text and text[-1] in multipliers:
        number, unit = text[:-1], multipliers[text[-1]]
    else:
        number, unit = text, 1
    try:
        return int(float(number) * unit)
    except ValueError as exc:
        raise ConfigError(f"bad size value {text!r}") from exc


def parse_jobfile(text: str) -> list[FIOJob]:
    """Parse a job file into :class:`FIOJob` specs.

    ``[global]`` options apply to every job; later sections override.
    """
    sections: list[tuple[str, dict[str, str]]] = []
    current: dict[str, str] | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            current = {}
            sections.append((name, current))
            continue
        if current is None:
            raise ConfigError(
                f"line {lineno}: option outside any [section]")
        if "=" in line:
            key, value = line.split("=", 1)
            current[key.strip()] = value.strip()
        else:
            current[line] = "1"     # bare flags (e.g. "group_reporting")

    global_opts: dict[str, str] = {}
    jobs: list[FIOJob] = []
    for name, opts in sections:
        if name == "global":
            global_opts.update(opts)
            continue
        merged = dict(global_opts)
        merged.update(opts)
        jobs.append(_job_from_options(name, merged))
    if not jobs:
        raise ConfigError("job file defines no jobs")
    return jobs


def _job_from_options(name: str, opts: dict[str, str]) -> FIOJob:
    engine = opts.get("ioengine", "libpmem")
    if engine not in _SUPPORTED_ENGINES:
        raise ConfigError(
            f"job {name!r}: ioengine {engine!r} is not a DAX engine "
            f"(supported: {_SUPPORTED_ENGINES})")
    known = {"ioengine", "rw", "bs", "size", "numjobs", "iodepth",
             "rwmixread", "nops", "seed", "group_reporting", "direct",
             "time_based", "runtime"}
    unknown = set(opts) - known
    if unknown:
        raise ConfigError(f"job {name!r}: unsupported options "
                          f"{sorted(unknown)}")
    return FIOJob(
        name=name,
        rw=opts.get("rw", "randread"),
        bs=parse_size(opts.get("bs", "4k")),
        size=parse_size(opts.get("size", "64m")),
        numjobs=int(opts.get("numjobs", "1")),
        iodepth=int(opts.get("iodepth", "1")),
        rwmixread=int(opts.get("rwmixread", "50")),
        nops=int(opts.get("nops", "1000")),
        seed=int(opts.get("seed", "1234")))


#: The paper's §VII-B2 methodology as a job file, ready to run.
PAPER_FIG8_JOBFILE = """\
[global]
ioengine=libpmem
bs=4k
iodepth=1
numjobs=1
size=32m
nops=2000

[fig8-randread]
rw=randread

[fig8-randwrite]
rw=randwrite
"""
