"""A FIO-like job engine over the simulated DAX systems.

Reproduces the methodology of §VI/§VII-B: jobs specify the access
pattern (``randread`` / ``randwrite`` / ``read`` / ``write`` /
``randrw``), block size, thread count and footprint; the engine drives
``system.op`` exactly as FIO's libpmem ioengine drives loads/stores on
a DAX mapping (no page cache, one outstanding access per thread).

Threads interleave by simulated time: at every step the thread with the
earliest cursor issues its next operation, so cross-thread contention
on the shared memory channel and on the device's CP mailbox emerges
naturally rather than being post-processed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import PAGE_4K, bandwidth_mb_s, iops
from repro.analysis.stats import LatencyAccumulator


RW_PATTERNS = ("read", "write", "randread", "randwrite", "randrw")


@dataclass(frozen=True)
class FIOJob:
    """One FIO job description (the knobs the paper sweeps)."""

    name: str = "job"
    rw: str = "randread"
    bs: int = PAGE_4K                  # block size in bytes
    size: int = 64 * 1024 * 1024       # file footprint in bytes
    numjobs: int = 1                   # thread count
    iodepth: int = 1                   # kept for fidelity; libpmem is sync
    nops: int = 1000                   # operations per thread
    rwmixread: int = 50                # % reads for randrw
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.rw not in RW_PATTERNS:
            raise ConfigError(f"unknown rw pattern {self.rw!r}")
        if self.bs <= 0 or self.bs > self.size:
            raise ConfigError("block size must be in (0, size]")
        if self.numjobs < 1 or self.nops < 1:
            raise ConfigError("numjobs and nops must be positive")

    @property
    def is_random(self) -> bool:
        return self.rw.startswith("rand")

    @property
    def total_ops(self) -> int:
        return self.numjobs * self.nops


@dataclass
class FIOResult:
    """Aggregated job outcome, in the units the paper reports."""

    job: FIOJob
    span_ps: int
    total_ops: int
    total_bytes: int
    latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)

    @property
    def iops(self) -> float:
        return iops(self.total_ops, self.span_ps)

    @property
    def kiops(self) -> float:
        return self.iops / 1e3

    @property
    def bandwidth_mb_s(self) -> float:
        return bandwidth_mb_s(self.total_bytes, self.span_ps)

    def __str__(self) -> str:
        return (f"{self.job.name}: {self.kiops:.1f} KIOPS, "
                f"{self.bandwidth_mb_s:.1f} MB/s, "
                f"lat mean {self.latency.mean_us:.2f} us "
                f"p99 {self.latency.percentile_us(99):.2f} us")


class _Thread:
    """Per-thread offset stream and time cursor."""

    def __init__(self, job: FIOJob, index: int) -> None:
        self.job = job
        self.rng = random.Random(job.seed ^ (index * 0x9E3779B97F4A7C15))
        self.cursor_ps = 0
        self.last_end_ps = 0
        self.ops_done = 0
        self._seq_offset = (job.size // job.numjobs) * index
        self._seq_offset -= self._seq_offset % job.bs

    def next_offset(self) -> int:
        job = self.job
        max_blocks = job.size // job.bs
        if job.is_random:
            return self.rng.randrange(max_blocks) * job.bs
        offset = self._seq_offset
        self._seq_offset += job.bs
        if self._seq_offset + job.bs > job.size:
            self._seq_offset = 0
        return offset

    def next_is_write(self) -> bool:
        job = self.job
        if job.rw in ("read", "randread"):
            return False
        if job.rw in ("write", "randwrite"):
            return True
        return self.rng.randrange(100) >= job.rwmixread


class FIORunner:
    """Runs FIO jobs against a DAX system."""

    def __init__(self, system) -> None:
        self.system = system

    def prefault(self, size: int, dirty: bool = False) -> int:
        """Touch every 4 KB page of the footprint (FIO's file layout /
        warmup pass); returns the simulated time consumed."""
        t = 0
        for page in range(-(-size // PAGE_4K)):
            t = self.system.resolve_page(page, t, dirty)
        return t

    def run(self, job: FIOJob, warmup: bool = True,
            start_ps: int | None = None) -> FIOResult:
        """Execute a job; with ``warmup`` the footprint is pre-faulted
        so the measurement captures steady-state (Cached) behaviour —
        exactly how FIO lays out its file before the timed phase."""
        t0 = start_ps if start_ps is not None else 0
        t0 = max(t0, getattr(self.system, "now_floor_ps", 0))
        if warmup:
            t0 = max(t0, self.prefault(job.size))
        threads = [_Thread(job, i) for i in range(job.numjobs)]
        for thread in threads:
            thread.cursor_ps = t0
        result = FIOResult(job=job, span_ps=0, total_ops=0, total_bytes=0)
        remaining = job.total_ops
        while remaining > 0:
            thread = min(threads, key=lambda th: th.cursor_ps)
            if thread.ops_done >= job.nops:
                thread.cursor_ps = 1 << 62   # retire this thread
                continue
            offset = thread.next_offset()
            is_write = thread.next_is_write()
            end = self.system.op(offset, job.bs, is_write, thread.cursor_ps)
            result.latency.record(end - thread.cursor_ps)
            thread.cursor_ps = end
            thread.last_end_ps = end
            thread.ops_done += 1
            remaining -= 1
        finish = max(th.last_end_ps for th in threads)
        result.span_ps = finish - t0
        result.total_ops = job.total_ops
        result.total_bytes = job.total_ops * job.bs
        return result
