"""AST invariant passes over ``src/repro`` (the ``repro.check.lint`` half).

Rules (suppress a line with ``# noqa`` or ``# noqa: REPRO00x``):

``REPRO001`` **determinism** — no wall-clock (``time.time()``,
    ``datetime.now()``, ...) and no unseeded randomness (module-level
    ``random.*`` calls; only explicitly seeded ``random.Random(seed)``
    instances) inside the simulation packages.  The simulator's claim to
    reproduce paper figures rests on bit-identical reruns.

``REPRO002`` **unit hygiene** — no float arithmetic assigned into
    ``*_ps``/``*_ns`` variables: true division, float literals or
    ``float()`` calls poison integer-picosecond time.  Annotating the
    target ``: float`` opts out (for deliberate rate/ratio fields).

``REPRO003`` **calibration provenance** — every constant defined in a
    ``calibration.py`` must be covered by a paper-source comment (one
    citing a figure/section/table or a measurement).  A comment block
    *with* a citation arms coverage for the fields that follow; a
    comment block without one disarms it.

``REPRO004`` **DES discipline** — process generators (those that yield
    engine events such as ``Timeout``/``Event`` or resource requests)
    must yield *only* such events: a bare ``yield``, a yielded literal
    or arithmetic expression is a latent scheduling bug.

``REPRO005`` **resource pairing** — a function that calls
    ``x.acquire()`` must also call ``x.release()`` (or manage ``x`` with
    a ``with`` block).

Scope: REPRO001/2/4/5 apply to files under the simulation packages
(``sim``, ``ddr``, ``nvmc``, ``nand``, ``kernel``); REPRO003 applies to
any file named ``calibration.py``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: Package directories whose modules must obey the simulation rules.
SCOPE_DIRS = frozenset({"sim", "ddr", "nvmc", "nand", "kernel"})

#: What counts as a paper-source citation for REPRO003.
SOURCE_MARKER = re.compile(
    r"Fig\.|§|Table|\bpaper\b|\bPoC\b|measur|JEDEC|KIOPS|MB/s|\bfit\b",
    re.IGNORECASE)

_WALLCLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time"})
_WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_EVENT_FACTORIES = frozenset({"Timeout", "Event"})
_EVENT_METHODS = frozenset({"acquire", "release", "get", "put", "wait"})

#: Calls that produce integers from float inputs; REPRO002 does not look
#: inside their arguments (the conversion function owns the rounding).
_INT_BOUNDARY_CALLS = frozenset({
    "round", "int", "ns", "us", "ms", "sec", "kb", "mb", "gb", "len"})


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _suppressed(source_lines: list[str], line: int, code: str) -> bool:
    if not 1 <= line <= len(source_lines):
        return False
    text = source_lines[line - 1]
    if "noqa" not in text:
        return False
    match = re.search(r"#\s*noqa(?::\s*([A-Z0-9, ]+))?", text)
    if match is None:
        return False
    codes = match.group(1)
    return codes is None or code in codes


class _SimRulesVisitor(ast.NodeVisitor):
    """REPRO001/2/4/5 over one module's AST."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[LintFinding] = []

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(LintFinding(
            self.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0), code, message))

    # -- REPRO001: determinism ---------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "time" and func.attr in _WALLCLOCK_TIME_ATTRS:
                    self._flag(node, "REPRO001",
                               f"wall-clock call time.{func.attr}() in a "
                               "simulation module; simulated time must come "
                               "from the engine")
                elif (base.id in ("datetime", "date")
                        and func.attr in _WALLCLOCK_DATETIME_ATTRS):
                    self._flag(node, "REPRO001",
                               f"wall-clock call {base.id}.{func.attr}() in "
                               "a simulation module")
                elif base.id == "random" and func.attr != "Random":
                    self._flag(node, "REPRO001",
                               f"unseeded randomness random.{func.attr}(); "
                               "use a seeded random.Random(seed) instance")
            elif (isinstance(base, ast.Attribute) and base.attr == "datetime"
                    and func.attr in _WALLCLOCK_DATETIME_ATTRS):
                self._flag(node, "REPRO001",
                           f"wall-clock call datetime.{func.attr}() in a "
                           "simulation module")
        self.generic_visit(node)

    # -- REPRO002: unit hygiene --------------------------------------------------

    @staticmethod
    def _target_time_name(target: ast.expr) -> str | None:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is not None and (name.endswith("_ps") or name.endswith("_ns")):
            return name
        return None

    @classmethod
    def _float_poison(cls, value: ast.expr) -> str | None:
        if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id in _INT_BOUNDARY_CALLS):
            return None   # int-producing conversion owns its arguments
        if isinstance(value, ast.Constant) and isinstance(value.value, float):
            return f"float literal {value.value}"
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Div):
            return "true division (use // for integer picoseconds)"
        if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id == "float"):
            return "float() conversion"
        for child in ast.iter_child_nodes(value):
            if isinstance(child, ast.expr):
                poison = cls._float_poison(child)
                if poison is not None:
                    return poison
        return None

    def _check_time_assignment(self, node: ast.AST, targets: list[ast.expr],
                               value: ast.expr | None) -> None:
        if value is None:
            return
        for target in targets:
            name = self._target_time_name(target)
            if name is None:
                continue
            poison = self._float_poison(value)
            if poison is not None:
                self._flag(node, "REPRO002",
                           f"{poison} assigned into time variable '{name}'; "
                           "time is integer picoseconds (annotate ': float' "
                           "if a ratio is intended)")

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_time_assignment(node, node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        annotated_float = (isinstance(node.annotation, ast.Name)
                          and node.annotation.id == "float")
        if not annotated_float:
            self._check_time_assignment(node, [node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = self._target_time_name(node.target)
        if name is not None:
            if isinstance(node.op, ast.Div):
                self._flag(node, "REPRO002",
                           f"true division into time variable '{name}'")
            else:
                self._check_time_assignment(node, [node.target], node.value)
        self.generic_visit(node)

    # -- REPRO004/5: generators and resources ------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_generator(node)
        self._check_resource_pairing(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    @staticmethod
    def _own_yields(func: ast.FunctionDef) -> Iterator[ast.Yield]:
        """Yields belonging to ``func`` itself, not nested functions."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Yield):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_event_expr(value: ast.expr) -> bool:
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name) and func.id in _EVENT_FACTORIES:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _EVENT_METHODS:
                return True
        return False

    def _check_generator(self, func: ast.FunctionDef) -> None:
        yields = list(self._own_yields(func))
        if not any(y.value is not None and self._is_event_expr(y.value)
                   for y in yields):
            return   # not a DES process generator
        for y in yields:
            if y.value is None:
                self._flag(y, "REPRO004",
                           "bare yield in process generator "
                           f"'{func.name}'; yield an engine event")
            elif isinstance(y.value, (ast.Constant, ast.BinOp)):
                self._flag(y, "REPRO004",
                           f"process generator '{func.name}' yields a "
                           "non-event expression; wrap delays in "
                           "Timeout(...)")

    def _check_resource_pairing(self, func: ast.FunctionDef) -> None:
        acquired: dict[str, ast.Call] = {}
        released: set[str] = set()
        managed: set[str] = set()
        for node in ast.walk(func):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                receiver = ast.unparse(node.func.value)
                if node.func.attr == "acquire":
                    acquired.setdefault(receiver, node)
                elif node.func.attr == "release":
                    released.add(receiver)
            elif isinstance(node, ast.With):
                for item in node.items:
                    managed.add(ast.unparse(item.context_expr))
        for receiver, call in acquired.items():
            if receiver not in released and receiver not in managed:
                self._flag(call, "REPRO005",
                           f"'{receiver}.acquire()' in '{func.name}' has no "
                           "matching release() (and no with-block)")


def _lint_calibration(path: Path, source_lines: list[str]
                      ) -> list[LintFinding]:
    """REPRO003: field coverage by paper-source comments."""
    findings: list[LintFinding] = []
    field_re = re.compile(r"^\s+(\w+)\s*:\s*[\w\[\]\. |\"']+\s*=")
    armed = False
    in_block = False
    block_has_marker = False
    for lineno, raw in enumerate(source_lines, start=1):
        stripped = raw.strip()
        if stripped.startswith("#"):
            # A contiguous comment block arms (or disarms) coverage as a
            # whole; a citation anywhere in the block covers the fields
            # that follow it.
            if not in_block:
                in_block = True
                block_has_marker = False
            block_has_marker = (block_has_marker
                                or bool(SOURCE_MARKER.search(stripped)))
            continue
        if in_block:
            armed = block_has_marker
            in_block = False
        match = field_re.match(raw)
        if match is None:
            continue
        covered = armed or ("#" in raw
                            and bool(SOURCE_MARKER.search(
                                raw.split("#", 1)[1])))
        if not covered:
            findings.append(LintFinding(
                str(path), lineno, 0, "REPRO003",
                f"calibration constant '{match.group(1)}' lacks a "
                "paper-source comment (cite the figure/section/table "
                "or measurement it is anchored to)"))
    return findings


def lint_file(path: str | Path) -> list[LintFinding]:
    """Lint one Python file; returns findings (empty when clean)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    source_lines = source.splitlines()
    findings: list[LintFinding] = []
    if any(part in SCOPE_DIRS for part in path.parts):
        tree = ast.parse(source, filename=str(path))
        visitor = _SimRulesVisitor(str(path))
        visitor.visit(tree)
        findings.extend(visitor.findings)
    if path.name == "calibration.py":
        findings.extend(_lint_calibration(path, source_lines))
    return [f for f in findings
            if not _suppressed(source_lines, f.line, f.code)]


def lint_paths(paths: Iterable[str | Path]) -> list[LintFinding]:
    """Lint files and directory trees; findings sorted by location."""
    findings: list[LintFinding] = []
    for entry in paths:
        entry = Path(entry)
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            findings.extend(lint_file(file))
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings
