"""Correctness tooling: simulation sanitizers and static lint.

Two halves, matching the two failure classes a simulator of shared-bus
hardware is exposed to:

* **Dynamic sanitizers** (:mod:`repro.check.sanitizers`) subscribe to the
  structured trace stream and validate protocol invariants *online* —
  no two masters in one command slot, device traffic only inside the
  extended-tRFC windows, explicit coherence around every CP exchange,
  CP queue/window budgets, monotonic integer-picosecond time.  A broken
  invariant raises (or records) a structured
  :class:`~repro.check.violations.SanitizerViolation` with the offending
  trace window attached.

* **Static lint** (:mod:`repro.check.lint`) runs AST passes over
  ``src/repro`` enforcing determinism and unit hygiene rules that no
  runtime check can see: no wall-clock or unseeded randomness inside
  simulation modules, no float arithmetic assigned into ``*_ps``/``*_ns``
  variables, paper-source comments on calibration constants, DES process
  generators yielding only engine events, paired resource acquire/release.

A third, whole-program half sits on top of the per-module lint:

* **Cross-module static analysis** (:mod:`repro.check.xstatic`)
  extracts a registry of every hook-site and trace-event string in the
  tree, cross-checks producers against consumers (sanitizer-expected
  events, fault-cut filters), and runs crash-safety and determinism
  dataflow rules REPRO006–REPRO012 over the crash-exposed modules.
  ``repro check --static`` is the entry point; CI runs it blocking
  against the committed ``baselines/static.json``.

Entry points::

    python -m repro check lint [paths...]
    python -m repro check --static [--format json] [--baseline FILE]
    python -m repro check run --sanitize <experiment>

and the pytest suite enables the sanitizers for every test via an
autouse fixture (opt out with ``@pytest.mark.sanitizer_exempt``).
"""

from repro.check.sanitizer import Sanitizer, SanitizerSuite, default_suite
from repro.check.sanitizers import (BusRaceSanitizer, CoherenceSanitizer,
                                    ProtocolSanitizer, TimeSanitizer)
from repro.check.violations import SanitizerViolation

__all__ = [
    "Sanitizer",
    "SanitizerSuite",
    "SanitizerViolation",
    "default_suite",
    "BusRaceSanitizer",
    "CoherenceSanitizer",
    "ProtocolSanitizer",
    "TimeSanitizer",
]
