"""Structured sanitizer violations.

A violation is an error object first and an exception second: the suite
can collect violations for a post-run report (the pytest fixture does)
or raise the first one immediately (``strict`` mode, the default for
``python -m repro check run``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.sim.trace import TraceRecord


class SanitizerViolation(ReproError):
    """A protocol invariant observed broken in the trace stream.

    Attributes:
        sanitizer: name of the sanitizer that fired (``"BusRace"``...).
        rule: short machine-readable rule id (``"window-escape"``...).
        record: the :class:`~repro.sim.trace.TraceRecord` that completed
            the violation, when one exists.
        context: recent records around the violation (the "offending
            trace window"), newest last.
        details: structured key/value payload for programmatic assertions.
    """

    def __init__(self, sanitizer: str, rule: str, message: str,
                 record: "TraceRecord | None" = None,
                 context: "tuple[TraceRecord, ...]" = (),
                 **details: Any) -> None:
        super().__init__(f"[{sanitizer}:{rule}] {message}")
        self.sanitizer = sanitizer
        self.rule = rule
        self.record = record
        self.context = context
        self.details = details

    def report(self) -> str:
        """Multi-line human-readable report with the trace window."""
        lines = [str(self)]
        if self.details:
            lines.append("  details: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.details.items())))
        if self.context:
            lines.append("  trace window (newest last):")
            lines.extend(f"    {r}" for r in self.context)
        return "\n".join(lines)
