"""``python -m repro check``: lint and sanitized experiment runs.

Subcommands:

* ``lint [paths...]`` — run the AST invariant passes (default over
  ``src/repro``, falling back to the installed ``repro`` package when
  no source tree is present).  Exits 1 when findings exist.
* ``run --sanitize <experiment> [...]`` — execute experiments with an
  enabled ambient tracer and the full sanitizer suite attached; prints
  the tracer retention summary (including dropped records) and exits
  non-zero on any violation or on a drop-compromised trace.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _default_lint_paths() -> list[Path]:
    import repro
    package_dir = Path(repro.__file__).resolve().parent
    src_tree = Path.cwd() / "src" / "repro"
    return [src_tree if src_tree.is_dir() else package_dir]


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.check.lint import lint_paths
    paths = [Path(p) for p in args.paths] or _default_lint_paths()
    for path in paths:
        if not path.exists():
            print(f"repro check lint: no such path: {path}",
                  file=sys.stderr)
            return 2
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"repro check lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("repro check lint: clean")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.check.sanitizer import default_suite
    from repro.check.violations import SanitizerViolation
    from repro.experiments.runner import ALL_EXPERIMENTS
    from repro.sim.trace import Tracer, use_tracer

    unknown = set(args.experiments) - set(ALL_EXPERIMENTS)
    if unknown:
        print(f"unknown experiment ids: {sorted(unknown)}; "
              f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    tracer = Tracer(enabled=True, capacity=args.capacity)
    suite = default_suite(strict=args.strict)
    status = 0
    with use_tracer(tracer):
        try:
            with suite.attach(tracer):
                for exp_id in args.experiments:
                    record = ALL_EXPERIMENTS[exp_id]()
                    print(record)
        except SanitizerViolation as violation:
            # Strict mode raises at the emission site; report the
            # violation with its trace window instead of a traceback.
            print(violation.report(), file=sys.stderr)
            return 1
        print(tracer.summary())
        violations = suite.violations
        if violations:
            print(f"\n{len(violations)} sanitizer violation(s):",
                  file=sys.stderr)
            print(suite.report(), file=sys.stderr)
            status = 1
        elif tracer.dropped:
            print("trace incomplete (dropped records): run cannot be "
                  "certified; raise --capacity", file=sys.stderr)
            status = 1
        else:
            print("sanitizers clean: run certified")
    return status


def build_parser(sub_or_none: "argparse._SubParsersAction | None" = None
                 ) -> argparse.ArgumentParser:
    """Build the ``check`` parser, standalone or under a parent CLI."""
    if sub_or_none is None:
        parser = argparse.ArgumentParser(prog="repro check")
        sub = parser.add_subparsers(dest="check_command", required=True)
    else:
        parser = sub_or_none.add_parser(
            "check", help="sanitizers and static lint")
        sub = parser.add_subparsers(dest="check_command", required=True)

    p_lint = sub.add_parser("lint", help="AST invariant passes")
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    p_lint.set_defaults(fn=cmd_lint)

    p_run = sub.add_parser("run", help="sanitized experiment run")
    p_run.add_argument("--sanitize", dest="experiments", action="append",
                       required=True, metavar="EXPERIMENT",
                       help="experiment id to run (repeatable)")
    p_run.add_argument("--capacity", type=int, default=2_000_000,
                       help="tracer retention bound (records)")
    p_run.add_argument("--strict", action="store_true",
                       help="raise at the first violation instead of "
                            "collecting a report")
    p_run.set_defaults(fn=cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
