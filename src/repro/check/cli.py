"""``python -m repro check``: lint, static analysis, sanitized runs.

Modes:

* ``lint [paths...]`` — run the per-module AST invariant passes
  (default over ``src/repro``, falling back to the installed ``repro``
  package when no source tree is present).  Exits 1 when findings
  exist.
* ``--static`` — run the whole-program pass
  (:mod:`repro.check.xstatic`): hook-site/trace-event registry
  extraction with producer/consumer cross-checks (REPRO011/012),
  crash-safety dataflow rules (REPRO006/007) and determinism rules
  (REPRO008/009/010).  ``--format json`` emits a machine-readable
  report; ``--baseline FILE`` suppresses previously accepted findings
  (``--write-baseline`` records the current findings into it); the
  exit status is non-zero only for non-baselined findings.
  ``--registry-out FILE`` writes the generated registry markdown
  (``docs/hook_registry.md`` in this repo).
* ``run --sanitize <experiment> [...]`` — execute experiments with an
  enabled ambient tracer and the full sanitizer suite attached; prints
  the tracer retention summary (including dropped records) and exits
  non-zero on any violation or on a drop-compromised trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _package_root() -> Path:
    import repro
    package_dir = Path(repro.__file__).resolve().parent
    src_tree = Path.cwd() / "src" / "repro"
    return src_tree if src_tree.is_dir() else package_dir


def _default_lint_paths() -> list[Path]:
    return [_package_root()]


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.check.lint import lint_paths
    paths = [Path(p) for p in args.paths] or _default_lint_paths()
    for path in paths:
        if not path.exists():
            print(f"repro check lint: no such path: {path}",
                  file=sys.stderr)
            return 2
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"repro check lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("repro check lint: clean")
    return 0


def cmd_static(args: argparse.Namespace) -> int:
    from repro.check.xstatic import (analyze_tree, load_baseline,
                                     render_baseline,
                                     render_registry_markdown,
                                     split_by_baseline)
    root = Path(args.root) if args.root else _package_root()
    if not root.is_dir():
        print(f"repro check --static: no such package tree: {root}",
              file=sys.stderr)
        return 2
    report = analyze_tree(root)
    if args.registry_out:
        Path(args.registry_out).write_text(
            render_registry_markdown(report.registry), encoding="utf-8")
        print(f"registry written to {args.registry_out}")
    if args.write_baseline:
        if not args.baseline:
            print("repro check --static: --write-baseline requires "
                  "--baseline FILE", file=sys.stderr)
            return 2
        Path(args.baseline).write_text(render_baseline(report),
                                       encoding="utf-8")
        print(f"baseline written to {args.baseline} "
              f"({len(report.findings)} finding(s) recorded)")
        return 0
    new, baselined = report.findings, []
    if args.baseline:
        try:
            fingerprints = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro check --static: bad baseline: {exc}",
                  file=sys.stderr)
            return 2
        new, baselined = split_by_baseline(report, fingerprints)
    if args.format == "json":
        payload = report.to_dict()
        suppressed = {f.fingerprint for f in baselined}
        for entry in payload["findings"]:
            entry["baselined"] = entry["fingerprint"] in suppressed
        payload["summary"] = {
            "total": len(report.findings),
            "baselined": len(baselined),
            "new": len(new),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding)
        registry = report.registry
        hook_sites = (len(registry.hook_producers)
                      + len(registry.hook_producer_prefixes))
        trace_events = (len(registry.trace_producers)
                        + len(registry.trace_producer_prefixes))
        print(f"repro check --static: {hook_sites} hook sites, "
              f"{trace_events} trace events, "
              f"{len(registry.schemas)} schemas")
        if baselined:
            print(f"{len(baselined)} baselined finding(s) suppressed")
        if new:
            print(f"repro check --static: {len(new)} new finding(s)",
                  file=sys.stderr)
        else:
            print("repro check --static: clean")
    return 1 if new else 0


def _cmd_check_default(args: argparse.Namespace) -> int:
    """The ``check`` command without a subcommand: ``--static`` or help."""
    if args.static:
        return cmd_static(args)
    print("repro check: choose a subcommand (lint, run) or pass --static",
          file=sys.stderr)
    return 2


def cmd_run(args: argparse.Namespace) -> int:
    from repro.check.sanitizer import default_suite
    from repro.check.violations import SanitizerViolation
    from repro.experiments.runner import ALL_EXPERIMENTS
    from repro.sim.trace import Tracer, use_tracer

    unknown = set(args.experiments) - set(ALL_EXPERIMENTS)
    if unknown:
        print(f"unknown experiment ids: {sorted(unknown)}; "
              f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    tracer = Tracer(enabled=True, capacity=args.capacity)
    suite = default_suite(strict=args.strict)
    status = 0
    with use_tracer(tracer):
        try:
            with suite.attach(tracer):
                for exp_id in args.experiments:
                    record = ALL_EXPERIMENTS[exp_id]()
                    print(record)
        except SanitizerViolation as violation:
            # Strict mode raises at the emission site; report the
            # violation with its trace window instead of a traceback.
            print(violation.report(), file=sys.stderr)
            return 1
        print(tracer.summary())
        violations = suite.violations
        if violations:
            print(f"\n{len(violations)} sanitizer violation(s):",
                  file=sys.stderr)
            print(suite.report(), file=sys.stderr)
            status = 1
        elif tracer.dropped:
            print("trace incomplete (dropped records): run cannot be "
                  "certified; raise --capacity", file=sys.stderr)
            status = 1
        else:
            print("sanitizers clean: run certified")
    return status


def build_parser(sub_or_none: "argparse._SubParsersAction | None" = None
                 ) -> argparse.ArgumentParser:
    """Build the ``check`` parser, standalone or under a parent CLI."""
    if sub_or_none is None:
        parser = argparse.ArgumentParser(prog="repro check")
    else:
        parser = sub_or_none.add_parser(
            "check", help="sanitizers, lint and whole-program static "
                          "analysis")
    parser.add_argument("--static", action="store_true",
                        help="run the whole-program static pass "
                             "(registry cross-checks, REPRO006-012)")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="package tree to analyze "
                             "(default: src/repro or the installed "
                             "package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="static findings output format")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="suppression baseline: findings recorded "
                             "in FILE do not fail the run")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record the current static findings into "
                             "--baseline FILE and exit 0")
    parser.add_argument("--registry-out", default=None, metavar="FILE",
                        help="write the extracted hook/trace registry "
                             "as markdown to FILE")
    parser.set_defaults(fn=_cmd_check_default)
    sub = parser.add_subparsers(dest="check_command", required=False)

    p_lint = sub.add_parser("lint", help="AST invariant passes")
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    p_lint.set_defaults(fn=cmd_lint)

    p_run = sub.add_parser("run", help="sanitized experiment run")
    p_run.add_argument("--sanitize", dest="experiments", action="append",
                       required=True, metavar="EXPERIMENT",
                       help="experiment id to run (repeatable)")
    p_run.add_argument("--capacity", type=int, default=2_000_000,
                       help="tracer retention bound (records)")
    p_run.add_argument("--strict", action="store_true",
                       help="raise at the first violation instead of "
                            "collecting a report")
    p_run.set_defaults(fn=cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
