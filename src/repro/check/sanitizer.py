"""The sanitizer framework: online observers of the trace stream.

A :class:`Sanitizer` is a stateful observer fed every
:class:`~repro.sim.trace.TraceRecord` a tracer emits (including records
the capacity bound drops from retention — subscription happens upstream
of the drop).  A :class:`SanitizerSuite` owns a set of sanitizers,
attaches them to a tracer, accumulates their violations, and decides
whether a finished run can be *certified* clean.

Per-owner sharding
    Emitters tag records with an ``owner`` token
    (:func:`repro.sim.trace.next_owner`), unique per model instance.
    Sanitizers key their state by owner, so several independently built
    systems sharing one ambient tracer (a pytest session, a sweep) do
    not cross-contaminate each other's invariants.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.check.violations import SanitizerViolation
from repro.sim.snapshot import SnapshotMixin
from repro.sim.trace import TraceRecord, Tracer


class Sanitizer:
    """Base class: observe records, report violations.

    Subclasses implement :meth:`observe` and call :meth:`violation`
    when an invariant breaks; :meth:`finalize` runs at detach time for
    end-of-run invariants ("every fill was eventually invalidated").
    """

    #: Size of the rolling context window attached to violations.
    CONTEXT_DEPTH = 8

    #: Category prefixes this sanitizer reacts to, or ``None`` for all.
    #: Purely a routing hint for :class:`SanitizerSuite`: ``observe``
    #: must stay correct for any record, but an attached suite only
    #: delivers records matching these prefixes, skipping the call for
    #: the (majority of) records a sanitizer would ignore anyway.
    CATEGORIES: tuple[str, ...] | None = None

    def __init__(self) -> None:
        self.violations: list[SanitizerViolation] = []
        self._context: deque[TraceRecord] = deque(maxlen=self.CONTEXT_DEPTH)
        self._suite: "SanitizerSuite | None" = None

    @property
    def name(self) -> str:
        name = type(self).__name__
        return name.removesuffix("Sanitizer") or name

    def feed(self, record: TraceRecord) -> None:
        """Tracer-facing entry point: buffer context, then observe."""
        self._context.append(record)
        self.observe(record)

    def observe(self, record: TraceRecord) -> None:
        raise NotImplementedError

    def finalize(self) -> None:
        """End-of-run invariants; default none."""

    def violation(self, rule: str, message: str,
                  record: TraceRecord | None = None,
                  **details) -> None:
        """Record (and in strict mode raise) a violation."""
        v = SanitizerViolation(self.name, rule, message, record=record,
                               context=tuple(self._context), **details)
        self.violations.append(v)
        if self._suite is not None and self._suite.strict:
            raise v

    @staticmethod
    def owner_of(record: TraceRecord) -> str:
        """The record's owner token ('?' for untagged emitters)."""
        return str(record.fields.get("owner", "?"))


class _SuiteDispatch:
    """The suite's single tracer subscription: one shared context append
    plus category-routed ``observe`` calls.

    Replaces per-sanitizer ``feed`` subscriptions on the tracer's hot
    path: every sanitizer used to append each record to its own context
    deque and then ignore most of them inside ``observe``.  The
    dispatcher appends once to a context deque shared by the whole
    suite (the per-sanitizer deques were always identical — every
    sanitizer saw every record) and calls ``observe`` only on the
    sanitizers whose :attr:`Sanitizer.CATEGORIES` match the record.

    A module-level class (not a closure) so an attached suite inside a
    simulation snapshot restores with its subscription intact.
    """

    def __init__(self, suite: "SanitizerSuite") -> None:
        self.suite = suite
        self.context: deque[TraceRecord] = deque(
            maxlen=Sanitizer.CONTEXT_DEPTH)
        # Exact category -> interested sanitizers, built on first sight.
        self.routes: dict[str, list[Sanitizer]] = {}

    def __call__(self, record: TraceRecord) -> None:
        self.context.append(record)
        targets = self.routes.get(record.category)
        if targets is None:
            category = record.category
            targets = [s for s in self.suite.sanitizers
                       if s.CATEGORIES is None
                       or category.startswith(s.CATEGORIES)]
            self.routes[category] = targets
        for sanitizer in targets:
            sanitizer.observe(record)


class SanitizerSuite(SnapshotMixin):
    """A set of sanitizers attached to one tracer.

    ``strict=True`` raises the first violation at its emission site
    (stack trace points into the offending model code); ``strict=False``
    collects violations for a post-run report — what the pytest fixture
    uses so a test failure shows *all* broken invariants.
    """

    def __init__(self, sanitizers: Iterable[Sanitizer],
                 strict: bool = False) -> None:
        self.sanitizers = list(sanitizers)
        self.strict = strict
        self._tracer: Tracer | None = None
        self._dispatch: _SuiteDispatch | None = None
        for sanitizer in self.sanitizers:
            sanitizer._suite = self

    # -- lifecycle ----------------------------------------------------------------

    def attach(self, tracer: Tracer) -> "SanitizerSuite":
        """Subscribe the suite's dispatcher to ``tracer``; returns self.

        One subscription for the whole suite: records are appended once
        to a shared context deque and routed to interested sanitizers
        by category (see :class:`_SuiteDispatch`).  Every sanitizer's
        ``_context`` is re-pointed at the shared deque so violation
        context is byte-identical to the per-sanitizer-feed era.
        """
        if self._tracer is not None:
            raise RuntimeError("suite is already attached")
        self._tracer = tracer
        self._dispatch = _SuiteDispatch(self)
        for sanitizer in self.sanitizers:
            sanitizer._context = self._dispatch.context
        tracer.subscribe(self._dispatch)
        return self

    def detach(self) -> None:
        """Run finalizers and unsubscribe from the tracer."""
        for sanitizer in self.sanitizers:
            sanitizer.finalize()
        if self._tracer is not None:
            if self._dispatch is not None:
                self._tracer.unsubscribe(self._dispatch)
                self._dispatch = None
            self._tracer = None

    def __enter__(self) -> "SanitizerSuite":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- results ------------------------------------------------------------------

    @property
    def violations(self) -> list[SanitizerViolation]:
        return [v for s in self.sanitizers for v in s.violations]

    def __iter__(self) -> Iterator[SanitizerViolation]:
        return iter(self.violations)

    def report(self) -> str:
        """Human-readable report of every violation (empty when clean)."""
        return "\n".join(v.report() for v in self.violations)

    def certify(self, tracer: Tracer | None = None) -> None:
        """Assert the observed run is clean, raising otherwise.

        Refuses to certify when the tracer dropped records from
        retention: observation was still complete (subscribers run
        before the drop), but the archived trace cannot substantiate
        the certificate, so the run does not count as verified.
        """
        tracer = tracer if tracer is not None else self._tracer
        violations = self.violations
        if violations:
            raise violations[0]
        if tracer is not None and tracer.dropped:
            raise SanitizerViolation(
                "Suite", "dropped-records",
                f"cannot certify: tracer dropped {tracer.dropped} records "
                f"(capacity {tracer.capacity}); rerun with a larger "
                "capacity for a verifiable trace",
                dropped=tracer.dropped, capacity=tracer.capacity)


def default_suite(strict: bool = False) -> SanitizerSuite:
    """The standard five-sanitizer suite."""
    from repro.check.sanitizers import (BusRaceSanitizer, CoherenceSanitizer,
                                        ProtocolSanitizer, ScrubSanitizer,
                                        TimeSanitizer)
    return SanitizerSuite([BusRaceSanitizer(), CoherenceSanitizer(),
                           ProtocolSanitizer(), ScrubSanitizer(),
                           TimeSanitizer()],
                          strict=strict)
