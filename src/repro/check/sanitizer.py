"""The sanitizer framework: online observers of the trace stream.

A :class:`Sanitizer` is a stateful observer fed every
:class:`~repro.sim.trace.TraceRecord` a tracer emits (including records
the capacity bound drops from retention — subscription happens upstream
of the drop).  A :class:`SanitizerSuite` owns a set of sanitizers,
attaches them to a tracer, accumulates their violations, and decides
whether a finished run can be *certified* clean.

Per-owner sharding
    Emitters tag records with an ``owner`` token
    (:func:`repro.sim.trace.next_owner`), unique per model instance.
    Sanitizers key their state by owner, so several independently built
    systems sharing one ambient tracer (a pytest session, a sweep) do
    not cross-contaminate each other's invariants.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.check.violations import SanitizerViolation
from repro.sim.trace import TraceRecord, Tracer


class Sanitizer:
    """Base class: observe records, report violations.

    Subclasses implement :meth:`observe` and call :meth:`violation`
    when an invariant breaks; :meth:`finalize` runs at detach time for
    end-of-run invariants ("every fill was eventually invalidated").
    """

    #: Size of the rolling context window attached to violations.
    CONTEXT_DEPTH = 8

    def __init__(self) -> None:
        self.violations: list[SanitizerViolation] = []
        self._context: deque[TraceRecord] = deque(maxlen=self.CONTEXT_DEPTH)
        self._suite: "SanitizerSuite | None" = None

    @property
    def name(self) -> str:
        name = type(self).__name__
        return name.removesuffix("Sanitizer") or name

    def feed(self, record: TraceRecord) -> None:
        """Tracer-facing entry point: buffer context, then observe."""
        self._context.append(record)
        self.observe(record)

    def observe(self, record: TraceRecord) -> None:
        raise NotImplementedError

    def finalize(self) -> None:
        """End-of-run invariants; default none."""

    def violation(self, rule: str, message: str,
                  record: TraceRecord | None = None,
                  **details) -> None:
        """Record (and in strict mode raise) a violation."""
        v = SanitizerViolation(self.name, rule, message, record=record,
                               context=tuple(self._context), **details)
        self.violations.append(v)
        if self._suite is not None and self._suite.strict:
            raise v

    @staticmethod
    def owner_of(record: TraceRecord) -> str:
        """The record's owner token ('?' for untagged emitters)."""
        return str(record.fields.get("owner", "?"))


class SanitizerSuite:
    """A set of sanitizers attached to one tracer.

    ``strict=True`` raises the first violation at its emission site
    (stack trace points into the offending model code); ``strict=False``
    collects violations for a post-run report — what the pytest fixture
    uses so a test failure shows *all* broken invariants.
    """

    def __init__(self, sanitizers: Iterable[Sanitizer],
                 strict: bool = False) -> None:
        self.sanitizers = list(sanitizers)
        self.strict = strict
        self._tracer: Tracer | None = None
        for sanitizer in self.sanitizers:
            sanitizer._suite = self

    # -- lifecycle ----------------------------------------------------------------

    def attach(self, tracer: Tracer) -> "SanitizerSuite":
        """Subscribe every sanitizer to ``tracer``; returns self."""
        if self._tracer is not None:
            raise RuntimeError("suite is already attached")
        self._tracer = tracer
        for sanitizer in self.sanitizers:
            tracer.subscribe(sanitizer.feed)
        return self

    def detach(self) -> None:
        """Run finalizers and unsubscribe from the tracer."""
        for sanitizer in self.sanitizers:
            sanitizer.finalize()
        if self._tracer is not None:
            for sanitizer in self.sanitizers:
                self._tracer.unsubscribe(sanitizer.feed)
            self._tracer = None

    def __enter__(self) -> "SanitizerSuite":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- results ------------------------------------------------------------------

    @property
    def violations(self) -> list[SanitizerViolation]:
        return [v for s in self.sanitizers for v in s.violations]

    def __iter__(self) -> Iterator[SanitizerViolation]:
        return iter(self.violations)

    def report(self) -> str:
        """Human-readable report of every violation (empty when clean)."""
        return "\n".join(v.report() for v in self.violations)

    def certify(self, tracer: Tracer | None = None) -> None:
        """Assert the observed run is clean, raising otherwise.

        Refuses to certify when the tracer dropped records from
        retention: observation was still complete (subscribers run
        before the drop), but the archived trace cannot substantiate
        the certificate, so the run does not count as verified.
        """
        tracer = tracer if tracer is not None else self._tracer
        violations = self.violations
        if violations:
            raise violations[0]
        if tracer is not None and tracer.dropped:
            raise SanitizerViolation(
                "Suite", "dropped-records",
                f"cannot certify: tracer dropped {tracer.dropped} records "
                f"(capacity {tracer.capacity}); rerun with a larger "
                "capacity for a verifiable trace",
                dropped=tracer.dropped, capacity=tracer.capacity)


def default_suite(strict: bool = False) -> SanitizerSuite:
    """The standard five-sanitizer suite."""
    from repro.check.sanitizers import (BusRaceSanitizer, CoherenceSanitizer,
                                        ProtocolSanitizer, ScrubSanitizer,
                                        TimeSanitizer)
    return SanitizerSuite([BusRaceSanitizer(), CoherenceSanitizer(),
                           ProtocolSanitizer(), ScrubSanitizer(),
                           TimeSanitizer()],
                          strict=strict)
