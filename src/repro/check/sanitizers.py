"""The concrete sanitizers: race, coherence, protocol, time.

Each sanitizer consumes the self-describing structured records the
models emit (``ddr.cmd`` carries its bus-occupancy intervals and — on
REF — the extended-tRFC device window; ``nvmc.dma`` carries its window
bounds and byte budget; the nvdc driver emits its §V-B coherence
bracket), so no sanitizer needs a DDR4 spec or timeline of its own:
what is checked is exactly what was observed.

All state is sharded by the ``owner`` token on each record, so several
systems sharing one ambient tracer are validated independently.
"""

from __future__ import annotations

from collections import deque

from repro.check.sanitizer import Sanitizer
from repro.sim.trace import TraceRecord


class BusRaceSanitizer(Sanitizer):
    """No two masters in overlapping bus slots; the device only drives
    inside the extended-tRFC window its REF opened (§III-B, Fig. 2).

    Rules:
        ``bus-collision``  — CA/DQ occupancy overlap between masters
            (independent re-detection, plus any ``ddr.collision`` the
            bus model itself flagged).
        ``window-escape``  — a device-side master (name ``nvmc*``)
            drove CA or DQ outside ``[REF + tRFC_device, REF + tRFC)``.

    **Drain exemption (§V-C).**  A ``power.drain`` record with
    ``active=True`` marks the battery-backed power-loss drain, which
    legitimately ignores the tRFC serialisation rule: window-escape
    checking is suspended for that owner until the matching
    ``active=False`` marker.  Collision detection stays on — even a
    drain must not overlap another master.  A device transfer outside a
    window with *no* drain declared is still a violation.
    """

    CATEGORIES = ("power.drain", "ddr.collision", "ddr.cmd")

    #: Reservations older than this per bus are pruned.
    HORIZON_PS = 10_000_000
    #: Commands that leave the bus electrically idle.
    _IDLE_KINDS = ("DES", "NOP")

    def __init__(self) -> None:
        super().__init__()
        # owner -> lane name -> recent (master, start, end) intervals.
        self._lanes: dict[str, dict[str, deque]] = {}
        # (owner, lane) -> {master: latest interval end}.  An overlap
        # with a new span needs some *other* master's end past the
        # span's start; when no recorded end qualifies, the deque scan
        # is provably empty-handed and is skipped.
        self._max_end: dict[tuple[str, str], dict[str, int]] = {}
        # owner -> (win_start, win_end) of the latest observed REF.
        self._window: dict[str, tuple[int, int]] = {}
        # owners currently inside a declared power-loss drain.
        self._draining: set[str] = set()

    def observe(self, record: TraceRecord) -> None:
        if record.category == "power.drain":
            owner = self.owner_of(record)
            if record.fields.get("active"):
                self._draining.add(owner)
            else:
                self._draining.discard(owner)
            return
        if record.category == "ddr.collision":
            self.violation(
                "bus-collision",
                "bus model flagged a collision between "
                f"{record.fields.get('first')} and "
                f"{record.fields.get('second')} at {record.time_ps} ps",
                record=record, time_ps=record.time_ps)
            return
        if record.category != "ddr.cmd":
            return
        owner = self.owner_of(record)
        master = str(record.fields.get("master", "?"))
        kind = str(record.fields.get("kind", "?"))
        spans = [("CA", record.time_ps, int(record.fields["ca_end"]))]
        if "dq_start" in record.fields:
            spans.append(("DQ", int(record.fields["dq_start"]),
                          int(record.fields["dq_end"])))
        if kind == "REF":
            self._window[owner] = (int(record.fields["win_start"]),
                                   int(record.fields["win_end"]))
        lanes = self._lanes.setdefault(
            owner, {"CA": deque(maxlen=256), "DQ": deque(maxlen=256)})
        for lane_name, start, end in spans:
            lane = lanes[lane_name]
            ends = self._max_end.setdefault((owner, lane_name), {})
            # Overlap needs another master's interval to end *after* our
            # start; ``ends`` upper-bounds every recorded interval end
            # (including pruned ones), so a miss here proves the scan
            # would find nothing.
            if any(other_end > start for other_master, other_end
                   in ends.items() if other_master != master):
                for other_master, other_start, other_end in lane:
                    if (other_master != master and other_start < end
                            and start < other_end):
                        self.violation(
                            "bus-collision",
                            f"{master} ({kind}) overlaps {other_master} on "
                            f"{lane_name} in [{start}, {end}) ps",
                            record=record, lane=lane_name, master=master,
                            other=other_master, start_ps=start, end_ps=end)
            while lane and lane[0][2] < start - self.HORIZON_PS:
                lane.popleft()
            lane.append((master, start, end))
            if end > ends.get(master, -1):
                ends[master] = end
        if master.lower().startswith("nvmc") and kind not in self._IDLE_KINDS:
            if owner in self._draining:
                return   # §V-C battery drain: tRFC rule suspended
            # Enforced only once a REF has opened a window on this bus:
            # before that there is no tRFC contract to escape (synthetic
            # bus unit tests drive without any refresh traffic).
            window = self._window.get(owner)
            if window is None:
                return
            for lane_name, start, end in spans:
                if start < window[0] or end > window[1]:
                    self.violation(
                        "window-escape",
                        f"device master {master} drove {lane_name} in "
                        f"[{start}, {end}) ps outside the open device "
                        f"window {window}",
                        record=record, lane=lane_name, master=master,
                        window=window, start_ps=start, end_ps=end)


class CoherenceSanitizer(Sanitizer):
    """The §V-B explicit-coherence bracket around every CP exchange.

    Active per owner only after an ``nvdc.attach`` with
    ``coherent=True`` (a driver with a CPU cache in front of it);
    standalone NVMC models and cache-less drivers have no coherence
    obligations and are not checked.

    Rules:
        ``dirty-evict``       — the device DMA-read a slot whose lines
            were dirtied (``nvdc.dirty``) and never flushed since.
        ``stale-fill``        — a cachefill DMA landed in a slot and no
            cacheline invalidation followed before the next CP command
            (or the end of the run): the CPU could serve stale lines.
        ``unfenced-doorbell`` — a WRITEBACK/MERGED CP command was posted
            without a preceding flush + sfence pair since the last post.
    """

    CATEGORIES = ("nvdc.", "nvmc.dma", "cp.post")

    _WRITE_OPCODES = ("WRITEBACK", "MERGED")

    def __init__(self) -> None:
        super().__init__()
        self._active: set[str] = set()
        self._dirty_unflushed: dict[str, set[int]] = {}
        self._pending_fills: dict[str, set[int]] = {}
        self._flushed: dict[str, bool] = {}
        self._fenced: dict[str, bool] = {}
        self._last_fill_record: dict[str, TraceRecord] = {}

    def observe(self, record: TraceRecord) -> None:
        owner = str(record.fields.get("owner", "?"))   # owner_of, inlined
        category = record.category
        if category == "nvdc.attach":
            if record.fields.get("coherent"):
                self._active.add(owner)
            return
        if owner not in self._active:
            return
        if category == "nvdc.dirty":
            self._dirty_unflushed.setdefault(owner, set()).add(
                int(record.fields["addr"]))
        elif category == "nvdc.flush":
            self._flushed[owner] = True
            self._fenced[owner] = False
            self._dirty_unflushed.get(owner, set()).discard(
                int(record.fields["addr"]))
        elif category == "nvdc.sfence":
            if self._flushed.get(owner):
                self._fenced[owner] = True
        elif category == "nvdc.invalidate":
            self._pending_fills.get(owner, set()).discard(
                int(record.fields["addr"]))
        elif category == "nvmc.dma":
            kind = record.fields.get("kind")
            addr = int(record.fields.get("addr", -1))
            if kind == "evict":
                if addr in self._dirty_unflushed.get(owner, set()):
                    self.violation(
                        "dirty-evict",
                        f"device DMA-read slot paddr {addr:#x} while its "
                        "lines were dirty and unflushed (missing "
                        "clflush+sfence before writeback, §V-B)",
                        record=record, addr=addr)
            elif kind == "fill":
                self._pending_fills.setdefault(owner, set()).add(addr)
                self._last_fill_record[owner] = record
        elif category == "cp.post":
            self._check_pending_fills(owner)
            if str(record.fields.get("opcode")) in self._WRITE_OPCODES:
                if not self._fenced.get(owner):
                    self.violation(
                        "unfenced-doorbell",
                        f"{record.fields.get('opcode')} posted without a "
                        "flush+sfence bracket since the previous CP "
                        "command (§V-B ordering)",
                        record=record, opcode=record.fields.get("opcode"))
            self._flushed[owner] = False
            self._fenced[owner] = False

    def _check_pending_fills(self, owner: str) -> None:
        pending = self._pending_fills.get(owner)
        if pending:
            addrs = sorted(pending)
            pending.clear()
            self.violation(
                "stale-fill",
                f"cachefill landed at paddr {addrs[0]:#x} with no cacheline "
                "invalidation before the next CP command: the CPU can "
                "serve stale lines (§V-B)",
                record=self._last_fill_record.get(owner), addrs=addrs)

    def finalize(self) -> None:
        # Sorted: ``_active`` is a set of owner strings, and violation
        # order must not depend on the hash seed.
        for owner in sorted(self._active):
            self._check_pending_fills(owner)


class ProtocolSanitizer(Sanitizer):
    """CP mailbox and window-budget discipline (§IV-C).

    Rules:
        ``queue-depth``    — more outstanding CP commands than the
            configured queue depth (one on the PoC).
        ``ack-without-post`` — a CP ack with no outstanding command.
        ``window-budget``  — more DMA bytes scheduled into one refresh
            window than the per-window budget the DMA engine reported.
        ``window-sharing`` — transfers of more distinct CP commands in
            one window than the queue depth allows (one command per
            window on the PoC).
        ``ref-open-banks`` — REF issued while banks were open (the
            PREA-before-REF rule of Fig. 2b: all banks must be
            precharged when refresh starts).
    """

    CATEGORIES = ("cp.", "nvmc.dma", "ddr.cmd")

    #: Per-owner window entries retained for budget / sharing checks.
    #: The DMA engine consumes refresh windows forward in time (a
    #: shortfall retry moves to the *next* window), so a window older
    #: than the most recent ``WINDOW_MEMORY`` can never receive another
    #: transfer — pruning it cannot reset a budget that could still be
    #: exceeded.  Bounding these tables keeps long runs (and simulation
    #: snapshots, which serialize sanitizer state) from growing with
    #: every window ever used.
    WINDOW_MEMORY = 512

    def __init__(self) -> None:
        super().__init__()
        self._outstanding: dict[str, int] = {}
        self._depth: dict[str, int] = {}
        # owner -> {window index: bytes scheduled} (insertion-ordered,
        # pruned FIFO per owner — see WINDOW_MEMORY).
        self._window_bytes: dict[str, dict[int, int]] = {}
        self._window_cmds: dict[str, dict[int, set[int]]] = {}
        self._open_banks: dict[str, set[int]] = {}

    def observe(self, record: TraceRecord) -> None:
        # ``owner_of`` inlined: this observe runs for every bus command.
        owner = str(record.fields.get("owner", "?"))
        category = record.category
        # Dispatched most-frequent-first: bus commands outnumber DMA
        # records, which outnumber CP mailbox traffic.  The branches are
        # mutually exclusive on ``category``, so order is behaviour-free.
        if category == "ddr.cmd":
            kind = str(record.fields.get("kind", "?"))
            bank = record.fields.get("bank")
            open_banks = self._open_banks.setdefault(owner, set())
            if kind == "ACT" and bank is not None:
                open_banks.add(int(bank))
            elif kind in ("PRE", "RDA", "WRA") and bank is not None:
                open_banks.discard(int(bank))
            elif kind == "PREA":
                open_banks.clear()
            elif kind == "REF" and open_banks:
                self.violation(
                    "ref-open-banks",
                    f"REF issued with banks {sorted(open_banks)} still "
                    "open (PREA must precede REF, Fig. 2b)",
                    record=record, banks=sorted(open_banks))
                open_banks.clear()
        elif category == "nvmc.dma":
            window = int(record.fields["window"])
            nbytes = int(record.fields["bytes"])
            budget = int(record.fields["budget"])
            windows = self._window_bytes.setdefault(owner, {})
            total = windows.get(window, 0) + nbytes
            windows[window] = total
            if total > budget:
                self.violation(
                    "window-budget",
                    f"{total} bytes scheduled into window {window} "
                    f"exceeds the {budget}-byte per-window budget",
                    record=record, window=window, total=total,
                    budget=budget)
            owner_cmds = self._window_cmds.setdefault(owner, {})
            cmds = owner_cmds.setdefault(window, set())
            cmds.add(int(record.fields.get("cmd", 0)))
            depth = self._depth.get(owner, 1)
            if len(cmds) > depth:
                self.violation(
                    "window-sharing",
                    f"window {window} served {len(cmds)} distinct CP "
                    "commands; the PoC serves one per window "
                    f"(queue depth {depth})",
                    record=record, window=window, commands=sorted(cmds),
                    depth=depth)
            while len(windows) > self.WINDOW_MEMORY:
                del windows[next(iter(windows))]
            while len(owner_cmds) > self.WINDOW_MEMORY:
                del owner_cmds[next(iter(owner_cmds))]
        elif category == "cp.post":
            depth = int(record.fields.get("depth", 1))
            self._depth[owner] = depth
            outstanding = self._outstanding.get(owner, 0) + 1
            self._outstanding[owner] = outstanding
            if outstanding > depth:
                self.violation(
                    "queue-depth",
                    f"{outstanding} CP commands outstanding exceeds the "
                    f"configured queue depth {depth}",
                    record=record, outstanding=outstanding, depth=depth)
        elif category == "cp.ack":
            outstanding = self._outstanding.get(owner, 0) - 1
            self._outstanding[owner] = outstanding
            if outstanding < 0:
                self._outstanding[owner] = 0
                self.violation(
                    "ack-without-post",
                    "CP ack observed with no outstanding command",
                    record=record)
        elif category == "cp.abandon":
            # The driver gave up on an exchange whose ack never arrived
            # (fault injection); the command is no longer outstanding.
            outstanding = self._outstanding.get(owner, 0)
            if outstanding > 0:
                self._outstanding[owner] = outstanding - 1


class ScrubSanitizer(Sanitizer):
    """Patrol scrub is invisible to the host (§IV-B window discipline).

    The scrubber (:class:`repro.health.scrub.PatrolScrubber`) may only
    use refresh windows the host left idle, and its shared-bus work must
    stay inside the window it claimed.  Each ``health.scrub`` record
    declares the claimed window (``window``/``win_start``/``win_end``)
    and the bus span actually used (``start_ps``/``end_ps``); host DMA
    (``nvmc.dma``) records carry their ``window`` index, so the two
    streams correlate per owner.

    Rules:
        ``scrub-window-escape`` — a scrub bus span left its declared
            window bounds.
        ``scrub-collision``    — one refresh window of one owner carried
            both patrol scrub and host DMA traffic (in either order):
            scrub ran in a window the host was using.
    """

    CATEGORIES = ("health.scrub", "nvmc.dma")

    #: Per-owner window indices retained for cross-correlation.
    WINDOW_MEMORY = 4096

    def __init__(self) -> None:
        super().__init__()
        # owner -> {window index: True} (insertion-ordered, pruned FIFO).
        self._scrub_windows: dict[str, dict[int, bool]] = {}
        self._dma_windows: dict[str, dict[int, bool]] = {}

    def observe(self, record: TraceRecord) -> None:
        if record.category == "health.scrub":
            owner = str(record.fields.get("owner", "?"))
            window = int(record.fields["window"])
            win_start = int(record.fields["win_start"])
            win_end = int(record.fields["win_end"])
            start = int(record.fields["start_ps"])
            end = int(record.fields["end_ps"])
            if start < win_start or end > win_end:
                self.violation(
                    "scrub-window-escape",
                    f"scrub bus span [{start}, {end}) ps escapes its "
                    f"window {window} [{win_start}, {win_end}) ps",
                    record=record, window=window, start_ps=start,
                    end_ps=end, win_start=win_start, win_end=win_end)
            if window in self._dma_windows.get(owner, {}):
                self.violation(
                    "scrub-collision",
                    f"scrub claimed window {window} after host DMA "
                    "already used it",
                    record=record, window=window)
            self._remember(self._scrub_windows, owner, window)
        elif record.category == "nvmc.dma":
            owner = str(record.fields.get("owner", "?"))
            window = int(record.fields["window"])
            if window in self._scrub_windows.get(owner, {}):
                self.violation(
                    "scrub-collision",
                    f"host DMA landed in window {window} the patrol "
                    "scrub already claimed",
                    record=record, window=window)
            self._remember(self._dma_windows, owner, window)

    def _remember(self, table: dict[str, dict[int, bool]], owner: str,
                  window: int) -> None:
        windows = table.setdefault(owner, {})
        windows[window] = True
        while len(windows) > self.WINDOW_MEMORY:
            del windows[next(iter(windows))]


class TimeSanitizer(Sanitizer):
    """Simulated time is integer picoseconds and moves forward.

    Rules:
        ``non-integer-time`` — a record carried a non-``int`` timestamp
            (floats silently lose picosecond precision).
        ``negative-time``    — time before the big bang.
        ``time-regression``  — within one (owner, category) stream whose
            emitter is serialised (bus traffic, refresh loop, CP acks,
            windowed DMA), a record went backwards in time.
    """

    #: Streams whose emitters guarantee non-decreasing emission times.
    MONOTONIC = ("ddr.cmd", "imc.refresh", "cp.ack", "nvmc.dma")

    #: ``MONOTONIC`` as a set — this sanitizer sees *every* record, so
    #: the membership test is one of the hottest lines in the suite.
    _MONOTONIC_SET = frozenset(MONOTONIC)

    def __init__(self) -> None:
        super().__init__()
        self._last: dict[tuple[str, str], int] = {}

    def observe(self, record: TraceRecord) -> None:
        t = record.time_ps
        if not isinstance(t, int) or isinstance(t, bool):
            self.violation(
                "non-integer-time",
                f"record {record.category} carries non-integer time "
                f"{t!r} ({type(t).__name__}); simulated time is integer "
                "picoseconds",
                record=record, time=t)
            return
        if t < 0:
            self.violation(
                "negative-time",
                f"record {record.category} at negative time {t} ps",
                record=record, time=t)
            return
        if record.category in self._MONOTONIC_SET:
            key = (self.owner_of(record), record.category)
            last = self._last.get(key)
            if last is not None and t < last:
                self.violation(
                    "time-regression",
                    f"{record.category} stream of {key[0]} went backwards: "
                    f"{t} ps after {last} ps",
                    record=record, time=t, previous=last)
            self._last[key] = t
