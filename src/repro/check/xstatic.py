"""Whole-program static analysis over ``src/repro`` (``repro check --static``).

Where :mod:`repro.check.lint` checks one module at a time, this pass
parses the *entire* tree at once and reasons about the string-named
contracts that tie the dynamic subsystems together: trace-event
categories (``tracer.emit(...)``), FaultClock hook sites
(``fault_clock.check(...)`` / ``.tick(...)``), fault-injection cut
targets (``cut_at`` / ``cut_on_visit`` site filters) and report schema
ids.  Three latent bugs in as many PRs (the CP ack ABA, the
``finally``-cleared inflight journal, GC resurrecting trimmed data)
were each found only by expensive dynamic campaigns; the rules here
make the same contract classes checkable before a single simulation
event runs.

Registry extraction (part a)
    Every producer and consumer of a hook-site or trace-event string is
    collected into a :class:`Registry`.  Producers are ``emit`` calls on
    tracer-like receivers and ``check``/``tick`` calls on clock-like
    receivers; one level of wrapper indirection is resolved (a function
    that forwards a parameter into the category/site argument counts as
    an emitter, and literal arguments at its call sites become
    producers), and f-strings with a literal head (``f"nvmc.dma.{kind}"``)
    register as prefix producers.  Consumers are the sanitizer modules'
    category comparisons (including class-level tuple constants such as
    ``TimeSanitizer.MONOTONIC`` and ``startswith`` prefixes), tracer
    ``filter("prefix")`` calls, and the injector registry's cut-site
    filters (prefix semantics, matching ``_Cut.matches_site``).

Cross-check rules
    ``REPRO011`` — a sanitizer expects a trace event no producer emits
        (typo'd category, or a rule that can never fire).
    ``REPRO012`` — a fault-injection cut targets a hook-site prefix no
        layer ever visits (the fault can never fire).

Crash-safety dataflow rules (scope: modules *crash-exposed* to a power
cut — those containing a hook-site call, plus every module importing
one, transitively; a cut raises ``PowerLossInterrupt`` through exactly
these call paths)
    ``REPRO006`` — a ``finally`` block unconditionally clears / pops /
        None-assigns journal- or map-like persistent state while no
        handler on the same ``try`` catches ``PowerLossInterrupt``: the
        exact PR 3/PR 5 bug class, where the §V-C drain reads the field
        *after* the ``finally`` already wiped the only record of the
        in-flight victim.  A rollback handler (or a broad handler) on
        the ``try`` discharges the obligation.
    ``REPRO007`` — persistent state is mutated between an on-media
        ``program*`` call issued *without* its OOB stamp and the
        later ``write_oob``/``stamp`` commit: a cut in the gap leaves
        media and metadata permanently disagreeing.  Passing the stamp
        inline (``program(..., oob=stamp)``) is the atomic idiom and is
        never flagged.

Determinism dataflow rules (scope: every package except ``check``)
    ``REPRO008`` — a ``for`` loop over an unordered collection (``set``
        literal / ``set()`` / ``frozenset()`` / a local or ``self.``
        attribute assigned one) whose body emits trace records, schedules
        engine work, yields engine events or visits hook sites: set
        iteration order is hash-seed dependent, so the run is no longer
        a pure function of its seed.  Wrap the iterable in ``sorted()``.
    ``REPRO009`` — ``id()`` used as an ordering key (``key=id``, a key
        lambda calling ``id``, or ``id(...)`` inside ``sorted`` / ``min``
        / ``max`` / ``heappush`` arguments or used as a subscript key):
        CPython ids are addresses and differ across runs.
    ``REPRO010`` — ``json.dump``/``json.dumps`` without
        ``sort_keys=True`` in any report writer: dict key order is
        insertion order, so two semantically identical reports can
        differ byte-wise and break the byte-identity contracts the
        bench/faults/soak/crash reports are diffed under.

Snapshot coverage rule (scope: *snapshot-registered* modules — those
defining a :class:`~repro.sim.snapshot.SnapshotMixin` subclass, a class
with both ``snapshot`` and ``restore`` methods, or registering a
reducer with a ``SnapshotRegistry``)
    ``REPRO013`` — mutable state that lives *outside* the object graph a
        snapshot captures: a module-level mutable binding (dict/list/set
        literal, ``itertools.count`` token mill, ...), a module global
        rebound via ``global``, or a class-level attribute (mutable, or
        a counter mutated through ``Cls.attr``).  A fork restored from a
        snapshot silently aliases such state with the golden run, so a
        replayed tail is no longer the same simulation.  Referencing the
        name inside a ``snapshot`` / ``restore`` / ``__getstate__`` /
        ``__setstate__`` / ``__reduce__`` body discharges the
        obligation; deliberately process-wide meters belong in the
        committed baseline with a justification (see
        :mod:`repro.sim.snapshot`'s module docstring for the contract).

Suppression: every rule honours ``# noqa`` / ``# noqa: REPRO00x`` on
the flagged line, same contract as :mod:`repro.check.lint`.  Findings
carry a line-number-free :attr:`StaticFinding.fingerprint` so a
committed baseline survives unrelated edits.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.lint import _suppressed
from repro.report import (require_nonneg_ints, require_object_list,
                          schema_id, validate_schema_report)

#: Baseline / JSON-output schema ids (pinned like the campaign reports).
REPORT_SCHEMA = schema_id("check.static", 1)
BASELINE_SCHEMA = schema_id("check.static-baseline", 1)

#: Attribute names whose call receivers identify the two producer kinds.
_EMIT_ATTRS = frozenset({"emit"})
_HOOK_ATTRS = frozenset({"check", "tick"})

#: Methods that clear / shrink persistent containers (REPRO006/007).
_CLEAR_METHODS = frozenset({"clear", "pop", "popitem", "discard", "remove"})
#: Methods that mutate persistent containers (REPRO007, superset).
_MUTATE_METHODS = _CLEAR_METHODS | frozenset({"update", "add", "append",
                                              "insert", "setdefault"})
#: OOB stamp / commit calls that close a split program (REPRO007).
_STAMP_METHODS = frozenset({"write_oob", "stamp", "stamp_oob", "commit_oob"})

#: Receiver / target names that look like persistent metadata state.
_PERSISTENT_RE = re.compile(
    r"journal|inflight|pending|tombstone|dirty|l2p|map|table|entries"
    r"|slot|page|meta|log", re.IGNORECASE)

#: Order-sensitive sinks a set-ordered loop must not feed (REPRO008).
_ORDER_SINKS = frozenset({"emit", "call_at", "call_at_many", "schedule",
                          "heappush", "tick", "check", "cut_at",
                          "cut_on_visit", "violation"})

#: Calls that preserve (sorted) or forward (list, ...) iteration order.
_ORDERING_CALLS = frozenset({"sorted"})
_TRANSPARENT_CALLS = frozenset({"list", "tuple", "enumerate", "reversed",
                                "iter"})

#: Constructors whose module/class-level result is shared mutable state
#: (REPRO013); ``count`` covers ``itertools.count`` token mills.
_MUTABLE_CTORS = frozenset({"dict", "list", "set", "defaultdict", "deque",
                            "Counter", "OrderedDict", "count"})

#: Function names whose bodies discharge REPRO013 coverage: state they
#: reference is part of some capture/restore path by construction.
_SNAPSHOT_FUNCS = frozenset({"snapshot", "restore", "__getstate__",
                             "__setstate__", "__reduce__"})

#: Module-level constant names that pin a report schema id.
_SCHEMA_NAME_RE = re.compile(r"SCHEMA")


@dataclass(frozen=True)
class SourceRef:
    """A producer/consumer occurrence at ``path:line`` (root-relative)."""

    path: str
    line: int

    def __str__(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass(frozen=True)
class StaticFinding:
    """One cross-module rule violation."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by ``--baseline`` files."""
        return f"{self.path}::{self.code}::{self.message}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class Registry:
    """The extracted hook-site / trace-event / schema registry.

    Exact names map to their :class:`SourceRef` lists; the ``*_prefixes``
    tables hold open-ended names (f-string emitters, ``startswith``
    consumers, cut-site filters — cut matching is prefix-based by
    construction, see ``faults.clock._Cut.matches_site``).
    """

    trace_producers: dict[str, list[SourceRef]] = field(default_factory=dict)
    trace_producer_prefixes: dict[str, list[SourceRef]] = field(
        default_factory=dict)
    trace_consumers: dict[str, list[SourceRef]] = field(default_factory=dict)
    trace_consumer_prefixes: dict[str, list[SourceRef]] = field(
        default_factory=dict)
    hook_producers: dict[str, list[SourceRef]] = field(default_factory=dict)
    hook_producer_prefixes: dict[str, list[SourceRef]] = field(
        default_factory=dict)
    hook_consumers: dict[str, list[SourceRef]] = field(default_factory=dict)
    schemas: dict[str, list[SourceRef]] = field(default_factory=dict)

    @staticmethod
    def _add(table: dict[str, list[SourceRef]], name: str,
             ref: SourceRef) -> None:
        table.setdefault(name, []).append(ref)

    # -- resolution -------------------------------------------------------------

    def trace_event_resolves(self, name: str) -> bool:
        """Does some producer emit (exactly or by prefix) ``name``?"""
        if name in self.trace_producers:
            return True
        return any(name.startswith(prefix)
                   for prefix in self.trace_producer_prefixes)

    def trace_prefix_resolves(self, prefix: str) -> bool:
        """Does some produced category fall under ``prefix``?"""
        if any(name.startswith(prefix) for name in self.trace_producers):
            return True
        return any(produced.startswith(prefix) or prefix.startswith(produced)
                   for produced in self.trace_producer_prefixes)

    def hook_site_resolves(self, site: str) -> bool:
        """Does some layer visit a hook site matching cut filter ``site``?

        Cut filters match by prefix (``site="nvmc.dma"`` matches every
        ``nvmc.dma.*`` visit), so a filter resolves when any produced
        site starts with it — or, for f-string producers, when the two
        prefixes are compatible in either direction.
        """
        if any(name.startswith(site) for name in self.hook_producers):
            return True
        return any(produced.startswith(site) or site.startswith(produced)
                   for produced in self.hook_producer_prefixes)

    def to_dict(self) -> dict:
        """JSON-ready summary (sorted, deterministic)."""
        def table(t: dict[str, list[SourceRef]]) -> dict[str, list[str]]:
            return {name: sorted(str(r) for r in refs)
                    for name, refs in sorted(t.items())}
        return {
            "trace_producers": table(self.trace_producers),
            "trace_producer_prefixes": table(self.trace_producer_prefixes),
            "trace_consumers": table(self.trace_consumers),
            "trace_consumer_prefixes": table(self.trace_consumer_prefixes),
            "hook_producers": table(self.hook_producers),
            "hook_producer_prefixes": table(self.hook_producer_prefixes),
            "hook_consumers": table(self.hook_consumers),
            "schemas": table(self.schemas),
        }


@dataclass
class StaticReport:
    """The pass output: the registry plus every finding."""

    registry: Registry
    findings: list[StaticFinding]

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "findings": [
                {"path": f.path, "line": f.line, "col": f.col,
                 "code": f.code, "message": f.message,
                 "fingerprint": f.fingerprint}
                for f in self.findings],
            "registry": self.registry.to_dict(),
        }


_REPORT_KEYS = frozenset({"schema", "findings", "registry"})
_FINDING_KEYS = frozenset(
    {"path", "line", "col", "code", "message", "fingerprint"})
_REGISTRY_KEYS = frozenset(
    {"trace_producers", "trace_producer_prefixes", "trace_consumers",
     "trace_consumer_prefixes", "hook_producers",
     "hook_producer_prefixes", "hook_consumers", "schemas"})


def _report_detail(payload: dict, problems: list[str]) -> None:
    for index, finding in enumerate(require_object_list(problems, payload,
                                                        "findings")):
        if not isinstance(finding, dict) or \
                finding.keys() - {"baselined"} != _FINDING_KEYS:
            problems.append(
                f"findings[{index}] keys must be {sorted(_FINDING_KEYS)}")
            continue
        require_nonneg_ints(problems, finding, ("line", "col"),
                            f"findings[{index}].")
    registry = payload.get("registry")
    if not isinstance(registry, dict) or \
            registry.keys() != _REGISTRY_KEYS:
        problems.append(f"registry keys must be {sorted(_REGISTRY_KEYS)}")


def validate_report(payload: object) -> list[str]:
    """Problems with a parsed ``--format json`` report (empty = valid).

    The CLI augments the raw :meth:`StaticReport.to_dict` payload with a
    ``summary`` block and per-finding ``baselined`` flags; both forms
    validate.
    """
    return validate_schema_report("check.static", 1, payload,
                                  _REPORT_KEYS, optional={"summary"},
                                  detail=_report_detail)


# -- small AST helpers ------------------------------------------------------------


def _schema_constant(node: ast.expr) -> str | None:
    """The pinned schema id a ``*SCHEMA*`` assignment resolves to.

    Either a plain string literal or the shared-constructor idiom
    ``schema_id("faults", 1)`` from :mod:`repro.report` (one level of
    wrapper resolution, like the emit/check forwarders).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if (isinstance(node, ast.Call)
            and _call_name(node.func) == "schema_id"
            and len(node.args) == 2 and not node.keywords
            and all(isinstance(a, ast.Constant) for a in node.args)):
        kind, version = (a.value for a in node.args)  # type: ignore[attr-defined]
        if isinstance(kind, str) and isinstance(version, int):
            return f"repro.{kind}/{version}"
    return None


def _call_name(func: ast.expr) -> str | None:
    """Bare name of a called function (``Name`` or ``Attribute``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_text(func: ast.expr) -> str:
    """Source text of an attribute call's receiver ('' for plain names)."""
    if isinstance(func, ast.Attribute):
        try:
            return ast.unparse(func.value)
        except Exception:  # pragma: no cover - unparse is total on exprs
            return ""
    return ""


def _literal_or_prefix(node: ast.expr) -> tuple[str | None, str | None]:
    """``(exact, prefix)`` of a string argument; at most one is set.

    A plain string constant is exact; an f-string whose first piece is a
    literal head yields that head as an open prefix.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, None
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return None, head.value
    return None, None


def _string_elements(node: ast.expr) -> list[str] | None:
    """The string elements of a tuple/list/set/frozenset literal."""
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("frozenset", "tuple", "set")
            and len(node.args) == 1):
        node = node.args[0]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            values.append(element.value)
        return values
    return None


def _is_category_expr(node: ast.expr) -> bool:
    """Is this expression the trace category being dispatched on?"""
    if isinstance(node, ast.Attribute) and node.attr == "category":
        return True
    return isinstance(node, ast.Name) and node.id == "category"


def _persistent_name(text: str) -> bool:
    return bool(_PERSISTENT_RE.search(text))


def _catches_power_loss(handler: ast.ExceptHandler) -> bool:
    """Does this except clause catch ``PowerLossInterrupt``?

    Broad handlers (bare ``except``, ``Exception``, ``BaseException``,
    ``ReproError``) count as catching: the author audited the failure
    path, and flagging them would punish deliberate rollback code.
    """
    if handler.type is None:
        return True
    names = []
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return any(name in ("PowerLossInterrupt", "Exception", "BaseException",
                        "ReproError") for name in names)


def _module_name(root: Path, path: Path) -> str:
    """Dotted module name of ``path`` under analysis root ``root``.

    ``root`` is the package directory (``.../src/repro``); its own name
    anchors the dotted path so import statements resolve against it.
    """
    rel = path.relative_to(root).with_suffix("")
    parts = (root.name,) + rel.parts
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# -- per-module extraction ---------------------------------------------------------


@dataclass
class _WrapperDef:
    """A function forwarding a parameter into an emit/hook name slot."""

    kind: str        # "emit" | "hook"
    arg_index: int   # positional index at call sites (self excluded)


class _ModuleFacts:
    """Everything pass 1 learns about one module."""

    def __init__(self, path: str, module: str, tree: ast.Module,
                 source_lines: list[str]) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.source_lines = source_lines
        self.imports: set[str] = set()
        self.has_hook_call = False
        self.wrapper_defs: dict[str, _WrapperDef] = {}
        #: (code, line, col, message) candidates gated on crash exposure.
        self.crash_candidates: list[tuple[str, int, int, str]] = []
        self.findings: list[StaticFinding] = []


class _Extractor(ast.NodeVisitor):
    """Pass 1: registry facts plus the single-module dataflow rules."""

    def __init__(self, facts: _ModuleFacts, registry: Registry,
                 is_sanitizer_module: bool, determinism_scope: bool) -> None:
        self.facts = facts
        self.registry = registry
        self.is_sanitizer_module = is_sanitizer_module
        self.determinism_scope = determinism_scope
        self._constants: dict[str, list[str]] = {}
        self._class_set_attrs: set[str] = set()
        self._local_sets: list[set[str]] = []
        self._func_params: list[list[str]] = []
        # REPRO013 state: snapshot-registration evidence, candidate
        # bindings, and the names discharged by capture/restore bodies.
        self._class_stack: list[str] = []
        self._snapshot_module = False
        self._snapshot_classes: set[str] = set()
        self._snapshot_class_attrs: dict[str, dict[str, ast.stmt]] = {}
        self._class_attr_mutations: dict[tuple[str, str], ast.AST] = {}
        self._snapshot_candidates: list[tuple[str, ast.AST, str]] = []
        self._snapshot_covered: set[str] = set()
        self._module_assigns: dict[str, ast.AST] = {}
        self._global_rebinds: dict[str, ast.AST] = {}

    # -- plumbing ---------------------------------------------------------------

    def _ref(self, node: ast.AST) -> SourceRef:
        return SourceRef(self.facts.path, getattr(node, "lineno", 0))

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.facts.findings.append(StaticFinding(
            self.facts.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0), code, message))

    # -- imports (crash-exposure graph) ------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.facts.imports.add(alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            self.facts.imports.add(node.module)
            for alias in node.names:
                self.facts.imports.add(f"{node.module}.{alias.name}")
        self.generic_visit(node)

    # -- module/class constants (sanitizer tuple dispatch, schemas) --------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
                self._note_snapshot_binding(name, node)
            elif isinstance(target, ast.Attribute):
                name = target.attr
                self._note_class_attr_write(target, node)
            if name is None:
                continue
            elements = _string_elements(node.value)
            if elements is None:
                # Derived constants: ``_FOO_SET = frozenset(FOO)`` (and
                # the set/tuple/list equivalents) inherit the elements
                # of the constant they wrap — sanitizers hoist hot
                # membership tuples into sets this way.
                value = node.value
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id in ("frozenset", "set",
                                              "tuple", "list")
                        and len(value.args) == 1 and not value.keywords):
                    elements = self._resolve_elements(value.args[0])
            if elements is not None:
                self._constants[name] = elements
            if _SCHEMA_NAME_RE.search(name):
                resolved = _schema_constant(node.value)
                if resolved is not None:
                    Registry._add(self.registry.schemas, resolved,
                                  self._ref(node))
            self._note_set_binding(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._note_snapshot_binding(node.target.id, node)
        if node.value is not None:
            self._note_set_binding(node.target, node.value)
        elif self._annotation_is_set(node.annotation):
            self._note_set_target(node.target)
        self.generic_visit(node)

    # -- snapshot coverage bookkeeping (REPRO013) --------------------------------

    @staticmethod
    def _value_is_mutable(value: ast.expr | None) -> bool:
        """Does this binding alias shared mutable state at runtime?"""
        if value is None:
            return False
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                              ast.ListComp, ast.SetComp)):
            return True
        return (isinstance(value, ast.Call)
                and _call_name(value.func) in _MUTABLE_CTORS)

    def _note_snapshot_binding(self, name: str,
                               node: ast.Assign | ast.AnnAssign) -> None:
        """Record module-level bindings as REPRO013 candidates."""
        if self._class_stack or self._func_params:
            return
        self._module_assigns.setdefault(name, node)
        if self._value_is_mutable(node.value):
            self._snapshot_candidates.append((
                name, node,
                f"module-level mutable state '{name}' in a "
                "snapshot-registered module is outside every snapshot: "
                "restored forks alias it with the golden run (capture it "
                "in snapshot/restore, or baseline it as deliberately "
                "process-wide)"))

    def _note_class_attr_write(self, target: ast.Attribute,
                               node: ast.AST) -> None:
        """``Cls.attr = ...`` inside a function mutates class state."""
        if (self._func_params and isinstance(target.value, ast.Name)
                and target.value.id in self._snapshot_classes):
            self._class_attr_mutations.setdefault(
                (target.value.id, target.attr), node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Attribute):
            self._note_class_attr_write(target, node)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self._global_rebinds.setdefault(name, node)
        self.generic_visit(node)

    # -- set bindings (REPRO008) -------------------------------------------------

    @staticmethod
    def _annotation_is_set(annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in ("set", "frozenset")
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            return (isinstance(base, ast.Name)
                    and base.id in ("set", "frozenset"))
        return False

    @staticmethod
    def _value_is_set(value: ast.expr) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset"))

    def _note_set_binding(self, target: ast.expr, value: ast.expr) -> None:
        if self._value_is_set(value):
            self._note_set_target(target)

    def _note_set_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name) and self._local_sets:
            self._local_sets[-1].add(target.id)
        elif (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            self._class_set_attrs.add(target.attr)

    def _iterable_is_unordered(self, node: ast.expr) -> bool:
        """Conservatively: does this expression iterate in hash order?"""
        while (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)):
            if node.func.id in _ORDERING_CALLS:
                return False
            if node.func.id in _TRANSPARENT_CALLS and node.args:
                node = node.args[0]
                continue
            break
        if self._value_is_set(node):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._local_sets)
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr in self._class_set_attrs
        return False

    # -- classes / functions -----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        saved = self._class_set_attrs
        self._class_set_attrs = set()
        if not self._class_stack and not self._func_params:
            self._note_snapshot_class(node)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()
        self._class_set_attrs = saved

    def _note_snapshot_class(self, node: ast.ClassDef) -> None:
        """Snapshot-registration evidence plus class-attr candidates."""
        defined = {stmt.name for stmt in node.body
                   if isinstance(stmt, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))}
        is_snapshot = ({"snapshot", "restore"} <= defined
                       or any((isinstance(base, ast.Name)
                               and base.id == "SnapshotMixin")
                              or (isinstance(base, ast.Attribute)
                                  and base.attr == "SnapshotMixin")
                              for base in node.bases))
        if not is_snapshot:
            return
        self._snapshot_module = True
        self._snapshot_classes.add(node.name)
        attrs = self._snapshot_class_attrs.setdefault(node.name, {})
        for stmt in node.body:
            name = None
            value = None
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                name, value = stmt.targets[0].id, stmt.value
            elif (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                name, value = stmt.target.id, stmt.value
            if name is None:
                continue
            attrs[name] = stmt
            if self._value_is_mutable(value):
                self._snapshot_candidates.append((
                    name, stmt,
                    f"class-level mutable state '{node.name}.{name}' on a "
                    "snapshot class: pickled instances do not carry class "
                    "attributes, so every restored fork aliases the live "
                    "object"))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        params = [a.arg for a in node.args.args]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        if node.name in _SNAPSHOT_FUNCS:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    self._snapshot_covered.add(sub.id)
                elif isinstance(sub, ast.Attribute):
                    self._snapshot_covered.add(sub.attr)
        self._func_params.append(params)
        self._local_sets.append(set())
        self._check_program_stamp_gap(node)
        self.generic_visit(node)
        self._local_sets.pop()
        self._func_params.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- calls: producers, consumers, wrappers, REPRO009/010 ---------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        attr = _call_name(func)
        receiver = _receiver_text(func)
        if attr in _EMIT_ATTRS and "tracer" in receiver:
            self._record_name_slot(node, kind="emit", arg_index=1)
        elif attr in _HOOK_ATTRS and "clock" in receiver.lower():
            self.facts.has_hook_call = True
            self._record_name_slot(
                node, kind="hook", arg_index=1 if attr == "check" else 0)
        elif attr in ("cut_at", "cut_on_visit"):
            site = None
            for keyword in node.keywords:
                if keyword.arg == "site":
                    site = keyword.value
            if site is None and len(node.args) > 1:
                site = node.args[1]
            if (isinstance(site, ast.Constant)
                    and isinstance(site.value, str)):
                Registry._add(self.registry.hook_consumers, site.value,
                              self._ref(node))
        elif attr == "filter" and "tracer" in receiver and node.args:
            exact, _ = _literal_or_prefix(node.args[0])
            if exact is not None:
                Registry._add(self.registry.trace_consumer_prefixes, exact,
                              self._ref(node))
        elif (attr == "register"
                and ("registry" in receiver.lower()
                     or "snapshot" in receiver.lower())):
            # SnapshotRegistry reducer registration counts as snapshot
            # support even without a SnapshotMixin subclass.
            self._snapshot_module = True
        elif (attr == "startswith" and isinstance(func, ast.Attribute)
                and _is_category_expr(func.value)
                and self.is_sanitizer_module and node.args):
            for prefix in (_string_elements(node.args[0])
                           or ([node.args[0].value]
                               if isinstance(node.args[0], ast.Constant)
                               and isinstance(node.args[0].value, str)
                               else [])):
                Registry._add(self.registry.trace_consumer_prefixes, prefix,
                              self._ref(node))
        self._check_ordering_key(node)
        self._check_json_dump(node)
        self.generic_visit(node)

    def _record_name_slot(self, node: ast.Call, kind: str,
                          arg_index: int) -> None:
        """Producer extraction for one emit/hook call."""
        if len(node.args) <= arg_index:
            return
        arg = node.args[arg_index]
        exact, prefix = _literal_or_prefix(arg)
        tables = ((self.registry.trace_producers,
                   self.registry.trace_producer_prefixes) if kind == "emit"
                  else (self.registry.hook_producers,
                        self.registry.hook_producer_prefixes))
        if exact is not None:
            Registry._add(tables[0], exact, self._ref(node))
        elif prefix is not None:
            Registry._add(tables[1], prefix, self._ref(node))
        elif isinstance(arg, ast.Name) and self._func_params:
            params = self._func_params[-1]
            if arg.id in params:
                # One level of indirection: the enclosing function is a
                # forwarding wrapper; its call sites are the producers.
                self._register_wrapper(arg.id, kind)

    def _register_wrapper(self, param: str, kind: str) -> None:
        params = self._func_params[-1]
        func_name = self._enclosing_function_name()
        if func_name is not None:
            self.facts.wrapper_defs[func_name] = _WrapperDef(
                kind=kind, arg_index=params.index(param))

    def _enclosing_function_name(self) -> str | None:
        # The visitor stack depth tells us we are inside a function; the
        # name is recovered from the parent chain maintained implicitly
        # by visit order (the innermost FunctionDef being processed).
        return self._current_function

    _current_function: str | None = None

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            saved = self._current_function
            self._current_function = node.name
            super().generic_visit(node)
            self._current_function = saved
        else:
            super().generic_visit(node)

    # -- sanitizer expectations (REPRO011 source data) ---------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.is_sanitizer_module:
            sides = [node.left] + list(node.comparators)
            if any(_is_category_expr(side) for side in sides):
                for side, op in zip(node.comparators, node.ops):
                    if isinstance(op, (ast.Eq, ast.NotEq)):
                        if (isinstance(side, ast.Constant)
                                and isinstance(side.value, str)):
                            Registry._add(self.registry.trace_consumers,
                                          side.value, self._ref(node))
                    elif isinstance(op, (ast.In, ast.NotIn)):
                        for name in self._resolve_elements(side) or []:
                            Registry._add(self.registry.trace_consumers,
                                          name, self._ref(node))
        self.generic_visit(node)

    def _resolve_elements(self, node: ast.expr) -> list[str] | None:
        elements = _string_elements(node)
        if elements is not None:
            return elements
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            return self._constants.get(name)
        return None

    # -- REPRO006: finally-clears on crash-exposed paths -------------------------

    def visit_Try(self, node: ast.Try) -> None:
        handled = any(_catches_power_loss(h) for h in node.handlers)
        if not handled:
            for stmt in node.finalbody:
                cleared = self._persistent_clear_in(stmt)
                if cleared is not None:
                    target, where = cleared
                    self.facts.crash_candidates.append((
                        "REPRO006", where.lineno, where.col_offset,
                        f"finally-block unconditionally clears persistent "
                        f"state '{target}' with no PowerLossInterrupt "
                        "handler on the try: a power cut loses the only "
                        "record of in-flight work (add a rollback except "
                        "clause, or move the clear into the success path)"))
        self.generic_visit(node)

    @staticmethod
    def _persistent_clear_in(stmt: ast.stmt
                             ) -> tuple[str, ast.AST] | None:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CLEAR_METHODS):
                receiver = _receiver_text(node.func)
                if _persistent_name(receiver):
                    return receiver, node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and _persistent_name(target.attr)
                            and isinstance(node.value, ast.Constant)
                            and node.value.value is None):
                        return target.attr, node
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    try:
                        text = ast.unparse(target)
                    except Exception:  # pragma: no cover
                        continue
                    if _persistent_name(text):
                        return text, node
        return None

    # -- REPRO007: mutation between program and its OOB stamp --------------------

    def _check_program_stamp_gap(self, func: ast.FunctionDef) -> None:
        events: list[tuple[str, ast.AST, str]] = []

        def walk_stmts(stmts: list[ast.stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                for node in ast.walk(stmt):
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)):
                        attr = node.func.attr
                        if attr.startswith("program"):
                            has_oob = any(k.arg == "oob"
                                          for k in node.keywords)
                            events.append(
                                ("program-atomic" if has_oob
                                 else "program-open", node, attr))
                        elif attr in _STAMP_METHODS:
                            events.append(("stamp", node, attr))
                        elif (attr in _MUTATE_METHODS
                                and _persistent_name(
                                    _receiver_text(node.func))):
                            events.append(
                                ("mutation", node,
                                 _receiver_text(node.func)))
                    elif isinstance(node, ast.Assign):
                        for target in node.targets:
                            try:
                                text = ast.unparse(target)
                            except Exception:  # pragma: no cover
                                continue
                            if (isinstance(target,
                                           (ast.Attribute, ast.Subscript))
                                    and _persistent_name(text)):
                                events.append(("mutation", node, text))

        walk_stmts(func.body)
        open_program: ast.AST | None = None
        gap_mutation: tuple[ast.AST, str] | None = None
        for kind, node, detail in events:
            if kind == "program-open":
                open_program = node
                gap_mutation = None
            elif kind == "program-atomic":
                open_program = None
                gap_mutation = None
            elif kind == "mutation" and open_program is not None:
                if gap_mutation is None:
                    gap_mutation = (node, detail)
            elif kind == "stamp" and open_program is not None:
                if gap_mutation is not None:
                    mutation_node, target = gap_mutation
                    self.facts.crash_candidates.append((
                        "REPRO007", mutation_node.lineno,
                        mutation_node.col_offset,
                        f"persistent state '{target}' mutated between the "
                        f"on-media program (line {open_program.lineno}) and "
                        f"its OOB {detail} commit: a power cut in the gap "
                        "leaves media and metadata disagreeing (pass the "
                        "stamp inline via program(..., oob=...) or commit "
                        "before mutating)"))
                open_program = None
                gap_mutation = None

    # -- REPRO008: hash-ordered loops feeding order-sensitive sinks --------------

    def visit_For(self, node: ast.For) -> None:
        if (self.determinism_scope
                and self._iterable_is_unordered(node.iter)):
            sink = self._order_sink_in(node.body)
            if sink is not None:
                self._flag(
                    node, "REPRO008",
                    f"iteration over an unordered set feeds "
                    f"order-sensitive sink '{sink}': set order is "
                    "hash-seed dependent, so trace/schedule order is not "
                    "a pure function of the seed (iterate sorted(...))")
        self.generic_visit(node)

    @staticmethod
    def _order_sink_in(body: list[ast.stmt]) -> str | None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
                if isinstance(node, ast.Yield):
                    return "yield"
                if isinstance(node, ast.Call):
                    name = _call_name(node.func)
                    if name in _ORDER_SINKS:
                        return name
        return None

    # -- REPRO009: id() as an ordering key ---------------------------------------

    def _check_ordering_key(self, node: ast.Call) -> None:
        if not self.determinism_scope:
            return
        name = _call_name(node.func)
        if name in ("sorted", "min", "max", "heappush") or name == "sort":
            for keyword in node.keywords:
                if keyword.arg == "key" and self._key_uses_id(keyword.value):
                    self._flag(
                        node, "REPRO009",
                        "id() used as an ordering key: CPython ids are "
                        "memory addresses and differ across runs (key on "
                        "a stable field instead)")
                    return
            for arg in node.args:
                if self._expr_uses_id(arg):
                    self._flag(
                        node, "REPRO009",
                        f"id() value flows into {name}(): ordering by "
                        "object address is not reproducible across runs")
                    return

    @staticmethod
    def _key_uses_id(value: ast.expr) -> bool:
        if isinstance(value, ast.Name) and value.id == "id":
            return True
        if isinstance(value, ast.Lambda):
            return any(isinstance(n, ast.Call)
                       and isinstance(n.func, ast.Name)
                       and n.func.id == "id"
                       for n in ast.walk(value.body))
        return False

    @staticmethod
    def _expr_uses_id(value: ast.expr) -> bool:
        return any(isinstance(n, ast.Call)
                   and isinstance(n.func, ast.Name) and n.func.id == "id"
                   for n in ast.walk(value))

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (self.determinism_scope and isinstance(node.ctx, ast.Store)
                and self._expr_uses_id(node.slice)):
            self._flag(node, "REPRO009",
                       "id() used as a mapping key: address-keyed state "
                       "iterates in a different order every run")
        self.generic_visit(node)

    # -- REPRO013: state outside the snapshot graph ------------------------------

    def finalize(self) -> None:
        """Emit the snapshot-coverage findings once the module is read.

        Runs after the whole tree is visited so class-attribute
        mutations (``Engine.total_events_executed += 1``) and
        ``global`` rebinds seen anywhere in the module can anchor their
        finding at the binding's definition site.
        """
        for (cls, attr), _node in sorted(self._class_attr_mutations.items()):
            site = self._snapshot_class_attrs.get(cls, {}).get(attr)
            if site is not None:
                self._snapshot_candidates.append((
                    attr, site,
                    f"class-level counter '{cls}.{attr}' is mutated in "
                    "place but captured by no snapshot: restored forks "
                    "keep writing the golden run's meter"))
        for name, node in sorted(self._global_rebinds.items()):
            self._snapshot_candidates.append((
                name, self._module_assigns.get(name, node),
                f"module state '{name}' is rebound via 'global' in a "
                "snapshot-registered module but captured by no "
                "snapshot/restore: forks and the golden run race on one "
                "binding"))
        if not self._snapshot_module:
            return
        seen: set[tuple[str, int]] = set()
        for name, node, message in self._snapshot_candidates:
            if name in self._snapshot_covered:
                continue
            key = (name, getattr(node, "lineno", 0))
            if key in seen:
                continue
            seen.add(key)
            self._flag(node, "REPRO013", message)

    # -- REPRO010: unpinned report serialisation ---------------------------------

    def _check_json_dump(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in ("dump", "dumps")
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"):
            return
        for keyword in node.keywords:
            if (keyword.arg == "sort_keys"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value):
                return
        self._flag(node, "REPRO010",
                   f"json.{func.attr}() without sort_keys=True: report "
                   "dict key order is insertion order, so byte-identity "
                   "contracts silently break when a field is reordered")


# -- pass 2: whole-program resolution ----------------------------------------------


def _resolve_wrapper_calls(modules: list[_ModuleFacts],
                           registry: Registry) -> None:
    """Literal arguments at wrapper call sites become producers."""
    wrappers: dict[str, _WrapperDef] = {}
    for facts in modules:
        wrappers.update(facts.wrapper_defs)
    if not wrappers:
        return
    for facts in modules:
        for node in ast.walk(facts.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            wrapper = wrappers.get(name or "")
            if wrapper is None or len(node.args) <= wrapper.arg_index:
                continue
            exact, prefix = _literal_or_prefix(node.args[wrapper.arg_index])
            ref = SourceRef(facts.path, node.lineno)
            tables = ((registry.trace_producers,
                       registry.trace_producer_prefixes)
                      if wrapper.kind == "emit"
                      else (registry.hook_producers,
                            registry.hook_producer_prefixes))
            if exact is not None:
                Registry._add(tables[0], exact, ref)
            elif prefix is not None:
                Registry._add(tables[1], prefix, ref)
            if wrapper.kind == "hook":
                facts.has_hook_call = True


def _crash_exposed_modules(modules: list[_ModuleFacts]) -> set[str]:
    """Hook-call modules plus their reverse import closure.

    A cut fires inside a hook-site call and unwinds as
    ``PowerLossInterrupt`` through every caller, so exposure propagates
    along *reverse* import edges (an importer calls into the imported
    module and receives its exceptions).
    """
    exposed = {facts.module for facts in modules if facts.has_hook_call}
    by_name = {facts.module: facts for facts in modules}
    changed = True
    while changed:
        changed = False
        for facts in modules:
            if facts.module in exposed:
                continue
            for imported in facts.imports:
                target = imported
                while target:
                    if target in exposed and target in by_name:
                        exposed.add(facts.module)
                        changed = True
                        break
                    target = target.rpartition(".")[0]
                if facts.module in exposed:
                    break
    return exposed


def _cross_check(registry: Registry) -> list[StaticFinding]:
    """REPRO011/REPRO012: every consumer must resolve to a producer."""
    findings: list[StaticFinding] = []
    for name, refs in sorted(registry.trace_consumers.items()):
        if not registry.trace_event_resolves(name):
            for ref in refs:
                findings.append(StaticFinding(
                    ref.path, ref.line, 0, "REPRO011",
                    f"sanitizer expects trace event '{name}' but no "
                    "producer emits it (typo'd category, or a rule that "
                    "can never fire)"))
    for prefix, refs in sorted(registry.trace_consumer_prefixes.items()):
        if not registry.trace_prefix_resolves(prefix):
            for ref in refs:
                findings.append(StaticFinding(
                    ref.path, ref.line, 0, "REPRO011",
                    f"trace filter prefix '{prefix}' matches no produced "
                    "category"))
    for site, refs in sorted(registry.hook_consumers.items()):
        if not registry.hook_site_resolves(site):
            for ref in refs:
                findings.append(StaticFinding(
                    ref.path, ref.line, 0, "REPRO012",
                    f"fault-injection cut targets hook site '{site}' but "
                    "no layer visits a matching site: the fault can "
                    "never fire"))
    return findings


# -- entry points ------------------------------------------------------------------


def analyze_tree(root: str | Path) -> StaticReport:
    """Run the whole-program pass over the package tree at ``root``.

    ``root`` is the ``repro`` package directory (``src/repro`` in a
    checkout).  Paths in the returned registry and findings are
    root-relative POSIX, so baselines and the generated registry doc are
    stable across checkouts.
    """
    root = Path(root).resolve()
    registry = Registry()
    modules: list[_ModuleFacts] = []
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        rel = path.relative_to(root).as_posix()
        facts = _ModuleFacts(rel, _module_name(root, path),
                             ast.parse(source, filename=str(path)),
                             source.splitlines())
        is_sanitizer = (path.parent.name == "check"
                        and path.name.startswith("sanitizer"))
        in_determinism_scope = "check" not in path.relative_to(root).parts
        extractor = _Extractor(facts, registry, is_sanitizer,
                               in_determinism_scope)
        extractor.visit(facts.tree)
        extractor.finalize()
        modules.append(facts)

    _resolve_wrapper_calls(modules, registry)
    exposed = _crash_exposed_modules(modules)

    findings: list[StaticFinding] = []
    lines_by_path: dict[str, list[str]] = {}
    for facts in modules:
        lines_by_path[facts.path] = facts.source_lines
        findings.extend(facts.findings)
        if facts.module in exposed:
            for code, line, col, message in facts.crash_candidates:
                findings.append(StaticFinding(facts.path, line, col,
                                              code, message))
    findings.extend(_cross_check(registry))
    findings = [f for f in findings
                if not _suppressed(lines_by_path.get(f.path, []),
                                   f.line, f.code)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return StaticReport(registry=registry, findings=findings)


# -- baseline ----------------------------------------------------------------------


def render_baseline(report: StaticReport) -> str:
    """Serialise the findings as a committed suppression baseline."""
    payload = {
        "schema": BASELINE_SCHEMA,
        "fingerprints": sorted(f.fingerprint for f in report.findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints of a committed baseline (validating its schema)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline schema must be {BASELINE_SCHEMA!r}: "
            f"{payload.get('schema')!r}")
    fingerprints = payload.get("fingerprints")
    if (not isinstance(fingerprints, list)
            or not all(isinstance(f, str) for f in fingerprints)):
        raise ValueError("baseline fingerprints must be a list of strings")
    return set(fingerprints)


def split_by_baseline(report: StaticReport, fingerprints: set[str]
                      ) -> tuple[list[StaticFinding], list[StaticFinding]]:
    """``(new, baselined)`` findings under a baseline's suppressions."""
    new = [f for f in report.findings if f.fingerprint not in fingerprints]
    old = [f for f in report.findings if f.fingerprint in fingerprints]
    return new, old


# -- registry markdown -------------------------------------------------------------


def render_registry_markdown(registry: Registry) -> str:
    """The generated ``docs/hook_registry.md`` (deterministic)."""

    def refs(entries: list[SourceRef]) -> str:
        return ", ".join(f"`{r}`" for r in sorted(
            entries, key=lambda r: (r.path, r.line)))

    lines = [
        "# Hook-site and trace-event registry",
        "",
        "Generated by `repro check --static --registry-out "
        "docs/hook_registry.md` — do not edit by hand.  The static pass "
        "cross-checks every consumer below against the producers; a "
        "consumer with no producer is a `REPRO011`/`REPRO012` finding.",
        "",
        "## FaultClock hook sites",
        "",
        "Producers are `fault_clock.check()/tick()` call sites (a "
        "trailing `*` marks an f-string site family); consumers are the "
        "injector registry's cut filters, which match by prefix.",
        "",
        "| Site | Visited at | Cut filters targeting it |",
        "|------|-----------|--------------------------|",
    ]
    sites: dict[str, tuple[list[SourceRef], bool]] = {}
    for name, entries in registry.hook_producers.items():
        sites[name] = (entries, False)
    for name, entries in registry.hook_producer_prefixes.items():
        sites[f"{name}*"] = (entries, True)
    for display in sorted(sites):
        entries, _ = sites[display]
        bare = display.rstrip("*")
        consumers = [
            f"`{site}` ({refs(crefs)})"
            for site, crefs in sorted(registry.hook_consumers.items())
            if bare.startswith(site) or site.startswith(bare)]
        lines.append(f"| `{display}` | {refs(entries)} | "
                     f"{'; '.join(consumers) if consumers else '—'} |")
    lines += [
        "",
        "## Trace events",
        "",
        "Producers are `tracer.emit()` call sites (wrapper-forwarded "
        "literals resolved); consumers are the sanitizers' expected "
        "categories and trace filter prefixes.",
        "",
        "| Category | Emitted at | Expected by |",
        "|----------|-----------|-------------|",
    ]
    categories: dict[str, tuple[list[SourceRef], bool]] = {}
    for name, entries in registry.trace_producers.items():
        categories[name] = (entries, False)
    for name, entries in registry.trace_producer_prefixes.items():
        categories[f"{name}*"] = (entries, True)
    for display in sorted(categories):
        entries, is_prefix = categories[display]
        bare = display.rstrip("*")
        consumers = []
        for name, crefs in sorted(registry.trace_consumers.items()):
            if name == bare or (is_prefix and name.startswith(bare)):
                consumers.append(f"`{name}` ({refs(crefs)})")
        for prefix, crefs in sorted(
                registry.trace_consumer_prefixes.items()):
            if bare.startswith(prefix) or prefix.startswith(bare):
                consumers.append(f"`{prefix}*` ({refs(crefs)})")
        lines.append(f"| `{display}` | {refs(entries)} | "
                     f"{'; '.join(consumers) if consumers else '—'} |")
    lines += [
        "",
        "## Report schemas",
        "",
        "| Schema id | Pinned at |",
        "|-----------|-----------|",
    ]
    for schema, entries in sorted(registry.schemas.items()):
        lines.append(f"| `{schema}` | {refs(entries)} |")
    lines.append("")
    return "\n".join(lines)
