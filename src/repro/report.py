"""Shared validation core for the schema-pinned JSON reports.

Every campaign-style subsystem writes one artifact CI archives and the
determinism gates diff byte-for-byte — ``FAULTS_*.json``
(``repro.faults/1``), ``SOAK_*.json`` (``repro.soak/1``),
``RECOVERY_*.json`` (``repro.recovery/1``), the static-analysis report
(``repro.check.static/1``), ``FLEET_*.json`` (``repro.fleet/1``) and
``CHAOS_*.json`` (``repro.fleet.chaos/1``).
They all share the same outer contract:

* the payload is a JSON object whose ``schema`` field pins the shape,
* the top-level key set is closed (missing *and* unknown keys are
  schema problems, so shape drift cannot land silently),
* counters are non-negative integers.

:func:`validate_schema_report` implements that skeleton once; each
subsystem keeps a thin ``validate_report`` wrapper that passes its key
set plus a ``detail`` callback for the subsystem-specific interior
(cell shapes, ladder edges, window partitions, ...).  The helpers below
are the vocabulary those callbacks are written in.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

Problems = list[str]


def schema_id(kind: str, version: int) -> str:
    """The pinned schema string, e.g. ``repro.fleet/1``."""
    return f"repro.{kind}/{version}"


def validate_schema_report(
        kind: str, version: int, payload: Any,
        keys: frozenset[str] | set[str],
        optional: frozenset[str] | set[str] = frozenset(),
        detail: Callable[[dict, Problems], None] | None = None) -> Problems:
    """Problems with a parsed report; an empty list means valid.

    Checks the shared skeleton — object-ness, the pinned ``schema``
    string, the closed top-level key set (``optional`` keys may be
    absent but nothing outside ``keys | optional`` may appear) — then
    hands the payload to ``detail`` for subsystem-specific checks.
    """
    problems: Problems = []
    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    expected = schema_id(kind, version)
    if payload.get("schema") != expected:
        problems.append(
            f"schema must be {expected!r}: {payload.get('schema')!r}")
    missing = set(keys) - payload.keys()
    if missing:
        problems.append(f"missing report keys: {sorted(missing)}")
    extra = payload.keys() - set(keys) - set(optional)
    if extra:
        problems.append(f"unknown report keys: {sorted(extra)}")
    if detail is not None:
        detail(payload, problems)
    return problems


def require_exact_keys(problems: Problems, obj: Any,
                       keys: frozenset[str] | set[str],
                       where: str) -> bool:
    """``obj`` must be a dict with exactly ``keys``; False on failure."""
    if not isinstance(obj, dict) or obj.keys() != set(keys):
        problems.append(f"{where} keys must be {sorted(keys)}")
        return False
    return True


def require_nonneg_ints(problems: Problems, obj: dict,
                        keys: Iterable[str], where: str) -> None:
    """Each ``obj[key]`` must be a non-negative int (bools excluded)."""
    for key in keys:
        value = obj.get(key)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            problems.append(f"{where}{key} must be a non-negative int")


def require_object_list(problems: Problems, payload: dict, key: str,
                        non_empty: bool = False) -> list:
    """``payload[key]`` must be a list (of anything); returns it or []."""
    value = payload.get(key)
    if not isinstance(value, list) or (non_empty and not value):
        kind = "non-empty list" if non_empty else "list"
        problems.append(f"{key} must be a {kind}")
        return []
    return value


def require_bool(problems: Problems, payload: dict, key: str) -> None:
    """``payload[key]`` must be a bool."""
    if not isinstance(payload.get(key), bool):
        problems.append(f"{key} must be a bool")
