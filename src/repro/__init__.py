"""NVDIMM-C reproduction: a timing/protocol simulator for the HPCA 2020
paper "NVDIMM-C: A Byte-Addressable Non-Volatile Memory Module for
Compatibility with Standard DDR Memory Interfaces".

The public API re-exports the pieces a downstream user composes:

>>> from repro import NVDIMMCSystem, PmemSystem, FIOJob, FIORunner
>>> from repro.units import kb, mb
>>> system = NVDIMMCSystem(cache_bytes=mb(64), device_bytes=mb(128))
>>> result = FIORunner(system).run(FIOJob(bs=kb(4), size=mb(32)))
>>> result.bandwidth_mb_s  # doctest: +SKIP
1834.8

Subpackages (see DESIGN.md for the full inventory):

* :mod:`repro.sim` -- discrete-event kernel
* :mod:`repro.ddr` -- DDR4 substrate (bus, devices, iMC, refresh)
* :mod:`repro.nand` -- Z-NAND substrate (dies, ECC, FTL, controller)
* :mod:`repro.nvmc` -- the device-side controller (the paper's FPGA)
* :mod:`repro.cpu` -- host CPU cache/MMU/core models
* :mod:`repro.kernel` -- memmap, DAX, drivers, eviction policies
* :mod:`repro.device` -- composed systems and device variants
* :mod:`repro.perf` -- calibrated host cost model
* :mod:`repro.workloads` -- FIO, STREAM, TPC-H, mixed-load generators
* :mod:`repro.experiments` -- one module per paper table/figure
"""

from repro.device.hypothetical import HypotheticalSystem
from repro.device.nvdimmc import DaxSystem, NVDIMMCSystem, PmemSystem
from repro.workloads.fio import FIOJob, FIOResult, FIORunner

__version__ = "1.0.0"

__all__ = [
    "DaxSystem",
    "NVDIMMCSystem",
    "PmemSystem",
    "HypotheticalSystem",
    "FIOJob",
    "FIOResult",
    "FIORunner",
    "__version__",
]
