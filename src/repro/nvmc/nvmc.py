"""Transaction-level NVMC: window-scheduled cachefill/writeback timing.

This model advances an operation through the §IV-C control flow on the
:class:`~repro.ddr.imc.RefreshTimeline`:

1. **Poll** — the device learns of a posted CP command in the first
   refresh window at or after the post (it "always polls the CP area
   every tRFC time").
2. **Media + DMA** — cachefill reads the NAND page then DMAs it into
   the DRAM slot in a later window; writeback DMAs the victim out of
   DRAM in a window and then programs NAND (the program continues in the
   background once the data is captured in the battery-backed buffer).
3. **Ack** — completion status is written into the CP area in a further
   window, where the driver's polling picks it up.

Between steps the firmware-lag model inserts the software processing
delay that §VII-C blames for the PoC running at 8.9 tREFI windows per
writeback+cachefill pair instead of the 6-window theoretical minimum.

Every byte of payload actually moves: cachefill deposits real NAND page
contents into the DRAM cache device, so the integrity experiments catch
any bookkeeping bug.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Protocol

from repro.ddr.device import DRAMDevice
from repro.ddr.imc import RefreshTimeline, RefreshWindow
from repro.errors import (CPProtocolError, DegradedModeError,
                          FaultInjectionError, MediaError)
from repro.nand.controller import NANDController
from repro.nvmc.cp import CPAck, CPArea, CPCommand, Opcode, Phase
from repro.nvmc.dma import DMAEngine
from repro.nvmc.fsm import FirmwareModel, FSMTracker, NVMCState
from repro.sim.snapshot import SnapshotMixin
from repro.sim.trace import Tracer, default_tracer, next_owner
from repro.units import CACHELINE, PAGE_4K


@dataclass(frozen=True)
class OperationResult:
    """Timing summary of one completed CP command."""

    opcode: Opcode
    submit_ps: int
    completion_ps: int
    windows_used: int
    nand_busy_ps: int
    #: Ack status published for this command (:class:`CPAck` constants),
    #: or :data:`NVMCModel.NO_ACK` when the device never saw a valid
    #: command word and therefore acknowledged nothing.
    status: int = CPAck.OK

    @property
    def latency_ps(self) -> int:
        return self.completion_ps - self.submit_ps


class InjectionClock(Protocol):
    """Duck type of :class:`repro.faults.clock.FaultClock` (layering:
    the device model must not import the faults package)."""

    def check(self, now_ps: int, site: str) -> None: ...


class CPFaultPort:
    """Deterministic device-side fault schedule for the CP exchange.

    Injectors arm the port before a workload runs; the NVMC consumes the
    schedules in submission order, so a given seed always corrupts the
    same commands.  Three independent queues:

    * **command faults** — the device's view of the posted 64-bit word is
      mangled in flight: ``"phase"`` makes the command look stale (the
      device ignores it, the driver times out), ``"opcode"`` decodes to
      garbage (the device acks ``DECODE_ERROR`` without touching media);
    * **ack drops** — the operation completes but the acknowledgement
      write is lost, so the driver times out and re-issues;
    * **DMA shortfalls** — the next page-sized window transfer moves
      that many bytes fewer than requested; the remainder is retried in
      a later refresh window.
    """

    _COMMAND_MODES = ("phase", "opcode")

    def __init__(self) -> None:
        self._command_faults: deque[str | None] = deque()
        self._ack_drops: deque[bool] = deque()
        self._dma_shortfalls: deque[int] = deque()
        self.commands_corrupted = 0
        self.acks_dropped = 0
        self.dma_shortfalls_applied = 0

    # -- arming (injector side) -----------------------------------------------

    def corrupt_command(self, mode: str, after: int = 0) -> None:
        """Mangle the ``after``-th next submitted command (0 = next)."""
        if mode not in self._COMMAND_MODES:
            raise FaultInjectionError(
                f"unknown CP corruption mode {mode!r}; "
                f"expected one of {self._COMMAND_MODES}")
        self._command_faults.extend([None] * after)
        self._command_faults.append(mode)

    def drop_ack(self, after: int = 0) -> None:
        """Suppress the ack of the ``after``-th next acked command."""
        self._ack_drops.extend([False] * after)
        self._ack_drops.append(True)

    def shorten_dma(self, shortfall_bytes: int, after: int = 0) -> None:
        """Withhold bytes from the ``after``-th next page DMA chunk."""
        if shortfall_bytes <= 0:
            raise FaultInjectionError(
                f"DMA shortfall must be positive: {shortfall_bytes}")
        self._dma_shortfalls.extend([0] * after)
        self._dma_shortfalls.append(shortfall_bytes)

    # -- consumption (device side) --------------------------------------------

    def pull_command_fault(self) -> str | None:
        if not self._command_faults:
            return None
        mode = self._command_faults.popleft()
        if mode is not None:
            self.commands_corrupted += 1
        return mode

    def pull_ack_drop(self) -> bool:
        if not self._ack_drops:
            return False
        drop = self._ack_drops.popleft()
        if drop:
            self.acks_dropped += 1
        return drop

    def pull_dma_shortfall(self) -> int:
        if not self._dma_shortfalls:
            return 0
        shortfall = self._dma_shortfalls.popleft()
        if shortfall:
            self.dma_shortfalls_applied += 1
        return shortfall

    @property
    def exhausted(self) -> bool:
        """True once every armed fault has been consumed."""
        return not (self._command_faults or self._ack_drops
                    or self._dma_shortfalls)


class NVMCModel(SnapshotMixin):
    """The device-side controller, at transaction granularity."""

    #: :attr:`OperationResult.status` when the device never published an
    #: acknowledgement (it could not see a valid command word).
    NO_ACK = -1

    def __init__(self, timeline: RefreshTimeline, nand: NANDController,
                 dram: DRAMDevice, slot_base: int = PAGE_4K * 2,
                 window_bytes: int = PAGE_4K,
                 firmware: FirmwareModel | None = None,
                 cp_queue_depth: int = 1,
                 tracer: Tracer | None = None,
                 health=None) -> None:
        self.timeline = timeline
        self.nand = nand
        self.dram = dram
        #: Shared :class:`repro.health.monitor.HealthMonitor`; defaults
        #: to the NAND controller's, so the driver (which reads
        #: ``nvmc.health``) and the media always agree on the ladder.
        self.health = health if health is not None \
            else getattr(nand, "health", None)
        self.slot_base = slot_base
        self.dma = DMAEngine(timeline.spec, window_bytes=window_bytes)
        self.firmware = firmware if firmware is not None else FirmwareModel()
        self.cp = CPArea(queue_depth=cp_queue_depth)
        self.fsm = FSMTracker()
        self.tracer = tracer if tracer is not None else default_tracer()
        self.trace_owner = next_owner("nvmc")
        #: Device serialisation point: the FSM handles one command at a
        #: time (the PoC's queue depth is one).
        self.ready_ps = 0
        self.operations: list[OperationResult] = []
        self._phase = Phase.EVEN
        self._cmd_seq = 0
        #: Installed by fault campaigns; None on the (fast) clean path.
        self.faults: CPFaultPort | None = None
        self.fault_clock: InjectionClock | None = None

    # -- driver-facing API -------------------------------------------------------------

    def next_phase(self) -> Phase:
        """Toggle and return the phase for the next CP command."""
        self._phase = Phase.ODD if self._phase is Phase.EVEN else Phase.EVEN
        return self._phase

    def submit(self, command: CPCommand, submit_ps: int,
               slot: int = 0) -> OperationResult:
        """Post a CP command at ``submit_ps``; returns its timing.

        The caller (the nvdc driver) must already have flushed the CP
        cacheline — the kernel layer enforces that; this layer assumes a
        coherent CP view.
        """
        self.cp.post(slot, command)
        self._cmd_seq += 1
        cmd_id = self._cmd_seq
        if self.tracer.enabled:
            self.tracer.emit(submit_ps, "cp.post",
                             f"{command.opcode.name} posted",
                             owner=self.trace_owner, cmd=cmd_id, slot=slot,
                             opcode=command.opcode.name,
                             phase=command.phase.name,
                             depth=self.cp.queue_depth)
        start = max(submit_ps, self.ready_ps)
        fault = (self.faults.pull_command_fault()
                 if self.faults is not None else None)
        if fault == "phase":
            # The phase field arrived mangled: the device's poll sees a
            # word whose phase matches the last command, concludes it is
            # stale, and goes back to sleep.  One poll window is burnt;
            # no media work, no acknowledgement — the driver times out.
            ready, windows = self._poll(start)
            self._fsm_to(NVMCState.IDLE, ready)
            result = OperationResult(command.opcode, submit_ps, ready,
                                     windows, 0, status=self.NO_ACK)
        elif fault == "opcode":
            # The opcode field arrived mangled: the device decodes
            # garbage and publishes DECODE_ERROR without touching media.
            ready, windows = self._poll(start)
            end, ack_windows = self._ack(ready)
            result = OperationResult(command.opcode, submit_ps, end,
                                     windows + ack_windows, 0,
                                     status=CPAck.DECODE_ERROR)
        elif command.opcode is Opcode.CACHEFILL:
            result = self._run_cachefill(command, submit_ps, start)
        elif command.opcode is Opcode.WRITEBACK:
            result = self._run_writeback(command, submit_ps, start)
        elif command.opcode is Opcode.MERGED:
            result = self._run_merged(command, submit_ps, start)
        elif command.opcode is Opcode.NOP:
            result = self._run_nop(command, submit_ps, start)
        else:
            raise CPProtocolError(f"unsupported opcode {command.opcode}")
        if fault is not None and self.tracer.enabled:
            self.tracer.emit(result.completion_ps, "cp.fault",
                             f"{command.opcode.name} corrupted ({fault})",
                             owner=self.trace_owner, cmd=cmd_id, slot=slot,
                             opcode=command.opcode.name, mode=fault)
        if result.status != self.NO_ACK:
            dropped = (self.faults.pull_ack_drop()
                       if self.faults is not None else False)
            if dropped:
                # The operation ran, but the ack write was lost in
                # flight: the driver times out and re-issues.
                if self.tracer.enabled:
                    self.tracer.emit(result.completion_ps, "cp.fault",
                                     f"{command.opcode.name} ack dropped",
                                     owner=self.trace_owner, cmd=cmd_id,
                                     slot=slot, opcode=command.opcode.name,
                                     mode="ack-drop")
            else:
                self.cp.ack(slot, CPAck(phase=command.phase,
                                        status=result.status))
                if self.tracer.enabled:
                    self.tracer.emit(result.completion_ps, "cp.ack",
                                     f"{command.opcode.name} done",
                                     owner=self.trace_owner, cmd=cmd_id,
                                     slot=slot, opcode=command.opcode.name,
                                     phase=command.phase.name,
                                     status=result.status)
        self.ready_ps = result.completion_ps
        self.operations.append(result)
        return result

    # -- operation flows ---------------------------------------------------------------

    def _poll(self, start_ps: int) -> tuple[int, int]:
        """The CP-poll step; returns (poll end, windows consumed)."""
        self._fsm_to(NVMCState.POLL_CP, start_ps)
        window = self.timeline.next_window(start_ps)
        end, windows = self._dma_window(CACHELINE, window, "poll")
        return self.firmware.ready_after(end), windows

    def _ack(self, ready_ps: int) -> tuple[int, int]:
        """The ack-publish step; returns (ack end, windows consumed)."""
        self._fsm_to(NVMCState.ACK, ready_ps)
        window = self.timeline.next_window(ready_ps)
        end, windows = self._dma_window(CACHELINE, window, "ack")
        self._fsm_to(NVMCState.IDLE, end)
        return end, windows

    def _media_error_ack(self, opcode: Opcode, submit_ps: int,
                         fail_ps: int, windows: int) -> OperationResult:
        """Publish-path for a failed media operation: ack MEDIA_ERROR."""
        ready = self.firmware.ready_after(fail_ps)
        end, ack_windows = self._ack(ready)
        return OperationResult(opcode, submit_ps, end,
                               windows + ack_windows, 0,
                               status=CPAck.MEDIA_ERROR)

    def _degraded_ack(self, opcode: Opcode, submit_ps: int,
                      fail_ps: int, windows: int) -> OperationResult:
        """Publish-path for an operation the degraded media refused.

        The 4-bit ack status can only say DEGRADED; the driver pulls
        the machine-readable reason from the shared health monitor.
        """
        ready = self.firmware.ready_after(fail_ps)
        end, ack_windows = self._ack(ready)
        return OperationResult(opcode, submit_ps, end,
                               windows + ack_windows, 0,
                               status=CPAck.DEGRADED)

    def _run_cachefill(self, command: CPCommand, submit_ps: int,
                       start_ps: int) -> OperationResult:
        ready, windows = self._poll(start_ps)
        # NAND page read (tR + channel transfer), then firmware arms DMA.
        self._fsm_to(NVMCState.NAND_READ, ready)
        self._clock(ready, "nvmc.cachefill.read")
        try:
            data, nand_end = self.nand.read_page(command.nand_page, ready)
        except DegradedModeError:
            return self._degraded_ack(Opcode.CACHEFILL, submit_ps,
                                      ready, windows)
        except MediaError:
            return self._media_error_ack(Opcode.CACHEFILL, submit_ps,
                                         ready, windows)
        nand_busy = nand_end - ready
        if data is None:
            data = bytes(PAGE_4K)   # never-written page reads as zeros
        ready = self.firmware.ready_after(nand_end)
        # DMA the page into the DRAM cache slot inside a window.
        self._fsm_to(NVMCState.DRAM_WRITE, ready)
        window = self.timeline.next_window(ready)
        end, fill_windows = self._dma_window(
            PAGE_4K, window, "fill",
            addr=self._slot_addr(command.dram_slot))
        self.dram.poke(self._slot_addr(command.dram_slot), data)
        windows += fill_windows
        ready = self.firmware.ready_after(end)
        end, ack_windows = self._ack(ready)
        return OperationResult(Opcode.CACHEFILL, submit_ps, end,
                               windows + ack_windows, nand_busy)

    def _run_writeback(self, command: CPCommand, submit_ps: int,
                       start_ps: int) -> OperationResult:
        ready, windows = self._poll(start_ps)
        # DMA the victim page out of the DRAM cache inside a window.
        self._fsm_to(NVMCState.DRAM_READ, ready)
        window = self.timeline.next_window(ready)
        end, evict_windows = self._dma_window(
            PAGE_4K, window, "evict",
            addr=self._slot_addr(command.dram_slot))
        data = self.dram.peek(self._slot_addr(command.dram_slot), PAGE_4K)
        windows += evict_windows
        # Program NAND; the data sits in the battery-backed buffer, so
        # the ack does not wait for the program to finish — but the
        # channel stays busy, which throttles sustained writebacks.
        self._fsm_to(NVMCState.NAND_PROGRAM, end)
        self._clock(end, "nvmc.writeback.program")
        try:
            nand_end = self.nand.program_page(command.nand_page, data, end)
        except DegradedModeError:
            return self._degraded_ack(Opcode.WRITEBACK, submit_ps,
                                      end, windows)
        except MediaError:
            return self._media_error_ack(Opcode.WRITEBACK, submit_ps,
                                         end, windows)
        nand_busy = nand_end - end
        ready = self.firmware.ready_after(end)
        end, ack_windows = self._ack(ready)
        return OperationResult(Opcode.WRITEBACK, submit_ps, end,
                               windows + ack_windows, nand_busy)

    def _run_merged(self, command: CPCommand, submit_ps: int,
                    start_ps: int) -> OperationResult:
        """Future-work item (4): independent WB+fill in one command.

        The NAND read for the fill overlaps the victim DMA-out and the
        NAND program runs on the other channel; one poll and one ack are
        amortised over both halves.
        """
        ready, windows = self._poll(start_ps)
        # Window A: victim out of DRAM; NAND read proceeds in parallel.
        self._fsm_to(NVMCState.DRAM_READ, ready)
        window = self.timeline.next_window(ready)
        wb_end, evict_windows = self._dma_window(
            PAGE_4K, window, "evict",
            addr=self._slot_addr(command.wb_dram_slot))
        victim = self.dram.peek(self._slot_addr(command.wb_dram_slot),
                                PAGE_4K)
        windows += evict_windows
        self._fsm_to(NVMCState.NAND_PROGRAM, wb_end)
        self._clock(wb_end, "nvmc.writeback.program")
        try:
            prog_end = self.nand.program_page(command.wb_nand_page, victim,
                                              wb_end)
            self._fsm_to(NVMCState.NAND_READ, wb_end)
            self._clock(wb_end, "nvmc.cachefill.read")
            data, read_end = self.nand.read_page(command.nand_page, ready)
        except DegradedModeError:
            return self._degraded_ack(Opcode.MERGED, submit_ps,
                                      wb_end, windows)
        except MediaError:
            return self._media_error_ack(Opcode.MERGED, submit_ps,
                                         wb_end, windows)
        if data is None:
            data = bytes(PAGE_4K)
        nand_busy = max(prog_end, read_end) - ready
        ready = self.firmware.ready_after(max(wb_end, read_end))
        # Window B: fill data into the (just vacated) DRAM slot.
        self._fsm_to(NVMCState.DRAM_WRITE, ready)
        window = self.timeline.next_window(ready)
        end, fill_windows = self._dma_window(
            PAGE_4K, window, "fill",
            addr=self._slot_addr(command.dram_slot))
        self.dram.poke(self._slot_addr(command.dram_slot), data)
        windows += fill_windows
        ready = self.firmware.ready_after(end)
        end, ack_windows = self._ack(ready)
        return OperationResult(Opcode.MERGED, submit_ps, end,
                               windows + ack_windows, nand_busy)

    def _run_nop(self, command: CPCommand, submit_ps: int,
                 start_ps: int) -> OperationResult:
        ready, windows = self._poll(start_ps)
        end, ack_windows = self._ack(ready)
        return OperationResult(Opcode.NOP, submit_ps, end,
                               windows + ack_windows, 0)

    # -- helpers ----------------------------------------------------------------------------

    def _clock(self, now_ps: int, site: str) -> None:
        """Consult the fault clock (power loss) at a hook site."""
        if self.fault_clock is not None:
            self.fault_clock.check(now_ps, site)

    def _dma_window(self, nbytes: int, window: RefreshWindow,
                    kind: str, addr: int = -1) -> tuple[int, int]:
        """Move ``nbytes`` through refresh windows; returns
        ``(completion time, windows consumed)``.

        The clean path is one transfer in one window, exactly the §IV-A
        contract.  An injected shortfall truncates a page-sized chunk;
        the remainder is retried in the next window — each chunk still
        respects the per-window byte budget, so the transfer stays legal
        from the sanitizers' point of view, it just takes longer.

        The ``nvmc.dma`` record is self-describing for the sanitizers: it
        carries the window bounds the transfer must respect and the
        per-window byte budget, so observers need no timeline of their
        own.
        """
        remaining = nbytes
        windows_used = 0
        end = window.start_ps
        while True:
            self._clock(window.start_ps, f"nvmc.dma.{kind}")
            shortfall = 0
            if self.faults is not None and kind in ("fill", "evict"):
                shortfall = self.faults.pull_dma_shortfall()
            moved = max(0, remaining - shortfall)
            end = (self.dma.schedule(moved, window) if moved > 0
                   else window.start_ps)
            windows_used += 1
            if self.tracer.enabled:
                self.tracer.emit(window.start_ps, "nvmc.dma",
                                 f"{kind} {moved}B in window {window.index}",
                                 owner=self.trace_owner, cmd=self._cmd_seq,
                                 kind=kind, window=window.index, bytes=moved,
                                 requested=remaining,
                                 budget=self.dma.window_bytes, addr=addr,
                                 win_start=window.start_ps,
                                 win_end=window.end_ps, end_ps=end)
            remaining -= moved
            if remaining <= 0:
                return end, windows_used
            self.dma.stats.partial_transfers += 1
            if self.health is not None:
                self.health.record("nvmc", "dma-partial",
                                   time_ps=window.end_ps)
            window = self.timeline.next_window(window.end_ps)

    def _slot_addr(self, slot_id: int) -> int:
        """DRAM byte address of a cache slot."""
        return self.slot_base + slot_id * PAGE_4K

    def _fsm_to(self, state: NVMCState, time_ps: int) -> None:
        # POLL_CP is reachable from ACK (back-to-back commands) and IDLE.
        if state is NVMCState.POLL_CP and self.fsm.state not in (
                NVMCState.IDLE, NVMCState.ACK):
            self.fsm.transition(NVMCState.IDLE, time_ps)
        self.fsm.transition(state, time_ps)
