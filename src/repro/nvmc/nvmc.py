"""Transaction-level NVMC: window-scheduled cachefill/writeback timing.

This model advances an operation through the §IV-C control flow on the
:class:`~repro.ddr.imc.RefreshTimeline`:

1. **Poll** — the device learns of a posted CP command in the first
   refresh window at or after the post (it "always polls the CP area
   every tRFC time").
2. **Media + DMA** — cachefill reads the NAND page then DMAs it into
   the DRAM slot in a later window; writeback DMAs the victim out of
   DRAM in a window and then programs NAND (the program continues in the
   background once the data is captured in the battery-backed buffer).
3. **Ack** — completion status is written into the CP area in a further
   window, where the driver's polling picks it up.

Between steps the firmware-lag model inserts the software processing
delay that §VII-C blames for the PoC running at 8.9 tREFI windows per
writeback+cachefill pair instead of the 6-window theoretical minimum.

Every byte of payload actually moves: cachefill deposits real NAND page
contents into the DRAM cache device, so the integrity experiments catch
any bookkeeping bug.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ddr.device import DRAMDevice
from repro.ddr.imc import RefreshTimeline, RefreshWindow
from repro.errors import CPProtocolError
from repro.nand.controller import NANDController
from repro.nvmc.cp import CPAck, CPArea, CPCommand, Opcode, Phase
from repro.nvmc.dma import DMAEngine
from repro.nvmc.fsm import FirmwareModel, FSMTracker, NVMCState
from repro.sim.trace import Tracer, default_tracer, next_owner
from repro.units import CACHELINE, PAGE_4K


@dataclass(frozen=True)
class OperationResult:
    """Timing summary of one completed CP command."""

    opcode: Opcode
    submit_ps: int
    completion_ps: int
    windows_used: int
    nand_busy_ps: int

    @property
    def latency_ps(self) -> int:
        return self.completion_ps - self.submit_ps


class NVMCModel:
    """The device-side controller, at transaction granularity."""

    def __init__(self, timeline: RefreshTimeline, nand: NANDController,
                 dram: DRAMDevice, slot_base: int = PAGE_4K * 2,
                 window_bytes: int = PAGE_4K,
                 firmware: FirmwareModel | None = None,
                 cp_queue_depth: int = 1,
                 tracer: Tracer | None = None) -> None:
        self.timeline = timeline
        self.nand = nand
        self.dram = dram
        self.slot_base = slot_base
        self.dma = DMAEngine(timeline.spec, window_bytes=window_bytes)
        self.firmware = firmware if firmware is not None else FirmwareModel()
        self.cp = CPArea(queue_depth=cp_queue_depth)
        self.fsm = FSMTracker()
        self.tracer = tracer if tracer is not None else default_tracer()
        self.trace_owner = next_owner("nvmc")
        #: Device serialisation point: the FSM handles one command at a
        #: time (the PoC's queue depth is one).
        self.ready_ps = 0
        self.operations: list[OperationResult] = []
        self._phase = Phase.EVEN
        self._cmd_seq = 0

    # -- driver-facing API -------------------------------------------------------------

    def next_phase(self) -> Phase:
        """Toggle and return the phase for the next CP command."""
        self._phase = Phase.ODD if self._phase is Phase.EVEN else Phase.EVEN
        return self._phase

    def submit(self, command: CPCommand, submit_ps: int,
               slot: int = 0) -> OperationResult:
        """Post a CP command at ``submit_ps``; returns its timing.

        The caller (the nvdc driver) must already have flushed the CP
        cacheline — the kernel layer enforces that; this layer assumes a
        coherent CP view.
        """
        self.cp.post(slot, command)
        self._cmd_seq += 1
        cmd_id = self._cmd_seq
        if self.tracer.enabled:
            self.tracer.emit(submit_ps, "cp.post",
                             f"{command.opcode.name} posted",
                             owner=self.trace_owner, cmd=cmd_id, slot=slot,
                             opcode=command.opcode.name,
                             phase=command.phase.name,
                             depth=self.cp.queue_depth)
        start = max(submit_ps, self.ready_ps)
        if command.opcode is Opcode.CACHEFILL:
            result = self._run_cachefill(command, submit_ps, start)
        elif command.opcode is Opcode.WRITEBACK:
            result = self._run_writeback(command, submit_ps, start)
        elif command.opcode is Opcode.MERGED:
            result = self._run_merged(command, submit_ps, start)
        elif command.opcode is Opcode.NOP:
            result = self._run_nop(command, submit_ps, start)
        else:
            raise CPProtocolError(f"unsupported opcode {command.opcode}")
        self.cp.ack(slot, CPAck(phase=command.phase, status=CPAck.OK))
        if self.tracer.enabled:
            self.tracer.emit(result.completion_ps, "cp.ack",
                             f"{command.opcode.name} done",
                             owner=self.trace_owner, cmd=cmd_id, slot=slot,
                             opcode=command.opcode.name,
                             phase=command.phase.name)
        self.ready_ps = result.completion_ps
        self.operations.append(result)
        return result

    # -- operation flows ---------------------------------------------------------------

    def _poll(self, start_ps: int) -> tuple[int, int]:
        """The CP-poll step; returns (poll end, windows consumed)."""
        self._fsm_to(NVMCState.POLL_CP, start_ps)
        window = self.timeline.next_window(start_ps)
        end = self._dma_window(CACHELINE, window, "poll")
        return self.firmware.ready_after(end), 1

    def _ack(self, ready_ps: int) -> tuple[int, int]:
        """The ack-publish step; returns (ack end, windows consumed)."""
        self._fsm_to(NVMCState.ACK, ready_ps)
        window = self.timeline.next_window(ready_ps)
        end = self._dma_window(CACHELINE, window, "ack")
        self._fsm_to(NVMCState.IDLE, end)
        return end, 1

    def _run_cachefill(self, command: CPCommand, submit_ps: int,
                       start_ps: int) -> OperationResult:
        ready, windows = self._poll(start_ps)
        # NAND page read (tR + channel transfer), then firmware arms DMA.
        self._fsm_to(NVMCState.NAND_READ, ready)
        data, nand_end = self.nand.read_page(command.nand_page, ready)
        nand_busy = nand_end - ready
        if data is None:
            data = bytes(PAGE_4K)   # never-written page reads as zeros
        ready = self.firmware.ready_after(nand_end)
        # DMA the page into the DRAM cache slot inside a window.
        self._fsm_to(NVMCState.DRAM_WRITE, ready)
        window = self.timeline.next_window(ready)
        end = self._dma_window(PAGE_4K, window, "fill",
                               addr=self._slot_addr(command.dram_slot))
        self.dram.poke(self._slot_addr(command.dram_slot), data)
        windows += 1
        ready = self.firmware.ready_after(end)
        end, ack_windows = self._ack(ready)
        return OperationResult(Opcode.CACHEFILL, submit_ps, end,
                               windows + ack_windows, nand_busy)

    def _run_writeback(self, command: CPCommand, submit_ps: int,
                       start_ps: int) -> OperationResult:
        ready, windows = self._poll(start_ps)
        # DMA the victim page out of the DRAM cache inside a window.
        self._fsm_to(NVMCState.DRAM_READ, ready)
        window = self.timeline.next_window(ready)
        end = self._dma_window(PAGE_4K, window, "evict",
                               addr=self._slot_addr(command.dram_slot))
        data = self.dram.peek(self._slot_addr(command.dram_slot), PAGE_4K)
        windows += 1
        # Program NAND; the data sits in the battery-backed buffer, so
        # the ack does not wait for the program to finish — but the
        # channel stays busy, which throttles sustained writebacks.
        self._fsm_to(NVMCState.NAND_PROGRAM, end)
        nand_end = self.nand.program_page(command.nand_page, data, end)
        nand_busy = nand_end - end
        ready = self.firmware.ready_after(end)
        end, ack_windows = self._ack(ready)
        return OperationResult(Opcode.WRITEBACK, submit_ps, end,
                               windows + ack_windows, nand_busy)

    def _run_merged(self, command: CPCommand, submit_ps: int,
                    start_ps: int) -> OperationResult:
        """Future-work item (4): independent WB+fill in one command.

        The NAND read for the fill overlaps the victim DMA-out and the
        NAND program runs on the other channel; one poll and one ack are
        amortised over both halves.
        """
        ready, windows = self._poll(start_ps)
        # Window A: victim out of DRAM; NAND read proceeds in parallel.
        self._fsm_to(NVMCState.DRAM_READ, ready)
        window = self.timeline.next_window(ready)
        wb_end = self._dma_window(PAGE_4K, window, "evict",
                                  addr=self._slot_addr(command.wb_dram_slot))
        victim = self.dram.peek(self._slot_addr(command.wb_dram_slot),
                                PAGE_4K)
        windows += 1
        self._fsm_to(NVMCState.NAND_PROGRAM, wb_end)
        prog_end = self.nand.program_page(command.wb_nand_page, victim,
                                          wb_end)
        self._fsm_to(NVMCState.NAND_READ, wb_end)
        data, read_end = self.nand.read_page(command.nand_page, ready)
        if data is None:
            data = bytes(PAGE_4K)
        nand_busy = max(prog_end, read_end) - ready
        ready = self.firmware.ready_after(max(wb_end, read_end))
        # Window B: fill data into the (just vacated) DRAM slot.
        self._fsm_to(NVMCState.DRAM_WRITE, ready)
        window = self.timeline.next_window(ready)
        end = self._dma_window(PAGE_4K, window, "fill",
                               addr=self._slot_addr(command.dram_slot))
        self.dram.poke(self._slot_addr(command.dram_slot), data)
        windows += 1
        ready = self.firmware.ready_after(end)
        end, ack_windows = self._ack(ready)
        return OperationResult(Opcode.MERGED, submit_ps, end,
                               windows + ack_windows, nand_busy)

    def _run_nop(self, command: CPCommand, submit_ps: int,
                 start_ps: int) -> OperationResult:
        ready, windows = self._poll(start_ps)
        end, ack_windows = self._ack(ready)
        return OperationResult(Opcode.NOP, submit_ps, end,
                               windows + ack_windows, 0)

    # -- helpers ----------------------------------------------------------------------------

    def _dma_window(self, nbytes: int, window: RefreshWindow,
                    kind: str, addr: int = -1) -> int:
        """Schedule a windowed DMA transfer and trace it.

        The ``nvmc.dma`` record is self-describing for the sanitizers: it
        carries the window bounds the transfer must respect and the
        per-window byte budget, so observers need no timeline of their
        own.
        """
        end = self.dma.schedule(nbytes, window)
        if self.tracer.enabled:
            self.tracer.emit(window.start_ps, "nvmc.dma",
                             f"{kind} {nbytes}B in window {window.index}",
                             owner=self.trace_owner, cmd=self._cmd_seq,
                             kind=kind, window=window.index, bytes=nbytes,
                             budget=self.dma.window_bytes, addr=addr,
                             win_start=window.start_ps,
                             win_end=window.end_ps, end_ps=end)
        return end

    def _slot_addr(self, slot_id: int) -> int:
        """DRAM byte address of a cache slot."""
        return self.slot_base + slot_id * PAGE_4K

    def _fsm_to(self, state: NVMCState, time_ps: int) -> None:
        # POLL_CP is reachable from ACK (back-to-back commands) and IDLE.
        if state is NVMCState.POLL_CP and self.fsm.state not in (
                NVMCState.IDLE, NVMCState.ACK):
            self.fsm.transition(NVMCState.IDLE, time_ps)
        self.fsm.transition(state, time_ps)
