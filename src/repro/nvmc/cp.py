"""The communication-protocol (CP) area between the nvdc driver and NVMC.

"The first physical page of the reserved memory is used as a
communication protocol (CP) area ... a command is 64b-wide data and
stored in a single cacheline.  Each command includes four bit-fields:
Phase, Opcode, DRAM_Slot_ID, and NAND_Page_ID" (§IV-C).

Field layout (64-bit little-endian word):

    [63:60] Phase      — toggles to mark a *new* command
    [59:56] Opcode     — cachefill / writeback / merged / nop
    [55:28] DRAM_Slot_ID  (28 bits: slots in the reserved region)
    [27:0]  NAND_Page_ID  (28 bits: 4 KB pages of the 120 GB device)

The acknowledgement region is the next cacheline; the device writes the
completed command's phase + a status code there.  The paper's PoC
supports exactly one in-flight command ("multi-command is not
supported"); the model implements a configurable queue depth so the
§VII-C future-work ablation can quantify what depth > 1 buys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CPProtocolError
from repro.units import CACHELINE, PAGE_4K


class Opcode(enum.IntEnum):
    """CP operations."""

    NOP = 0
    CACHEFILL = 1       # NAND page -> DRAM slot
    WRITEBACK = 2       # DRAM slot -> NAND page
    MERGED = 3          # independent writeback + cachefill in one command
                        # (§VII-C future-work item 4)
    FLUSH_METADATA = 4  # persist the mapping metadata area


class Phase(enum.IntEnum):
    """Phase bit values; toggling marks a fresh command."""

    EVEN = 0
    ODD = 1


_PHASE_SHIFT = 60
_OPCODE_SHIFT = 56
_SLOT_SHIFT = 28
_SLOT_MASK = (1 << 28) - 1
_PAGE_MASK = (1 << 28) - 1


@dataclass(frozen=True)
class CPCommand:
    """A decoded CP command."""

    phase: Phase
    opcode: Opcode
    dram_slot: int = 0
    nand_page: int = 0
    # MERGED carries a second (writeback) pair in the adjacent word on
    # real hardware; the model carries it inline.
    wb_dram_slot: int = 0
    wb_nand_page: int = 0

    def encode(self) -> int:
        """Pack into the 64-bit CP word."""
        if not 0 <= self.dram_slot <= _SLOT_MASK:
            raise CPProtocolError("DRAM_Slot_ID out of field: "
                                  f"{self.dram_slot}")
        if not 0 <= self.nand_page <= _PAGE_MASK:
            raise CPProtocolError("NAND_Page_ID out of field: "
                                  f"{self.nand_page}")
        return ((int(self.phase) << _PHASE_SHIFT)
                | (int(self.opcode) << _OPCODE_SHIFT)
                | (self.dram_slot << _SLOT_SHIFT)
                | self.nand_page)

    @staticmethod
    def decode(word: int) -> "CPCommand":
        """Unpack a 64-bit CP word."""
        phase = Phase((word >> _PHASE_SHIFT) & 0xF)
        opcode_bits = (word >> _OPCODE_SHIFT) & 0xF
        try:
            opcode = Opcode(opcode_bits)
        except ValueError as exc:
            raise CPProtocolError(f"unknown opcode {opcode_bits}") from exc
        return CPCommand(phase=phase, opcode=opcode,
                         dram_slot=(word >> _SLOT_SHIFT) & _SLOT_MASK,
                         nand_page=word & _PAGE_MASK)


@dataclass(frozen=True)
class CPAck:
    """Device acknowledgement: echoes the phase, carries a status."""

    phase: Phase
    status: int = 0          # 0 = OK

    OK = 0
    MEDIA_ERROR = 1
    #: The device polled a word it could not decode (corrupted opcode
    #: bits); no operation was performed.  The driver re-issues.
    DECODE_ERROR = 2
    #: The device refused the operation because it is in a degraded
    #: mode (read-only or fail-stop).  Retrying is pointless; the
    #: driver consults the health monitor for the reason.
    DEGRADED = 3

    def encode(self) -> int:
        return (int(self.phase) << 4) | (self.status & 0xF)

    @staticmethod
    def decode(word: int) -> "CPAck":
        return CPAck(phase=Phase((word >> 4) & 0xF), status=word & 0xF)


class CPArea:
    """The 4 KB CP page: command slots + acknowledgement slots.

    Slot ``i``'s command lives at cacheline ``i``; its ack lives at
    cacheline ``queue_depth + i``.  The PoC uses ``queue_depth=1`` and
    "does not use the remaining memory space of 4 KB" (§VII-C).
    """

    def __init__(self, queue_depth: int = 1) -> None:
        if queue_depth < 1 or queue_depth * 2 * CACHELINE > PAGE_4K:
            raise CPProtocolError(
                f"queue depth {queue_depth} does not fit the 4 KB CP area")
        self.queue_depth = queue_depth
        self._commands: list[int] = [0] * queue_depth
        # None = never acknowledged; real hardware reserves a status code.
        self._acks: list[int | None] = [None] * queue_depth
        self.commands_posted = 0

    def post(self, slot: int, command: CPCommand) -> None:
        """Driver side: write a command word (after cache flush)."""
        self._check_slot(slot)
        previous = CPCommand.decode(self._commands[slot]) \
            if self._commands[slot] else None
        if previous is not None and previous.phase == command.phase:
            raise CPProtocolError(
                "phase did not toggle; device cannot see a new command")
        self._commands[slot] = command.encode()
        self.commands_posted += 1

    def poll_command(self, slot: int, last_phase: Phase | None) -> \
            CPCommand | None:
        """Device side: a new command if the phase toggled, else None."""
        self._check_slot(slot)
        word = self._commands[slot]
        if word == 0:
            return None
        command = CPCommand.decode(word)
        if last_phase is not None and command.phase == last_phase:
            return None
        return command

    def ack(self, slot: int, ack: CPAck) -> None:
        """Device side: publish completion status."""
        self._check_slot(slot)
        self._acks[slot] = ack.encode()

    def clear_ack(self, slot: int) -> None:
        """Driver side: poison the ack word before re-posting a command.

        The phase field is one bit, so the ack of command N-1 carries the
        same phase as command N+1; a driver that re-issues after a lost
        ack must clear the ack area first or a stale ack is
        indistinguishable from a fresh one (the ABA hazard of §IV-C's
        minimal mailbox).
        """
        self._check_slot(slot)
        self._acks[slot] = None

    def poll_ack(self, slot: int, phase: Phase) -> CPAck | None:
        """Driver side: the matching ack once the device completed."""
        self._check_slot(slot)
        word = self._acks[slot]
        if word is None:
            return None
        decoded = CPAck.decode(word)
        if decoded.phase != phase:
            return None
        return decoded

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.queue_depth:
            raise CPProtocolError(
                f"CP slot {slot} out of range (depth {self.queue_depth})")
