"""The NVMC's DMA engine: bounded transfers inside refresh windows.

"During the extra tRFC time, the DMA and DDR4 controllers ... can
perform up to 4 KB data transfer from/to the DRAM cache" (§IV-A).  The
engine enforces that bound, computes how long a transfer occupies the
window, and refuses transfers that cannot complete before the window
closes — the hardware invariant the whole mechanism rests on.

The per-window byte budget is a parameter because the paper's §VII-C
ASIC roadmap includes "increasing the total amount of data transferred
during tRFC up to 8 KB".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ddr.imc import RefreshWindow
from repro.ddr.spec import DDR4Spec
from repro.errors import DeviceError
from repro.units import PAGE_4K


@dataclass
class DMAStats:
    """Aggregate DMA counters."""

    transfers: int = 0
    bytes_moved: int = 0
    windows_used: int = 0
    #: Transfers that ended short of the request (injected faults or an
    #: early window close); the remainder moves in a later window.
    partial_transfers: int = 0


class DMAEngine:
    """Window-bounded mover between the DRAM cache and NVMC buffers."""

    def __init__(self, spec: DDR4Spec, window_bytes: int = PAGE_4K,
                 setup_ps: int = 0) -> None:
        if window_bytes <= 0:
            raise DeviceError("window byte budget must be positive")
        self.spec = spec
        self.window_bytes = window_bytes
        self.setup_ps = setup_ps
        self.stats = DMAStats()
        #: Per-size memo — spec/setup are fixed for the engine's
        #: lifetime and real traffic uses a handful of sizes (64 B CP
        #: lines, 4 KB pages), so the arithmetic runs once per size.
        self._time_cache: dict[int, int] = {}

    def transfer_time_ps(self, nbytes: int) -> int:
        """Bus time for ``nbytes``: burst-granular, open-page transfers.

        Each 64 B burst occupies tCCD on the channel; the first adds the
        ACT + tRCD + CAS lead-in.
        """
        cached = self._time_cache.get(nbytes)
        if cached is not None:
            return cached
        bursts = -(-nbytes // self.spec.burst_bytes)
        lead_in = self.spec.trcd_ps + self.spec.tcl_ps
        time_ps = self.setup_ps + lead_in + bursts * self.spec.tccd_ps
        self._time_cache[nbytes] = time_ps
        return time_ps

    def fits_in_window(self, nbytes: int, window: RefreshWindow) -> bool:
        """Whether a transfer both respects the byte budget and the time."""
        if nbytes > self.window_bytes:
            return False
        return self.transfer_time_ps(nbytes) <= window.duration_ps

    def schedule(self, nbytes: int, window: RefreshWindow) -> int:
        """Book a transfer into ``window``; returns its completion time.

        Raises :class:`DeviceError` if the transfer cannot legally fit —
        the RTL would simply never start such a transfer.
        """
        if nbytes > self.window_bytes:
            raise DeviceError(
                f"transfer of {nbytes} B exceeds the per-window budget "
                f"of {self.window_bytes} B")
        duration = self.transfer_time_ps(nbytes)
        if duration > window.duration_ps:
            raise DeviceError(
                f"transfer of {nbytes} B needs {duration} ps but the "
                f"window is only {window.duration_ps} ps")
        self.stats.transfers += 1
        self.stats.bytes_moved += nbytes
        self.stats.windows_used += 1
        return window.start_ps + duration

    def max_bytes_for(self, window: RefreshWindow) -> int:
        """Largest burst-aligned transfer that fits this window."""
        budget_ps = window.duration_ps - self.setup_ps
        lead_in = self.spec.trcd_ps + self.spec.tcl_ps
        budget_ps -= lead_in
        if budget_ps <= 0:
            return 0
        bursts = budget_ps // self.spec.tccd_ps
        return min(self.window_bytes, bursts * self.spec.burst_bytes)
