"""Pipelined NVMC: CP queue depth > 1 (§VII-C future-work item 2).

The PoC supports one in-flight CP command, so its uncached throughput
is a serial walk of refresh windows.  This model implements what the
paper proposes: a CP area holding several commands, a firmware that
polls *all* slots in one window (commands and acks are 64 B — one 4 KB
window carries up to 64 of them), NAND phases that overlap across
commands, and one 4 KB data transfer per window.

It is a purpose-built window-stepped simulator (windows are the only
time anything can happen on the bus, so stepping window by window is
exact) used by the queue-depth ablation; the mainline
:class:`~repro.nvmc.nvmc.NVMCModel` stays faithful to the depth-1 PoC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ddr.imc import RefreshTimeline
from repro.errors import ConfigError
from repro.nand.spec import ZNANDSpec
from repro.units import CACHELINE, PAGE_4K


class Stage(enum.Enum):
    """Lifecycle of one miss (a writeback+cachefill pair)."""

    POSTED = "posted"              # in the CP area, not yet seen
    WB_DATA = "wb_data"            # needs a window: victim out of DRAM
    NAND = "nand"                  # fill's NAND read in flight
    FILL_DATA = "fill_data"        # needs a window: page into DRAM
    ACK = "ack"                    # needs (a share of) a window: ack
    DONE = "done"


@dataclass
class _Miss:
    """One outstanding miss and its stage clock."""

    index: int
    stage: Stage = Stage.POSTED
    ready_ps: int = 0              # when the current stage can use a window
    done_ps: int = 0


@dataclass
class PipelineResult:
    """Outcome of a pipelined uncached run."""

    misses: int
    span_ps: int
    windows_elapsed: int

    @property
    def bandwidth_mb_s(self) -> float:
        if self.span_ps <= 0:
            return 0.0
        return self.misses * PAGE_4K / 1e6 / (self.span_ps / 1e12)

    @property
    def windows_per_miss(self) -> float:
        return self.windows_elapsed / self.misses if self.misses else 0.0


class PipelinedNVMC:
    """Window-stepped model of a multi-command NVMC."""

    def __init__(self, timeline: RefreshTimeline, nand_spec: ZNANDSpec,
                 queue_depth: int = 4, window_bytes: int = PAGE_4K,
                 firmware_step_ps: int = 0,
                 dirty_victims: bool = True) -> None:
        if queue_depth < 1:
            raise ConfigError("queue depth must be >= 1")
        self.timeline = timeline
        self.nand_spec = nand_spec
        self.queue_depth = queue_depth
        self.window_bytes = window_bytes
        self.firmware_step_ps = firmware_step_ps
        self.dirty_victims = dirty_victims

    def run_uncached(self, n_misses: int,
                     driver_gap_ps: int = 1_200_000) -> PipelineResult:
        """Sustained uncached misses with ``queue_depth`` in flight.

        ``driver_gap_ps`` is the host software between observing an ack
        and posting the next command into the freed CP slot.
        """
        from repro.nvmc.dma import DMAEngine
        dma = DMAEngine(self.timeline.spec, window_bytes=self.window_bytes)
        page_cost_ps = dma.transfer_time_ps(PAGE_4K)
        cl_cost_ps = dma.transfer_time_ps(CACHELINE)
        max_pages_per_window = max(1, self.window_bytes // PAGE_4K)

        in_flight: list[_Miss] = []
        posted = 0
        completed = 0
        next_post_ps = 0
        window_index = 0
        first_window = self.timeline.window(0)
        last_done = first_window.start_ps

        while completed < n_misses:
            window = self.timeline.window(window_index)
            window_index += 1
            # Post new commands whose driver-side gap has elapsed.
            while (posted < n_misses and len(in_flight) < self.queue_depth
                    and next_post_ps <= window.start_ps):
                in_flight.append(_Miss(index=posted,
                                       ready_ps=next_post_ps))
                posted += 1

            # The window is a *time* budget: one-to-two 4 KB transfers
            # (~350 ns each) plus a handful of 64 B CP ops fit in the
            # 900 ns the extended tRFC provides.
            budget_ps = window.duration_ps
            pages_left = max_pages_per_window

            # One batched poll covers every newly posted command.
            new = [m for m in in_flight if m.stage is Stage.POSTED
                   and m.ready_ps <= window.start_ps]
            if new and budget_ps >= cl_cost_ps:
                budget_ps -= cl_cost_ps     # one CP-page read sees all
                for miss in new:
                    if self.dirty_victims:
                        miss.stage = Stage.WB_DATA
                    else:
                        miss.stage = Stage.NAND
                        miss.ready_ps = (window.start_ps
                                         + self.firmware_step_ps
                                         + self.nand_spec.read_ps)

            # Acks are cheap; batch every ack-ready command.
            for miss in in_flight:
                if (miss.stage is Stage.ACK
                        and miss.ready_ps <= window.start_ps
                        and budget_ps >= cl_cost_ps):
                    budget_ps -= cl_cost_ps
                    miss.stage = Stage.DONE
                    miss.done_ps = window.start_ps + cl_cost_ps
                    last_done = max(last_done, miss.done_ps)
                    completed += 1
                    next_post_ps = max(next_post_ps,
                                       miss.done_ps + driver_gap_ps)

            # 4 KB data transfers, oldest ready first.
            for miss in sorted(in_flight, key=lambda m: m.index):
                if pages_left == 0 or budget_ps < page_cost_ps:
                    break
                if (miss.stage is Stage.WB_DATA
                        and miss.ready_ps <= window.start_ps):
                    budget_ps -= page_cost_ps
                    pages_left -= 1
                    # Victim captured; NAND program overlaps; the fill
                    # read starts now.
                    miss.stage = Stage.NAND
                    miss.ready_ps = (window.start_ps
                                     + self.firmware_step_ps
                                     + self.nand_spec.read_ps)
                elif (miss.stage is Stage.FILL_DATA
                        and miss.ready_ps <= window.start_ps):
                    budget_ps -= page_cost_ps
                    pages_left -= 1
                    miss.stage = Stage.ACK
                    miss.ready_ps = (window.start_ps
                                     + self.firmware_step_ps)

            # NAND reads complete off-bus.
            for miss in in_flight:
                if (miss.stage is Stage.NAND
                        and miss.ready_ps <= window.end_ps):
                    miss.stage = Stage.FILL_DATA
                    miss.ready_ps += self.firmware_step_ps

            in_flight = [m for m in in_flight if m.stage is not Stage.DONE]

            if window_index > 1000 * n_misses:
                raise ConfigError("pipeline made no progress")

        span = last_done - first_window.start_ps
        return PipelineResult(misses=n_misses, span_ps=span,
                              windows_elapsed=window_index)


def queue_depth_sweep(depths=(1, 2, 4, 8), n_misses: int = 200,
                      firmware_step_ps: int = 0) -> list[tuple[int, float]]:
    """Uncached bandwidth vs CP queue depth (the §VII-C item-2 curve)."""
    from repro.ddr.spec import NVDIMMC_1600
    from repro.nand.spec import ZNAND_64GB
    timeline = RefreshTimeline(NVDIMMC_1600)
    out = []
    for depth in depths:
        model = PipelinedNVMC(timeline, ZNAND_64GB, queue_depth=depth,
                              firmware_step_ps=firmware_step_ps)
        result = model.run_uncached(n_misses)
        out.append((depth, result.bandwidth_mb_s))
    return out
