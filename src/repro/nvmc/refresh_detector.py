"""The refresh detector: REF pattern match over deserialized CA samples.

"The refresh detector receives six 8-bit data per clock from the
deserializers, and determines whether those parallel data includes the
state of Refresh" (§IV-A).  The match is

    CKE=H, CS_n=L, ACT_n=H, RAS_n=L, CAS_n=L, WE_n=H

with CKE *steady* — a falling CKE with the same pins is self-refresh
entry and must not arm a device transfer (the following blackout has no
bounded end).

The detector plugs into the shared bus as a snooper.  Each observed
command slot is expanded into two DDR samples (one clock) followed by
idle samples, pushed through the six 1:8 deserializers, and
pattern-matched on the emitted parallel words.  An optional electrical
noise model flips samples at a configurable rate, letting the
§VII-A-style aging experiments quantify detection accuracy (the paper
could not quantify it analytically and relied on aging tests).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.ddr.commands import CAState
from repro.nvmc.deserializer import Deserializer, word_bits

#: Monitored pin names, board-routing order (§IV-A).
PIN_NAMES = ("CKE", "CS_n", "ACT_n", "RAS_n", "CAS_n", "WE_n")

#: Samples injected per observed command slot (1 clock at DDR = 2) plus
#: trailing idle samples so the deserializers keep emitting words.
ACTIVE_SAMPLES = 2
IDLE_SAMPLES = 6

#: Idle (DESELECT) levels per pin: CKE=H, CS_n=H, others H.
IDLE_LEVELS = (True, True, True, True, True, True)

#: The REF match per pin: (CKE, CS_n, ACT_n, RAS_n, CAS_n, WE_n).
REF_PATTERN = (True, False, True, False, False, True)


class RefreshDetector:
    """Pattern-matching refresh detector with optional sampling noise."""

    def __init__(self, noise_ber: float = 0.0, seed: int = 0,
                 on_refresh: Callable[[int], None] | None = None) -> None:
        self.noise_ber = noise_ber
        self._rng = random.Random(seed)
        self.on_refresh = on_refresh
        self._deserializers = [Deserializer(name) for name in PIN_NAMES]
        self._last_cke = True
        self.detections: list[int] = []
        self.true_positives = 0
        self.false_positives = 0
        self.false_negatives = 0
        self.commands_observed = 0

    # -- bus snooper entry point ---------------------------------------------------

    def observe(self, time_ps: int, state: CAState) -> None:
        """Consume one command slot from the CA bus tap."""
        from repro.ddr.commands import is_refresh_state
        self.commands_observed += 1
        truth = is_refresh_state(state)
        levels = state.pins()
        detected = self._sample_command(levels)
        if detected and self._cke_fell(levels):
            detected = False   # SRE guard: REF pins but CKE falling
        self._last_cke = levels[0]
        if detected and truth:
            self.true_positives += 1
        elif detected and not truth:
            self.false_positives += 1
        elif truth and not detected:
            self.false_negatives += 1
        if detected:
            self.detections.append(time_ps)
            if self.on_refresh is not None:
                self.on_refresh(time_ps)

    # -- internals --------------------------------------------------------------------

    def _cke_fell(self, levels: tuple[bool, ...]) -> bool:
        return self._last_cke and not levels[0]

    def _sample_command(self, levels: tuple[bool, ...]) -> bool:
        """Serialize, deserialize, and pattern-match one command slot."""
        matched = False
        for sample_index in range(ACTIVE_SAMPLES + IDLE_SAMPLES):
            if sample_index < ACTIVE_SAMPLES:
                sampled = levels
            else:
                sampled = IDLE_LEVELS
            words = []
            for pin_index, deser in enumerate(self._deserializers):
                level = sampled[pin_index]
                if self.noise_ber and self._rng.random() < self.noise_ber:
                    level = not level
                words.append(deser.push(level))
            if words[0] is not None:
                matched |= self._match_words(words)
        return matched

    @staticmethod
    def _match_words(words: list[int | None]) -> bool:
        """True if any aligned sample across the six words matches REF."""
        columns = [word_bits(w) for w in words if w is not None]
        if len(columns) != len(PIN_NAMES):
            return False
        for i in range(Deserializer.WIDTH):
            sample = tuple(columns[pin][i] for pin in range(len(PIN_NAMES)))
            if sample == REF_PATTERN:
                return True
        return False

    # -- metrics -------------------------------------------------------------------------

    @property
    def accuracy(self) -> float:
        """Detection accuracy over everything observed so far."""
        if self.commands_observed == 0:
            return 1.0
        wrong = self.false_positives + self.false_negatives
        return 1.0 - wrong / self.commands_observed
