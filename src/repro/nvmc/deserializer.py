"""1:8 deserializers on the monitored CA signals.

Fig. 4: "each of the CA signals and the DDR4 differential clock ... are
input of the 1:8 deserializer that parallelizes the incoming signals by
eight bits.  Assuming that the CA signals operate at DDR, the data of
each CA signal is captured every four clock cycles so that the output of
the deserializer is eight-bit wide."

The model pushes one sampled logic level per half-clock and emits an
8-bit parallel word every eight samples; the refresh detector consumes
the aligned words of all six signals.

The shift register is kept as an integer accumulator plus a fill count
(rather than a list of bools): assembling the parallel word is then free
— the accumulator *is* the word — which matters because the sample-level
path runs once per observed command slot per pin.
"""

from __future__ import annotations

from typing import Iterable


class Deserializer:
    """Serial-in, 8-bit-parallel-out shift register for one CA signal."""

    WIDTH = 8

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._word = 0
        self._count = 0
        self.words_emitted = 0

    def push(self, level: bool) -> int | None:
        """Shift in one DDR sample; returns a word every 8th sample.

        Bit 0 of the word is the oldest sample, matching how the RTL
        presents time-ordered captures to the detector.
        """
        if level:
            self._word |= 1 << self._count
        self._count += 1
        if self._count < self.WIDTH:
            return None
        word = self._word
        self._word = 0
        self._count = 0
        self.words_emitted += 1
        return word

    def push_many(self, levels: Iterable[bool]) -> list[int]:
        """Shift in a batch of samples; returns every word emitted.

        Equivalent to calling :meth:`push` per sample and collecting the
        non-``None`` returns, without the per-sample call overhead.
        """
        word = self._word
        count = self._count
        width = self.WIDTH
        emitted: list[int] = []
        for level in levels:
            if level:
                word |= 1 << count
            count += 1
            if count == width:
                emitted.append(word)
                word = 0
                count = 0
        self._word = word
        self._count = count
        self.words_emitted += len(emitted)
        return emitted

    @property
    def pending_samples(self) -> int:
        """Samples captured since the last emitted word."""
        return self._count

    def reset(self) -> None:
        """Drop partial captures (e.g. on relock after clock loss)."""
        self._word = 0
        self._count = 0


def word_bits(word: int, width: int = Deserializer.WIDTH) -> list[bool]:
    """Unpack a parallel word back into time-ordered samples."""
    return [bool(word & (1 << i)) for i in range(width)]
