"""1:8 deserializers on the monitored CA signals.

Fig. 4: "each of the CA signals and the DDR4 differential clock ... are
input of the 1:8 deserializer that parallelizes the incoming signals by
eight bits.  Assuming that the CA signals operate at DDR, the data of
each CA signal is captured every four clock cycles so that the output of
the deserializer is eight-bit wide."

The model pushes one sampled logic level per half-clock and emits an
8-bit parallel word every eight samples; the refresh detector consumes
the aligned words of all six signals.
"""

from __future__ import annotations


class Deserializer:
    """Serial-in, 8-bit-parallel-out shift register for one CA signal."""

    WIDTH = 8

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._shift: list[bool] = []
        self.words_emitted = 0

    def push(self, level: bool) -> int | None:
        """Shift in one DDR sample; returns a word every 8th sample.

        Bit 0 of the word is the oldest sample, matching how the RTL
        presents time-ordered captures to the detector.
        """
        self._shift.append(bool(level))
        if len(self._shift) < self.WIDTH:
            return None
        word = 0
        for i, bit in enumerate(self._shift):
            if bit:
                word |= 1 << i
        self._shift.clear()
        self.words_emitted += 1
        return word

    @property
    def pending_samples(self) -> int:
        """Samples captured since the last emitted word."""
        return len(self._shift)

    def reset(self) -> None:
        """Drop partial captures (e.g. on relock after clock loss)."""
        self._shift.clear()


def word_bits(word: int, width: int = Deserializer.WIDTH) -> list[bool]:
    """Unpack a parallel word back into time-ordered samples."""
    return [bool(word & (1 << i)) for i in range(width)]
