"""Command-accurate NVMC agent for protocol-validation experiments.

Unlike :class:`~repro.nvmc.nvmc.NVMCModel` (which schedules on the
refresh-timeline arithmetic), the agent reacts to *detected* REFRESH
commands on the real shared bus — the full causal chain of §III-B:

    iMC issues PREA + REF  →  CA tap  →  1:8 deserializers  →
    refresh detector  →  wait out the JEDEC tRFC  →  drive the bus.

The agent is what the §VII-A aging experiments run: with the tRFC rule
respected, gigabytes of interleaved host/device traffic must produce
zero collisions and zero data corruption; with the rule disabled (the
``rogue`` mode) collisions appear immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ddr.bus import SharedBus
from repro.ddr.controller import DDR4Controller
from repro.ddr.spec import DDR4Spec
from repro.errors import DeviceError
from repro.nvmc.refresh_detector import RefreshDetector
from repro.units import PAGE_4K


@dataclass
class PendingTransfer:
    """One queued device-side DRAM access."""

    addr: int
    data: bytes | None       # None = read of ``nbytes``
    nbytes: int = 0
    done: bool = False
    result: bytes | None = None
    completed_ps: int = -1


@dataclass
class AgentStats:
    windfalls: int = 0        # windows in which work was performed
    windows_seen: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    transfers_completed: int = 0
    rule_violations: int = 0
    queue_high_water: int = field(default=0)


class NVMCProtocolAgent:
    """Bus master that only drives the channel inside detected windows."""

    def __init__(self, spec: DDR4Spec, bus: SharedBus,
                 detector: RefreshDetector | None = None,
                 window_bytes: int = PAGE_4K,
                 respect_windows: bool = True,
                 name: str = "nvmc") -> None:
        self.spec = spec
        self.bus = bus
        self.name = name
        self.window_bytes = window_bytes
        self.respect_windows = respect_windows
        self.controller = DDR4Controller(name, spec, bus)
        self.detector = detector or RefreshDetector()
        self.detector.on_refresh = self._on_refresh
        bus.add_snooper(self.detector.observe)
        self._queue: list[PendingTransfer] = []
        self.stats = AgentStats()

    # -- work submission ------------------------------------------------------------

    def queue_write(self, addr: int, data: bytes) -> PendingTransfer:
        """Queue a DRAM write to be performed in upcoming windows."""
        transfer = PendingTransfer(addr=addr, data=bytes(data),
                                   nbytes=len(data))
        self._queue.append(transfer)
        self.stats.queue_high_water = max(self.stats.queue_high_water,
                                          len(self._queue))
        return transfer

    def queue_read(self, addr: int, nbytes: int) -> PendingTransfer:
        """Queue a DRAM read to be performed in upcoming windows."""
        transfer = PendingTransfer(addr=addr, data=None, nbytes=nbytes)
        self._queue.append(transfer)
        self.stats.queue_high_water = max(self.stats.queue_high_water,
                                          len(self._queue))
        return transfer

    @property
    def backlog(self) -> int:
        return len(self._queue)

    # -- the refresh-triggered path ------------------------------------------------------

    def _on_refresh(self, refresh_ps: int) -> None:
        """Detector callback: a REFRESH was decoded on the CA tap."""
        self.stats.windows_seen += 1
        if not self._queue:
            return
        if self.respect_windows:
            start = refresh_ps + self.spec.trfc_device_ps
            end = refresh_ps + self.spec.trfc_ps
        else:
            # Rogue mode: drive the bus immediately after REF, while the
            # host believes it still owns the channel.
            start = refresh_ps + 2 * self.spec.clock_ps
            end = start + 10 * self.spec.trefi_ps
            self.stats.rule_violations += 1
        self._drain_window(start, end)

    def _drain_window(self, start_ps: int, end_ps: int) -> None:
        """Perform queued transfers that fit before the window closes."""
        budget = self.window_bytes
        t = start_ps
        worked = False
        # Windows follow a refresh: every bank is closed, so the
        # controller's open-row book is reset once per window.
        self.controller.forget_open_rows()
        self.controller.busy_until_ps = t
        while self._queue and budget > 0:
            transfer = self._queue[0]
            if transfer.nbytes > budget:
                break
            if not self._fits(transfer.nbytes, t, end_ps):
                break
            if transfer.data is None:
                data, end = self.controller.read(
                    transfer.addr, transfer.nbytes, t)
                transfer.result = data
                self.stats.bytes_read += transfer.nbytes
            else:
                end = self.controller.write(transfer.addr, transfer.data, t)
                self.stats.bytes_written += transfer.nbytes
            if self.respect_windows and end > end_ps:
                raise DeviceError(
                    f"{self.name}: transfer overran its window "
                    f"({end} > {end_ps}) — DMA budget misconfigured")
            transfer.done = True
            transfer.completed_ps = end
            self._queue.pop(0)
            self.stats.transfers_completed += 1
            budget -= transfer.nbytes
            t = end
            worked = True
        if worked:
            # The host returns believing every bank is precharged (its
            # PREA preceded the REF), so the agent must close whatever
            # it opened before the window ends — leaving a row active
            # would make the host's next ACT illegal.
            if self.controller.open_rows:
                self.controller.precharge_all(t)
            self.stats.windfalls += 1

    #: Window-end margin reserved for the closing PREA (write recovery
    #: after the last write burst, tRAS after the last ACT, plus the
    #: command slot and tRP).
    def _close_margin(self) -> int:
        return (self.spec.tras_ps + self.spec.twr_ps
                + self.spec.cwl_ps + self.spec.burst_time_ps
                + self.spec.clock_ps + self.spec.trp_ps)

    def _fits(self, nbytes: int, start_ps: int, end_ps: int) -> bool:
        if not self.respect_windows:
            return True
        bursts = -(-nbytes // self.spec.burst_bytes)
        lead_in = self.spec.trcd_ps + self.spec.tcl_ps
        worst = lead_in + bursts * max(self.spec.tccd_ps,
                                       self.spec.burst_time_ps)
        return start_ps + worst + self._close_margin() <= end_ps
