"""The NVM controller (NVMC) — the paper's FPGA side of NVDIMM-C.

Subsystems mirror the RTL block diagram of Fig. 4 plus the firmware:

* :mod:`repro.nvmc.deserializer` — the 1:8 serial-to-parallel converters
  on each monitored CA signal.
* :mod:`repro.nvmc.refresh_detector` — decodes REFRESH from the
  deserialized pin states (and rejects SRE/SRX and every other command).
* :mod:`repro.nvmc.cp` — the 64-bit communication-protocol command
  format (Phase / Opcode / DRAM_Slot_ID / NAND_Page_ID, §IV-C).
* :mod:`repro.nvmc.dma` — the per-window DMA engine (up to 4 KB per
  extended-tRFC window).
* :mod:`repro.nvmc.fsm` — the management state machine with the
  firmware-lag model (§VII-C: software-controlled FSM transitions).
* :mod:`repro.nvmc.nvmc` — transaction-level NVMC used by the
  performance experiments.
* :mod:`repro.nvmc.agent` — command-accurate NVMC process for the
  protocol-validation experiments (drives the real shared bus).
"""

from repro.nvmc.deserializer import Deserializer
from repro.nvmc.refresh_detector import RefreshDetector
from repro.nvmc.cp import CPArea, CPCommand, Opcode, Phase
from repro.nvmc.dma import DMAEngine
from repro.nvmc.fsm import FirmwareModel, NVMCState
from repro.nvmc.nvmc import NVMCModel, OperationResult
from repro.nvmc.agent import NVMCProtocolAgent

__all__ = [
    "Deserializer",
    "RefreshDetector",
    "CPArea",
    "CPCommand",
    "Opcode",
    "Phase",
    "DMAEngine",
    "FirmwareModel",
    "NVMCState",
    "NVMCModel",
    "OperationResult",
    "NVMCProtocolAgent",
]
