"""NVMC management FSM and the firmware-lag model.

The PoC's RTL is orchestrated by software on Cortex-A53 cores: "the
DDR4 controller is controlled by several software routines ...  decoding
the command in the CP area for the FPGA side is also performed by the
software ...  those make data movements and FSM transitions so laggy"
(§VII-C).  The measured effect: a writeback+cachefill pair takes 8.9
tREFI windows instead of the 6-window theoretical minimum.

:class:`FirmwareModel` captures that lag as a per-step processing delay:
after each window-bound action the firmware needs ``step_ps`` before it
can arm the next action, which makes it miss windows.  Setting
``step_ps = 0`` models the paper's ASIC (hardware-controlled) roadmap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.units import us


class NVMCState(enum.Enum):
    """Management FSM states (§IV-C control flow)."""

    IDLE = "idle"
    POLL_CP = "poll_cp"              # read the CP command word in a window
    NAND_READ = "nand_read"          # cachefill: fetch the NAND page
    DRAM_WRITE = "dram_write"        # cachefill: DMA page into DRAM slot
    DRAM_READ = "dram_read"          # writeback: DMA victim out of DRAM
    NAND_PROGRAM = "nand_program"    # writeback: program the NAND page
    ACK = "ack"                      # publish completion into the CP area


#: Legal FSM transitions; the tests assert the model never strays.
TRANSITIONS: dict[NVMCState, tuple[NVMCState, ...]] = {
    NVMCState.IDLE: (NVMCState.POLL_CP,),
    NVMCState.POLL_CP: (NVMCState.IDLE, NVMCState.NAND_READ,
                        NVMCState.DRAM_READ, NVMCState.ACK),
    # NAND_READ -> ACK is the media-failure abort: an uncorrectable page
    # skips the fill DMA and acks MEDIA_ERROR straight away.
    NVMCState.NAND_READ: (NVMCState.DRAM_WRITE, NVMCState.ACK),
    NVMCState.DRAM_WRITE: (NVMCState.ACK,),
    NVMCState.DRAM_READ: (NVMCState.NAND_PROGRAM, NVMCState.ACK),
    NVMCState.NAND_PROGRAM: (NVMCState.ACK, NVMCState.NAND_READ),
    NVMCState.ACK: (NVMCState.IDLE, NVMCState.POLL_CP),
}


@dataclass
class FirmwareModel:
    """Per-step firmware processing delay (the §VII-C lag).

    ``step_ps`` — time the Cortex-A53 software needs between completing
    one window-bound action and being ready to use the next window
    (command decode, DMA/FSM register programming, FTL bookkeeping).

    The default of 4.0 µs is calibrated so one writeback+cachefill pair
    (with the ~8 µs PoC NAND page read of §VII-C) occupies 8 tREFI
    windows at the stock 7.8 µs tREFI — close to the paper's measured
    8.9-window Uncached behaviour (§VII-B2; the fraction comes from
    run-to-run variance a deterministic model quantises away); see
    ``repro.perf.calibration``.  ``step_ps = 0`` models the §VII-C ASIC
    roadmap (hardware FSM).
    """

    step_ps: int = us(4.0)

    def ready_after(self, action_end_ps: int) -> int:
        """When the firmware can arm the next window-bound action."""
        return action_end_ps + self.step_ps


class FSMTracker:
    """Tracks and validates state transitions of one NVMC instance."""

    def __init__(self) -> None:
        self.state = NVMCState.IDLE
        self.history: list[tuple[int, NVMCState]] = []

    def transition(self, new_state: NVMCState, time_ps: int) -> None:
        """Move to ``new_state``, enforcing the transition table."""
        allowed = TRANSITIONS[self.state]
        if new_state not in allowed:
            from repro.errors import DeviceError
            raise DeviceError(
                f"illegal FSM transition {self.state.name} -> "
                f"{new_state.name}")
        self.state = new_state
        self.history.append((time_ps, new_state))
