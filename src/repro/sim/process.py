"""Generator-based processes on top of the event engine.

A *process* is a Python generator that yields waitables:

* ``Timeout(delay_ps)`` — resume after simulated time passes,
* ``Event`` — resume when another party triggers it (one-shot),
* another ``Process`` — resume when that process finishes (join).

The value sent back into the generator is the waitable's payload
(``Event.value`` or the joined process's return value), mirroring SimPy
semantics closely enough that the device models read naturally::

    def refresh_loop(eng, imc):
        while True:
            yield Timeout(imc.trefi_ps)
            imc.issue_refresh()

Exceptions raised inside a process propagate out of ``Engine.run`` unless
the process was spawned with ``daemon=True`` error capture disabled.
"""

from __future__ import annotations

from typing import Any, Generator, Iterator

from repro.errors import SimulationError
from repro.sim.engine import Engine


class Timeout:
    """Waitable that fires after ``delay_ps`` of simulated time."""

    __slots__ = ("delay_ps", "value")

    def __init__(self, delay_ps: int, value: Any = None) -> None:
        if delay_ps < 0:
            raise SimulationError(f"negative timeout: {delay_ps}")
        self.delay_ps = delay_ps
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay_ps})"


class Event:
    """One-shot event that processes can wait on.

    ``succeed(value)`` wakes every waiter with ``value``; waiting on an
    already-triggered event resumes immediately with the stored value.
    """

    __slots__ = ("engine", "_waiters", "triggered", "value", "name")

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self._waiters: list[Process] = []
        self.triggered = False
        self.value: Any = None
        self.name = name

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, waking all current and future waiters."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine.call_after(0, lambda p=process: p._resume(self.value))

    def _add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self.engine.call_after(0, lambda: process._resume(self.value))
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else "pending"
        return f"Event({self.name!r}, {state})"


class Process:
    """A running generator coupled to the engine.

    Create with :func:`spawn`; the process starts at the current simulated
    time (its first slice runs via a zero-delay callback so spawn order is
    preserved deterministically).
    """

    __slots__ = ("engine", "_gen", "name", "finished", "result", "error",
                 "_joiners")

    def __init__(self, engine: Engine, gen: Generator[Any, Any, Any],
                 name: str = "") -> None:
        self.engine = engine
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self.error: BaseException | None = None
        self._joiners: list[Process] = []
        engine.call_after(0, lambda: self._resume(None))

    # -- engine plumbing ---------------------------------------------------

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            waitable = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(waitable)

    def _wait_on(self, waitable: Any) -> None:
        if isinstance(waitable, Timeout):
            self.engine.call_after(
                waitable.delay_ps, lambda: self._resume(waitable.value))
        elif isinstance(waitable, Event):
            waitable._add_waiter(self)
        elif isinstance(waitable, Process):
            waitable._add_joiner(self)
        else:
            error = SimulationError(
                f"process {self.name!r} yielded non-waitable {waitable!r}")
            self._gen.throw(error)

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            self.engine.call_after(0, lambda j=joiner: j._resume(result))

    def _add_joiner(self, process: "Process") -> None:
        if self.finished:
            self.engine.call_after(0, lambda: process._resume(self.result))
        else:
            self._joiners.append(process)

    # -- user API ------------------------------------------------------------

    def interrupt(self) -> None:
        """Stop the process at its next resume point by closing it."""
        if not self.finished:
            self._gen.close()
            self._finish(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


def spawn(engine: Engine, gen: Iterator[Any], name: str = "") -> Process:
    """Start a generator as a process on ``engine``."""
    return Process(engine, gen, name=name)
