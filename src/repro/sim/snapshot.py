"""Copy-on-write simulation snapshots: capture state once, fork cheaply.

The crash-point explorer and the soak harness both used to pay
O(cuts x run): every power-cut index re-executed the whole workload
from t=0, and every soak ran its fault-free twin end-to-end.  This
module makes simulation state *forkable* instead: one golden run takes
periodic :class:`SimSnapshot` captures, and each cut (or twin) resumes
from the nearest capture, re-executing only the tail.

Design
------

A snapshot is one serialized blob of every *root* object handed to
:meth:`SimSnapshot.capture` — engine clock and heap, DDR device state,
NVMC, driver journals and caches, FTL L2P map, NAND dies, fault clock,
health monitor, tracer and sanitizer positions.  Serializing the whole
root set in one pass preserves shared references (the driver and the
NVMC see the *same* restored DRAM), which per-object copies would
silently duplicate.  Each :meth:`SimSnapshot.restore` materializes an
independent copy-on-write fork: the blob itself is immutable and shared
between forks; every fork gets its own object graph and can diverge
freely.

Callback snapshot rules
-----------------------

Callbacks (engine heap entries, tracer subscribers, eviction and commit
hooks) must be *bound methods of snapshotted objects* or *instances of
module-level classes* — both re-bind naturally on restore.  Closures
and lambdas capture frames, which cannot be serialized; holders of such
callbacks either convert them to small callable classes (see
``repro.kernel.fs``) or register a reconstructor with the
:class:`SnapshotRegistry`.

What is deliberately *not* captured
-----------------------------------

Process-wide meters and registries — ``Engine.total_events_executed``,
``TraceMeter`` counters, the ambient default tracer, the owner-token
counter — are observability plumbing shared by every simulation in the
process; restoring them from a fork would corrupt concurrent runs.
REPRO013 (``repro.check.xstatic``) flags such state so every exemption
is an explicit, baselined decision.
"""

from __future__ import annotations

import bisect
import io
import pickle
import pickletools
from typing import Any, Callable, Iterator

#: Serialization protocol: the newest both supported interpreters speak.
_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: ``bytes`` payloads at least this large are shared between forks by
#: reference instead of being serialized into the blob.  Flash pages
#: and DRAM slot contents dominate a mid-run system's footprint, and
#: being immutable they are safe for every fork to alias — the actual
#: copy-on-write: the payload is never copied, only the object graph
#: around it.
_SHARE_MIN_BYTES = 256


class SnapshotError(Exception):
    """State could not be captured (or restored) as a snapshot."""


class SnapshotRegistry:
    """Reconstructors for objects the serializer cannot handle itself.

    A *reducer* follows the ``copyreg`` contract: it maps a live object
    to ``(callable, args)`` such that ``callable(*args)`` rebuilds an
    equivalent object on restore.  Model layers register reducers for
    their awkward members instead of teaching this module about every
    layer (dependency direction: models know the registry, never the
    reverse).
    """

    def __init__(self) -> None:
        self._table: dict[type, Callable[[Any], tuple]] = {}

    def register(self, cls: type,
                 reducer: Callable[[Any], tuple]) -> None:
        """Register ``reducer`` for instances of exactly ``cls``."""
        self._table[cls] = reducer

    def reducer_for(self, cls: type) -> Callable[[Any], tuple] | None:
        return self._table.get(cls)

    @property
    def table(self) -> dict[type, Callable[[Any], tuple]]:
        """The ``pickle.Pickler.dispatch_table`` view of the registry."""
        return self._table

    def __len__(self) -> int:
        return len(self._table)


#: The default registry model layers register with at import time.
DEFAULT_REGISTRY = SnapshotRegistry()


class _ForkPickler(pickle.Pickler):
    """Pickler that externalizes large immutable payloads.

    Big ``bytes`` objects get a persistent id indexing into ``shared``
    (deduplicated by object identity); everything else pickles
    normally.  The resulting blob holds only the object *structure* —
    restoring is cheap because the payload megabytes are aliased, not
    re-materialized.
    """

    def __init__(self, buffer: io.BytesIO, shared: list[bytes]) -> None:
        super().__init__(buffer, protocol=_PROTOCOL)
        self._shared = shared
        self._index: dict[int, int] = {}

    def persistent_id(self, obj: Any) -> int | None:
        if type(obj) is bytes and len(obj) >= _SHARE_MIN_BYTES:
            key = id(obj)
            idx = self._index.get(key)
            if idx is None:
                idx = len(self._shared)
                self._shared.append(obj)
                self._index[key] = idx
            return idx
        return None


class _ForkUnpickler(pickle.Unpickler):
    def __init__(self, buffer: io.BytesIO, shared: list[bytes]) -> None:
        super().__init__(buffer)
        self._shared = shared

    def persistent_load(self, pid: int) -> bytes:
        return self._shared[pid]


def _dump(roots: Any, registry: SnapshotRegistry | None,
          shared: list[bytes] | None = None) -> bytes:
    buffer = io.BytesIO()
    if shared is None:
        pickler = pickle.Pickler(buffer, protocol=_PROTOCOL)
    else:
        pickler = _ForkPickler(buffer, shared)
    pickler.dispatch_table = (registry or DEFAULT_REGISTRY).table
    try:
        pickler.dump(roots)
    except Exception as exc:
        raise SnapshotError(
            f"cannot capture simulation state: {exc!r}.  Callbacks in "
            "snapshotted state must be bound methods or instances of "
            "module-level classes (closures and lambdas capture frames); "
            "convert the callback or register a reconstructor with the "
            "SnapshotRegistry.") from exc
    return buffer.getvalue()


class SimSnapshot:
    """One captured simulation state, forkable any number of times.

    ``event_index`` anchors the capture on the fault clock's global
    hook-site counter (``FaultClock.events_seen`` at capture time): a
    restored fork continues the count from exactly there, so armed
    ``cut_on_event(i)`` cuts with ``i > event_index`` fire at the same
    absolute indices a from-zero run would see.
    """

    __slots__ = ("blob", "shared", "event_index", "label")

    def __init__(self, blob: bytes, event_index: int = 0,
                 label: str = "",
                 shared: list[bytes] | None = None) -> None:
        self.blob = blob
        self.shared = shared if shared is not None else []
        self.event_index = event_index
        self.label = label

    @classmethod
    def capture(cls, roots: Any, event_index: int = 0, label: str = "",
                registry: SnapshotRegistry | None = None) -> "SimSnapshot":
        """Serialize ``roots`` (any picklable structure of model objects,
        conventionally a dict of named roots) into one shared-reference
        blob.  Large immutable payloads are kept by reference in
        ``shared`` rather than serialized — every fork aliases them.
        """
        shared: list[bytes] = []
        return cls(_dump(roots, registry, shared), event_index, label,
                   shared)

    def restore(self) -> Any:
        """Materialize an independent fork of the captured roots."""
        try:
            return _ForkUnpickler(io.BytesIO(self.blob),
                                  self.shared).load()
        except Exception as exc:
            raise SnapshotError(
                f"cannot restore snapshot {self.label or self.event_index}: "
                f"{exc!r}") from exc

    @property
    def nbytes(self) -> int:
        """Size of the structural blob (excludes shared payloads)."""
        return len(self.blob)

    @property
    def shared_bytes(self) -> int:
        """Total size of the payloads aliased (not copied) by forks."""
        return sum(len(payload) for payload in self.shared)

    def optimize(self) -> "SimSnapshot":
        """Return an equivalent snapshot with a smaller blob (dead
        opcodes removed); useful when many snapshots are retained."""
        return SimSnapshot(pickletools.optimize(self.blob),
                           self.event_index, self.label, self.shared)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SimSnapshot(event_index={self.event_index}, "
                f"nbytes={self.nbytes}, shared={len(self.shared)}, "
                f"label={self.label!r})")


class SnapshotMixin:
    """Per-class ``snapshot()/restore()`` over the shared serializer.

    State-holding model classes mix this in so any single subsystem can
    be captured and rebuilt on its own (property tests round-trip the
    engine and the FTL this way).  Whole-system forks should capture all
    roots in *one* :class:`SimSnapshot` instead — per-object snapshots
    cannot preserve references shared between objects.
    """

    def snapshot(self, registry: SnapshotRegistry | None = None) -> bytes:
        """Serialize this object (and everything it references)."""
        return _dump(self, registry)

    @classmethod
    def restore(cls, blob: bytes) -> Any:
        """Rebuild an instance from :meth:`snapshot` output."""
        try:
            obj = pickle.loads(blob)
        except Exception as exc:
            raise SnapshotError(
                f"cannot restore {cls.__name__} snapshot: {exc!r}") from exc
        if not isinstance(obj, cls):
            raise SnapshotError(
                f"snapshot holds {type(obj).__name__}, not {cls.__name__}")
        return obj


class SnapshotTimeline:
    """Snapshots of one golden run, keyed by fault-clock event index.

    The crash-point explorer captures at workload-op boundaries (the
    only points where no model call is in flight) and asks
    :meth:`nearest` for the latest capture *strictly before* a cut
    index: a cut at event ``i`` must re-execute the operation containing
    event ``i``, so a capture taken at ``events_seen == i`` itself is
    already too late to serve it.
    """

    def __init__(self) -> None:
        self._indices: list[int] = []
        self._snaps: list[SimSnapshot] = []

    def add(self, snap: SimSnapshot) -> None:
        if self._indices and snap.event_index <= self._indices[-1]:
            if snap.event_index == self._indices[-1]:
                return    # same boundary re-captured; keep the first
            raise SnapshotError(
                f"timeline captures must be monotonic: {snap.event_index} "
                f"after {self._indices[-1]}")
        self._indices.append(snap.event_index)
        self._snaps.append(snap)

    def nearest(self, cut_index: int) -> SimSnapshot | None:
        """Latest snapshot with ``event_index < cut_index`` (None when
        even the earliest capture is too late)."""
        pos = bisect.bisect_left(self._indices, cut_index)
        if pos == 0:
            return None
        return self._snaps[pos - 1]

    def __len__(self) -> int:
        return len(self._snaps)

    def __iter__(self) -> Iterator[SimSnapshot]:
        return iter(self._snaps)

    @property
    def total_bytes(self) -> int:
        return sum(snap.nbytes for snap in self._snaps)
