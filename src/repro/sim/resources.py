"""Queueing primitives for process-level models.

These are deliberately minimal: a counted :class:`Resource` with FIFO
admission (used to model the host memory channel and NAND channel
controllers), a :class:`Lock` (capacity-1 resource), and a :class:`Store`
(unbounded FIFO of items, used for request queues such as the CP command
mailbox and the FTL's GC queue).

All waiting is expressed through :class:`~repro.sim.process.Event`, so
callers interact with them from process generators::

    token = yield resource.acquire()
    ...critical section...
    resource.release()
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.process import Event


class Resource:
    """Counted resource with FIFO admission.

    ``acquire`` returns an :class:`Event` that triggers when a slot is
    granted; ``release`` frees one slot and admits the next waiter.
    """

    def __init__(self, engine: Engine, capacity: int = 1,
                 name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >=1: {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[Event] = deque()
        # Occupancy accounting for utilisation metrics.
        self._busy_ps = 0
        self._last_change = 0

    def acquire(self) -> Event:
        """Request a slot; the returned event fires when granted."""
        event = Event(self.engine, name=f"{self.name}.acquire")
        if self.in_use < self.capacity:
            self._account()
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one slot, handing it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            event = self._waiters.popleft()
            event.succeed()
        else:
            self._account()
            self.in_use -= 1

    def _account(self) -> None:
        now = self.engine.now
        self._busy_ps += self.in_use * (now - self._last_change)
        self._last_change = now

    def utilization(self) -> float:
        """Mean fraction of capacity in use since the start of time."""
        self._account()
        if self.engine.now == 0:
            return 0.0
        return self._busy_ps / (self.engine.now * self.capacity)

    @property
    def queue_length(self) -> int:
        """Number of acquirers still waiting."""
        return len(self._waiters)


class Lock(Resource):
    """A capacity-1 resource (mutual exclusion)."""

    def __init__(self, engine: Engine, name: str = "") -> None:
        super().__init__(engine, capacity=1, name=name)


class Store:
    """Unbounded FIFO of items with blocking get.

    ``put`` never blocks.  ``get`` returns an event that fires with the
    item once one is available (items are matched to getters FIFO).
    """

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest pending getter if any."""
        if self._getters:
            event = self._getters.popleft()
            event.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Request the oldest item; the event fires with it as value."""
        event = Event(self.engine, name=f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
