"""Structured event tracing.

Device models emit :class:`TraceRecord` entries through a shared
:class:`Tracer`.  Tracing is off by default (the hot paths check a single
boolean) and tests enable it to assert on protocol-level behaviour, e.g.
"the NVMC only drove the bus inside extended-tRFC windows".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.units import format_time


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    ``category`` is a dotted namespace (``"ddr.cmd"``, ``"nvmc.window"``,
    ``"nvdc.op"``, ...), ``fields`` carries structured payload.
    """

    time_ps: int
    category: str
    message: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        text = f"[{format_time(self.time_ps):>12}] {self.category}: {self.message}"
        return f"{text} {extra}".rstrip()


class Tracer:
    """Collects trace records, optionally filtered by category prefix."""

    def __init__(self, enabled: bool = False,
                 categories: tuple[str, ...] | None = None,
                 capacity: int | None = None) -> None:
        self.enabled = enabled
        self.categories = categories
        self.capacity = capacity
        self.records: list[TraceRecord] = []
        self.dropped = 0

    def emit(self, time_ps: int, category: str, message: str,
             **fields: Any) -> None:
        """Record an event if tracing is on and the category is selected."""
        if not self.enabled:
            return
        if self.categories is not None and not any(
                category.startswith(prefix) for prefix in self.categories):
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time_ps, category, message, fields))

    def filter(self, prefix: str) -> list[TraceRecord]:
        """All records whose category starts with ``prefix``."""
        return [r for r in self.records if r.category.startswith(prefix)]

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()
        self.dropped = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


#: A module-level tracer that is always disabled; models default to it so
#: construction never requires threading a tracer through every layer.
NULL_TRACER = Tracer(enabled=False)
