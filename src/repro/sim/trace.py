"""Structured event tracing.

Device models emit :class:`TraceRecord` entries through a shared
:class:`Tracer`.  Tracing is off by default (the hot paths check a single
boolean) and tests enable it to assert on protocol-level behaviour, e.g.
"the NVMC only drove the bus inside extended-tRFC windows".

Two consumers exist:

* **retention** — records are stored in ``Tracer.records`` (optionally
  capacity-bounded) for post-hoc inspection and audits;
* **subscription** — online observers (the ``repro.check`` sanitizers)
  registered with :meth:`Tracer.subscribe` see *every* record that passes
  the enabled/category filters, even records the capacity bound drops
  from storage.  Observation is therefore complete while the archived
  trace may not be — which is why the sanitizers refuse to *certify* a
  run whose tracer reports ``dropped > 0``.

Models that accept a ``tracer`` argument treat ``None`` as "use the
ambient default tracer" (:func:`default_tracer`), which is the disabled
:data:`NULL_TRACER` unless a harness installed one via
:func:`set_default_tracer` / :func:`use_tracer`.  This lets test
fixtures and ``python -m repro check run`` turn on always-on sanitizing
without threading a tracer through every constructor call site.
"""

from __future__ import annotations

import itertools
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.sim.snapshot import SnapshotMixin
from repro.units import format_time


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    ``category`` is a dotted namespace (``"ddr.cmd"``, ``"nvmc.dma"``,
    ``"cp.post"``, ...), ``fields`` carries structured payload.  By
    convention emitters include an ``owner`` field naming the subsystem
    instance the record belongs to, so online observers can shard state
    when several systems share one tracer.
    """

    time_ps: int
    category: str
    message: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        text = f"[{format_time(self.time_ps):>12}] {self.category}: {self.message}"
        return f"{text} {extra}".rstrip()


class TraceMeter:
    """Process-wide trace counters for the perf bench harness.

    ``records_emitted`` counts every record that passed the enabled /
    category filters (whether or not retention kept it);
    ``peak_retained`` is the high-water mark of any single tracer's
    retained record list; ``records_elided`` counts emissions that
    skipped building a :class:`TraceRecord` because the record would
    have been neither retained (capacity reached) nor observed (no
    subscribers) — the pool-the-garbage degenerate case where the
    cheapest pooled object is no object.  Disabled tracers never touch
    these, so the normal (tracing-off) hot path is unaffected.
    """

    records_emitted: int = 0
    peak_retained: int = 0
    records_elided: int = 0

    @classmethod
    def reset(cls) -> None:
        cls.records_emitted = 0
        cls.peak_retained = 0
        cls.records_elided = 0


class Tracer(SnapshotMixin):
    """Collects trace records, optionally filtered by category prefix.

    Drop semantics under a ``capacity`` bound are intentionally
    retention-only: a record past capacity is still *constructed* and
    still *delivered to every subscriber* — only its archival in
    ``records`` is skipped (counted in ``dropped``).  Certification in
    ``repro.check`` keys off ``dropped`` because the archived trace is
    incomplete, but online observation (the sanitizers themselves)
    remains complete.  The disabled / category-filtered early-outs in
    :meth:`emit` happen *before* record construction and before
    subscriber delivery — a filtered-out record does not exist for
    either consumer.
    """

    def __init__(self, enabled: bool = False,
                 categories: tuple[str, ...] | None = None,
                 capacity: int | None = None) -> None:
        self.enabled = enabled
        # Normalised to a real tuple so ``emit`` can hand it straight to
        # ``str.startswith`` (which accepts a tuple of prefixes).
        self.categories = tuple(categories) if categories is not None else None
        self.capacity = capacity
        self.records: list[TraceRecord] = []
        self.dropped = 0
        self._warned_dropped = False
        self._subscribers: list[Callable[[TraceRecord], None]] = []
        # The hot append path, bound once (re-bound by ``clear``): the
        # per-emit cost is a single call with no attribute traversal.
        self._retain = self.records.append

    def emit(self, time_ps: int, category: str, message: str,
             **fields: Any) -> None:
        """Record an event if tracing is on and the category is selected.

        The early-outs are ordered cheapest-first and fire before the
        :class:`TraceRecord` is built: a disabled or filtered ``emit`` is
        one or two branches, no allocation, no subscriber calls.  Past
        the filters the common case is one record construction, one
        pre-bound list append, and the subscriber fan-out; a record that
        would be neither retained nor observed is never built at all
        (``TraceMeter.records_elided``).
        """
        if not self.enabled:
            return
        categories = self.categories
        if categories is not None and not category.startswith(categories):
            return
        TraceMeter.records_emitted += 1
        records = self.records
        if self.capacity is not None and len(records) >= self.capacity:
            self.dropped += 1
            if not self._warned_dropped:
                self._warned_dropped = True
                warnings.warn(
                    f"Tracer capacity ({self.capacity} records) reached; "
                    "further records are dropped from storage (subscribers "
                    "still observe them).  The archived trace is incomplete "
                    "and sanitizers will refuse to certify this run.",
                    RuntimeWarning, stacklevel=2)
            subscribers = self._subscribers
            if not subscribers:
                TraceMeter.records_elided += 1
                return
            record = TraceRecord(time_ps, category, message, fields)
            for subscriber in subscribers:
                subscriber(record)
            return
        record = TraceRecord(time_ps, category, message, fields)
        self._retain(record)
        if len(records) > TraceMeter.peak_retained:
            TraceMeter.peak_retained = len(records)
        for subscriber in self._subscribers:
            subscriber(record)

    # -- snapshot support -------------------------------------------------------

    def __getstate__(self) -> dict:
        # ``_retain`` is a bound method of the records list; pickling it
        # would smuggle the (possibly swapped-out) list into snapshot
        # blobs and leave restored tracers appending to a detached copy.
        state = self.__dict__.copy()
        del state["_retain"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._retain = self.records.append

    # -- online observation -----------------------------------------------------

    def subscribe(self, observer: Callable[[TraceRecord], None]
                  ) -> Callable[[TraceRecord], None]:
        """Register an online observer of every emitted record.

        Subscribers see records *before* any capacity-based drop, so
        observation is complete even when retention is bounded.  Returns
        the observer for symmetry with :meth:`unsubscribe`.
        """
        self._subscribers.append(observer)
        return observer

    def unsubscribe(self, observer: Callable[[TraceRecord], None]) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        try:
            self._subscribers.remove(observer)
        except ValueError:
            pass

    # -- retention --------------------------------------------------------------

    def filter(self, prefix: str) -> list[TraceRecord]:
        """All records whose category starts with ``prefix``."""
        return [r for r in self.records if r.category.startswith(prefix)]

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()
        self.dropped = 0
        self._warned_dropped = False
        self._retain = self.records.append

    def summary(self) -> str:
        """One-line retention summary (shown by the check CLI)."""
        text = f"{len(self.records)} trace records retained"
        if self.dropped:
            text += f", {self.dropped} dropped (capacity {self.capacity})"
        return text

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


#: A module-level tracer that is always disabled; models default to it so
#: construction never requires threading a tracer through every layer.
NULL_TRACER = Tracer(enabled=False)

#: The ambient tracer adopted by models constructed with ``tracer=None``.
_DEFAULT_TRACER: Tracer = NULL_TRACER

_OWNER_COUNTER = itertools.count()


def default_tracer() -> Tracer:
    """The ambient tracer (``NULL_TRACER`` unless a harness set one)."""
    return _DEFAULT_TRACER


def set_default_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the ambient default; returns the previous one.

    Passing ``None`` restores :data:`NULL_TRACER`.
    """
    global _DEFAULT_TRACER
    previous = _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Context manager: ambient default tracer for the enclosed block."""
    previous = set_default_tracer(tracer)
    try:
        yield tracer
    finally:
        set_default_tracer(previous)


def next_owner(prefix: str) -> str:
    """A process-unique owner token for trace emissions (``"nvmc#3"``).

    Deterministic within a run (a plain counter), unique across model
    instances, so sanitizers can shard their per-system state even when
    many systems share one ambient tracer.
    """
    return f"{prefix}#{next(_OWNER_COUNTER)}"
